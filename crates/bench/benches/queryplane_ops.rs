//! Query-plane + stream-plane benchmarks: wall-clock queries/sec versus
//! worker count, the modelled accounting (cache hit-rate, batched
//! speedup), and the continuous-monitoring trajectory (incremental
//! delta-refresh vs full recapture, result-cache hit rate, incidents/sec).
//!
//! Besides the Criterion timings, this bench writes a machine-readable
//! summary to `target/queryplane_ops.json` so future PRs have a perf
//! trajectory to compare against — covering both planes.
//!
//! Since the pool became persistent (spawned once per plane instead of
//! per batch), more workers must not cost wall-clock throughput; the
//! bench asserts 16-worker ≥ 1-worker queries/sec on the storm workload
//! (the exact regression DESIGN.md §9 used to document).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::prelude::*;
use obsplane::{HistogramSnapshot, Percentiles, RegistrySnapshot};
use queryplane::{QueryPlane, QueryPlaneConfig, RetentionPolicy, Snapshot};
use replicaplane::ReplicaCluster;
use streamplane::{StandingQuery, StreamConfig, StreamPlane};
use switchpointer::query::{QueryRequest, QUERY_CLASS_NAMES};
use switchpointer::testbed::{churn_storm, Testbed, TestbedConfig};
use telemetry::EpochRange;
use wireplane::{WireCluster, WireConfig};

/// The workload: a fat-tree under mixed traffic and a repeat-heavy query
/// storm (the cacheable regime the plane is built for), covering all six
/// query classes — the three range aggregates plus the trigger-anchored
/// diagnoses over a starved TCP victim — so every per-class latency
/// histogram the JSON reports carries real samples.
fn workload() -> (Testbed, Vec<QueryRequest>) {
    let topo = Topology::fat_tree(4, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, da) = (tb.node("h0_0_0"), tb.node("h2_0_0"));
    let victim = tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
        a,
        da,
        Priority::LOW,
        SimTime::from_ms(30),
    ));
    // A high-priority burst aimed at the victim's own destination host:
    // the two flows share the last-hop edge link no matter what ECMP
    // does upstream, so the victim's starvation trigger — the anchor the
    // Contention/RedLights/Cascade diagnoses are keyed to — fires
    // deterministically (asserted below).
    let b = tb.node("h0_0_1");
    tb.sim.add_udp_flow(UdpFlowSpec::burst(
        b,
        da,
        Priority::HIGH,
        SimTime::from_ms(15),
        SimTime::from_ms(2),
        GBPS,
    ));
    for (s, d) in [
        ("h1_0_0", "h3_1_1"),
        ("h1_1_0", "h2_1_1"),
        ("h3_0_0", "h0_1_0"),
    ] {
        let (s, d) = (tb.node(s), tb.node(d));
        tb.sim.add_udp_flow(UdpFlowSpec {
            src: s,
            dst: d,
            priority: Priority::LOW,
            start: SimTime::ZERO,
            duration: SimTime::from_ms(25),
            rate_bps: 100_000_000,
            payload_bytes: 1458,
        });
    }
    tb.sim.run_until(SimTime::from_ms(30));
    assert!(
        tb.hosts[&da].borrow().first_trigger_for(victim).is_some(),
        "workload fixture must starve the victim: the trigger-anchored \
         query classes depend on it"
    );

    let window = EpochRange { lo: 5, hi: 20 };
    // Presence sweeps scan the whole pointer retention span (α^k = 1000
    // epochs) at exact resolution — the §2.4-class "where did this flow
    // vanish" query. They are the batch's compute-heavy tail, so the
    // worker pool has real parallel work even though the aggregate
    // queries answer in microseconds.
    let retention = EpochRange { lo: 0, hi: 999 };
    let switches = [
        "edge0_0", "agg0_0", "agg0_1", "core0_0", "edge2_0", "agg2_0",
    ];
    let mut reqs = Vec::new();
    for round in 0..32u64 {
        for name in switches {
            reqs.push(QueryRequest::TopK {
                switch: tb.node(name),
                k: 10,
                range: window,
            });
            if round % 2 == 0 {
                reqs.push(QueryRequest::LoadImbalance {
                    switch: tb.node(name),
                    range: window,
                });
            }
        }
        for probe in 0..2u64 {
            reqs.push(QueryRequest::SilentDrop {
                // Flows that never ran: the all-absent sweep is the worst
                // (and deterministic-length) case.
                flow: FlowId(1000 + round * 2 + probe),
                src: tb.node("h0_1_0"),
                dst: tb.node("h2_1_0"),
                range: retention,
            });
        }
        // Trigger-anchored diagnoses over the starved victim, every
        // fourth round: enough repeats that the contention / red-lights
        // / cascade latency distributions have stable percentiles.
        if round % 4 == 0 {
            let w = tb.cfg.trigger.window;
            reqs.push(QueryRequest::Contention {
                victim,
                victim_dst: da,
                trigger_window: w,
            });
            reqs.push(QueryRequest::RedLights {
                victim,
                victim_dst: da,
                trigger_window: w,
            });
            reqs.push(QueryRequest::Cascade {
                victim,
                victim_dst: da,
                trigger_window: w,
                max_depth: 3,
            });
        }
    }
    (tb, reqs)
}

/// Modelled accounting of one batch (worker-independent: the accounting
/// pass is a sequential replay in submission order).
struct BatchAccounting {
    cache_hit_rate: f64,
    modelled_speedup: f64,
}

/// Wall-clock throughput at one concurrency level, cold and cache-warm.
struct ThroughputPoint {
    workers: usize,
    cold_qps: f64,
    warm_qps: f64,
}

fn batch_delta(
    plane: &mut QueryPlane,
    reqs: &[QueryRequest],
) -> (std::time::Duration, BatchAccounting) {
    let before = plane.stats();
    let t0 = Instant::now();
    let outcomes = plane.execute_batch(reqs);
    let dt = t0.elapsed();
    assert_eq!(outcomes.len(), reqs.len());
    let after = plane.stats();
    let hits = after.pointer_hits - before.pointer_hits;
    let misses = after.pointer_misses - before.pointer_misses;
    let sequential = (after.sequential_total - before.sequential_total).as_ns() as f64;
    let batched = (after.batched_total - before.batched_total).as_ns() as f64;
    (
        dt,
        BatchAccounting {
            cache_hit_rate: hits as f64 / (hits + misses).max(1) as f64,
            modelled_speedup: sequential / batched.max(1.0),
        },
    )
}

/// Timed cold + warm batches at `workers` on a fresh plane. The modelled
/// accounting deltas are per batch (cold = empty cache, warm = the same
/// batch repeated against a populated cache). The warm throughput is the
/// best of five repeats — wall-clock comparisons across worker counts
/// gate on it, so scheduler noise must not decide them.
fn measure(
    tb: &Testbed,
    reqs: &[QueryRequest],
    workers: usize,
) -> (ThroughputPoint, BatchAccounting, BatchAccounting) {
    let analyzer = tb.analyzer();
    let mut plane = QueryPlane::from_analyzer(
        &analyzer,
        QueryPlaneConfig {
            workers,
            shards: 8,
            directory_shards: 1,
            cache_capacity: 4096,
            retention: None,
        },
    );
    let (cold_dt, cold) = batch_delta(&mut plane, reqs);
    let (mut warm_dt, warm) = batch_delta(&mut plane, reqs);
    for _ in 0..4 {
        let (dt, _) = batch_delta(&mut plane, reqs);
        warm_dt = warm_dt.min(dt);
    }
    (
        ThroughputPoint {
            workers,
            cold_qps: reqs.len() as f64 / cold_dt.as_secs_f64().max(1e-9),
            warm_qps: reqs.len() as f64 / warm_dt.as_secs_f64().max(1e-9),
        },
        cold,
        warm,
    )
}

/// One directory-shard ablation point: per-shard fan-out and the
/// modelled decode cost at that shard count.
struct ShardPoint {
    shards: usize,
    decode_bits: Vec<u64>,
    host_reads: Vec<u64>,
    cross_shard_merges: u64,
    modelled_decode_us: f64,
    decode_speedup: f64,
}

/// Runs the storm batch's union-decode queries (TopK / LoadImbalance)
/// through planes with 1/2/4/8 directory shards and records the
/// per-shard fan-out counters. The SilentDrop presence sweeps are left
/// out: single-address probes route to exactly one owning shard, so they
/// are sharding-neutral by construction and would only dilute the
/// trajectory. Gates the acceptance bar: 4-shard modelled decode cost
/// must undercut the single coordinator.
fn measure_shards(tb: &Testbed, reqs: &[QueryRequest]) -> Vec<ShardPoint> {
    let reqs: Vec<QueryRequest> = reqs
        .iter()
        .filter(|r| !matches!(r, QueryRequest::SilentDrop { .. }))
        .copied()
        .collect();
    let reqs = &reqs[..];
    let analyzer = tb.analyzer();
    let mut points = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let mut plane = QueryPlane::from_analyzer(
            &analyzer,
            QueryPlaneConfig {
                workers: 8,
                shards: 8,
                directory_shards: shards,
                cache_capacity: 4096,
                retention: None,
            },
        );
        let outcomes = plane.execute_batch(reqs);
        assert_eq!(outcomes.len(), reqs.len());
        let fanout = plane.fanout();
        let stats = plane.stats();
        points.push(ShardPoint {
            shards,
            decode_bits: fanout.decode_bits,
            host_reads: fanout.host_reads,
            cross_shard_merges: stats.cross_shard_merges,
            modelled_decode_us: stats.modelled_decode_total.as_ns() as f64 / 1e3,
            decode_speedup: stats.decode_speedup(),
        });
    }
    let at = |n: usize| {
        points
            .iter()
            .find(|p| p.shards == n)
            .map(|p| p.modelled_decode_us)
            .expect("measured shard level")
    };
    assert!(
        at(4) < at(1),
        "4-shard modelled decode cost must undercut the single coordinator: \
         {:.1}us vs {:.1}us",
        at(4),
        at(1)
    );
    points
}

/// One pass of the continuous-monitoring loop for the JSON summary:
/// returns (delta-refresh wall time, full-recapture wall time, stream
/// stats snapshot, incidents, evaluation wall time).
struct StreamSummary {
    delta_refresh: Duration,
    full_recapture: Duration,
    delta_copied: u64,
    full_copied_equiv: u64,
    result_hit_rate: f64,
    incidents: usize,
    incidents_per_sec: f64,
}

fn measure_stream() -> StreamSummary {
    // A fixture of its own: traffic must keep flowing while the windows
    // advance, so deltas stay non-trivial.
    let topo = Topology::fat_tree(4, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    for (s, d, ms) in [
        // Two flows outlive the watch (live deltas every window); two end
        // mid-run, so the fixed subscriptions over their pods go quiet and
        // the result cache starts serving them.
        ("h0_0_0", "h2_0_0", 38),
        ("h3_0_0", "h0_1_0", 38),
        ("h1_0_0", "h3_1_1", 18),
        ("h1_1_0", "h2_1_1", 18),
    ] {
        let (s, d) = (tb.node(s), tb.node(d));
        tb.sim.add_udp_flow(UdpFlowSpec {
            src: s,
            dst: d,
            priority: Priority::LOW,
            start: SimTime::ZERO,
            duration: SimTime::from_ms(ms),
            rate_bps: 100_000_000,
            payload_bytes: 1458,
        });
    }
    let analyzer = tb.analyzer();
    let mut sp = StreamPlane::new(
        &analyzer,
        StreamConfig {
            plane: QueryPlaneConfig {
                workers: 8,
                shards: 8,
                directory_shards: 1,
                cache_capacity: 4096,
                retention: None,
            },
            result_cache_capacity: 1024,
        },
    );
    for name in [
        "edge0_0", "agg0_0", "agg0_1", "core0_0", "edge2_0", "agg2_0",
    ] {
        sp.subscribe(StandingQuery::TopKSliding {
            switch: tb.node(name),
            k: 10,
            epochs_back: 10,
        });
        sp.subscribe(StandingQuery::LoadImbalanceSliding {
            switch: tb.node(name),
            epochs_back: 10,
        });
    }
    for name in ["edge3_1", "edge2_1"] {
        sp.subscribe(StandingQuery::Fixed(QueryRequest::TopK {
            switch: tb.node(name),
            k: 10,
            range: EpochRange { lo: 5, hi: 15 },
        }));
    }
    // A probe plane isolates the refresh cost: its `refresh_delta` is the
    // same incremental path `run_window` uses, timed without the query
    // execution that follows.
    let mut probe = QueryPlane::from_analyzer(
        &analyzer,
        QueryPlaneConfig {
            workers: 1,
            shards: 8,
            directory_shards: 1,
            cache_capacity: 4096,
            retention: None,
        },
    );
    let mut delta_refresh = Duration::ZERO;
    let mut full_recapture = Duration::ZERO;
    let t0 = Instant::now();
    for w in 1..=8u64 {
        tb.sim.run_until(SimTime::from_ms(w * 5));
        // The counterfactual first: how long a from-scratch freeze takes
        // at this instant (what `refresh` would have done every window).
        let tc = Instant::now();
        let fresh = Snapshot::capture(&analyzer, 8);
        full_recapture += tc.elapsed();
        drop(fresh);
        let td = Instant::now();
        probe.refresh_delta(&analyzer);
        delta_refresh += td.elapsed();
        sp.run_window(&analyzer);
    }
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    let stats = sp.stats();
    StreamSummary {
        delta_refresh,
        full_recapture,
        delta_copied: stats.delta_copied,
        full_copied_equiv: stats.full_copied_equiv,
        result_hit_rate: stats.result_hit_rate(),
        incidents: sp.incidents().len(),
        incidents_per_sec: sp.incidents().len() as f64 / wall,
    }
}

/// The retention trajectory: records reclaimed per sweep, steady-state
/// resident records, and the sweep's wall-clock cost — the start of the
/// memory trajectory `BENCH_*.json` tracks across PRs.
struct RetentionSummary {
    dir_shards: usize,
    budget_per_shard: usize,
    reclaimed_per_sweep: Vec<u64>,
    resident_after_sweep: Vec<u64>,
    sweep_wall_clock_us: Vec<f64>,
    steady_state_resident: u64,
}

fn measure_retention() -> RetentionSummary {
    // The shared churn-storm fixture (`testbed::churn_storm`): the
    // continuous-watch incident core keeps watch-class state live while a
    // train of short cross-pod waves leaves one stale record each for the
    // sweeps to reclaim.
    let (mut tb, _victim, _da) = churn_storm(&[
        ("h1_0_1", "h3_0_0", 0, 6),
        ("h1_1_0", "h3_0_1", 5, 6),
        ("h1_1_1", "h3_1_0", 10, 6),
        ("h1_0_1", "h2_1_0", 15, 6),
        ("h1_1_0", "h2_1_1", 20, 6),
        ("h1_1_1", "h0_1_1", 25, 6),
        ("h1_0_1", "h2_0_1", 30, 6),
        ("h1_1_0", "h3_1_1", 35, 6),
    ]);
    let dir_shards = 4usize;
    let budget = 16usize;
    let analyzer = tb.analyzer();
    let mut plane = QueryPlane::from_analyzer(
        &analyzer,
        QueryPlaneConfig {
            workers: 4,
            shards: 8,
            directory_shards: dir_shards,
            cache_capacity: 4096,
            retention: Some(RetentionPolicy::budgeted(12, budget)),
        },
    );
    let batch: Vec<QueryRequest> = ["edge0_0", "agg0_0", "core0_0", "edge2_0"]
        .iter()
        .map(|name| QueryRequest::TopK {
            switch: tb.node(name),
            k: 10,
            range: EpochRange { lo: 0, hi: 999 },
        })
        .collect();
    let mut summary = RetentionSummary {
        dir_shards,
        budget_per_shard: budget,
        reclaimed_per_sweep: Vec::new(),
        resident_after_sweep: Vec::new(),
        sweep_wall_clock_us: Vec::new(),
        steady_state_resident: 0,
    };
    let mut reclaiming = 0usize;
    for w in 1..=9u64 {
        tb.sim.run_until(SimTime::from_ms(w * 5));
        let t0 = Instant::now();
        let report = plane
            .sweep_retention(&analyzer, &[])
            .expect("retention configured");
        let dt = t0.elapsed();
        plane.refresh_delta(&analyzer);
        if report.records_evicted > 0 {
            reclaiming += 1;
        }
        summary
            .reclaimed_per_sweep
            .push(report.records_evicted as u64);
        summary
            .resident_after_sweep
            .push(plane.snapshot().total_records() as u64);
        summary.sweep_wall_clock_us.push(dt.as_secs_f64() * 1e6);
        assert_eq!(
            plane.snapshot().total_records(),
            report.resident_total(),
            "snapshot must track the swept live state"
        );
        // Steady state: every shard inside its budget.
        if w >= 4 {
            for (s, &r) in plane.snapshot().records_per_shard().iter().enumerate() {
                assert!(r <= budget, "shard {s} resident {r} > budget {budget}");
            }
        }
        // The plane keeps answering over the truncated snapshot.
        assert_eq!(plane.execute_batch(&batch).len(), batch.len());
    }
    assert!(
        reclaiming >= 3,
        "the churn train must drive >= 3 reclaiming sweeps (got {reclaiming})"
    );
    summary.steady_state_resident = *summary.resident_after_sweep.last().unwrap();
    summary
}

/// Per-class execution-latency percentiles off the plane's obsplane
/// histograms (`queryplane.exec_ns.<class>`): one storm batch through a
/// fresh 8-worker plane, then read the recorded distribution. The storm
/// issues every class, so every histogram must carry real samples — the
/// caller asserts it.
fn measure_latency(tb: &Testbed, reqs: &[QueryRequest]) -> Vec<(&'static str, Percentiles)> {
    let analyzer = tb.analyzer();
    let mut plane = QueryPlane::from_analyzer(
        &analyzer,
        QueryPlaneConfig {
            workers: 8,
            shards: 8,
            directory_shards: 1,
            cache_capacity: 4096,
            retention: None,
        },
    );
    let outcomes = plane.execute_batch(reqs);
    assert_eq!(outcomes.len(), reqs.len());
    let snap = plane.metrics().snapshot();
    QUERY_CLASS_NAMES
        .iter()
        .map(|&class| {
            let p = snap
                .hist(&format!("queryplane.exec_ns.{class}"))
                .map(|h| h.percentiles())
                .unwrap_or_default();
            (class, p)
        })
        .collect()
}

/// One level of the parallel-efficiency sweep: cold (empty-cache)
/// queries/sec at `workers`, best of three fresh planes.
struct ScalingPoint {
    workers: usize,
    cold_qps: f64,
    steals: u64,
    chunks: u64,
}

/// The worker-scaling sweep and its gate.
struct WorkerScalingSummary {
    points: Vec<ScalingPoint>,
    scaling_16v1: f64,
    meets_2x: bool,
    /// `"enforced"` or `"skipped: N cores < 4"` — CI only fails the 2×
    /// bar where the hardware can physically provide it.
    gate: String,
    cores: usize,
}

/// Sweeps cold-batch throughput at 1/2/4/8/16 workers (best of three
/// fresh planes per level — the cold path has no cache to stabilise it,
/// so single runs are noisy) and reads the pool's steal/chunk counters
/// at each level. The 16-vs-1 ratio is the wall the work-stealing
/// scheduler was built to break: DESIGN.md §9 recorded cold throughput
/// *falling* with workers under the pre-sliced dispatch. The 2× bar is
/// asserted here only on hardware with ≥ 4 cores; below that the sweep
/// still runs and reports, with the gate marked skipped.
fn measure_worker_scaling(tb: &Testbed, reqs: &[QueryRequest]) -> WorkerScalingSummary {
    let analyzer = tb.analyzer();
    let mut points = Vec::new();
    for workers in [1usize, 2, 4, 8, 16] {
        let mut best = f64::MAX;
        let mut steals = 0u64;
        let mut chunks = 0u64;
        for _ in 0..3 {
            let mut plane = QueryPlane::from_analyzer(
                &analyzer,
                QueryPlaneConfig {
                    workers,
                    shards: 8,
                    directory_shards: 1,
                    cache_capacity: 4096,
                    retention: None,
                },
            );
            let t0 = Instant::now();
            let outcomes = plane.execute_batch(reqs);
            let dt = t0.elapsed().as_secs_f64().max(1e-9);
            assert_eq!(outcomes.len(), reqs.len());
            if dt < best {
                best = dt;
                let snap = plane.metrics().snapshot();
                steals = snap.counter("pool.steals");
                chunks = snap.counter("pool.chunks");
            }
        }
        points.push(ScalingPoint {
            workers,
            cold_qps: reqs.len() as f64 / best,
            steals,
            chunks,
        });
    }
    let at = |w: usize| {
        points
            .iter()
            .find(|p| p.workers == w)
            .map(|p| p.cold_qps)
            .expect("measured level")
    };
    let scaling_16v1 = at(16) / at(1).max(1e-9);
    let meets_2x = scaling_16v1 >= 2.0;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let gate = if cores >= 4 {
        assert!(
            meets_2x,
            "worker scaling wall is back: 16-worker cold throughput is only {scaling_16v1:.2}x \
             the 1-worker level on {cores} cores (bar: 2x)"
        );
        "enforced".to_string()
    } else {
        println!(
            "worker_scaling: 2x gate skipped ({cores} cores < 4); measured 16v1 = {scaling_16v1:.2}x"
        );
        format!("skipped: {cores} cores < 4")
    };
    WorkerScalingSummary {
        points,
        scaling_16v1,
        meets_2x,
        gate,
        cores,
    }
}

/// The wire trajectory: actual RPC frames and round trips for a sample
/// of the storm batch served through a 2-shard loopback cluster — the
/// transport-layer counters future PRs compare against.
struct WireSummary {
    shards: usize,
    queries: usize,
    rpcs: u64,
    wave_rpcs: u64,
    wave_rounds: u64,
    rounds: u64,
    wall_us_per_query: f64,
    /// Labelled registries the scrape returned (front + one per shard).
    scraped_processes: usize,
    /// `wire.frames_served` summed over every scraped shard registry.
    frames_served: u64,
    /// Front-side RPC round trip, merged across the per-shard
    /// `wire.rtt_ns.shard{N}` histograms.
    rtt: Percentiles,
}

fn measure_wire(tb: &Testbed, reqs: &[QueryRequest]) -> WireSummary {
    let analyzer = tb.analyzer();
    let shards = 2usize;
    let cluster =
        WireCluster::launch(&analyzer, shards, WireConfig::default()).expect("launch wire cluster");
    let sample: Vec<QueryRequest> = reqs.iter().take(64).copied().collect();
    let t0 = Instant::now();
    for req in &sample {
        let _ = cluster.front().execute(req);
    }
    let wall = t0.elapsed();
    let c = cluster.front().counters();
    // Scrape the live deployment the same way a remote client would.
    let scraped = cluster.front().scrape().expect("scrape wire cluster");
    let mut merged = RegistrySnapshot::default();
    for (_, snap) in &scraped {
        merged.merge(snap);
    }
    let front_snap = &scraped
        .iter()
        .find(|(label, _)| label == "front")
        .expect("front snapshot present")
        .1;
    let mut rtt = HistogramSnapshot::default();
    for (name, h) in &front_snap.hists {
        if name.starts_with("wire.rtt_ns.") {
            rtt.merge(h);
        }
    }
    cluster.shutdown();
    WireSummary {
        shards,
        queries: sample.len(),
        rpcs: c.rpcs,
        wave_rpcs: c.wave_rpcs,
        wave_rounds: c.wave_rounds,
        rounds: c.rounds,
        wall_us_per_query: wall.as_micros() as f64 / sample.len().max(1) as f64,
        scraped_processes: scraped.len(),
        frames_served: merged.counter("wire.frames_served"),
        rtt: rtt.percentiles(),
    }
}

/// The replication trajectory: sequenced delta publication to a
/// primary+standby deployment, then a full-primary kill drill — the
/// numbers future PRs compare failover cost against.
struct ReplicationSummary {
    shards: usize,
    replicas: usize,
    publishes: u64,
    appends: u64,
    bootstraps: u64,
    /// `repl.lag` after the last publish — zero when every live replica
    /// acked the owner's head.
    replay_lag: i64,
    /// Sequenced appends acked per second of publish wall-clock.
    applied_seqs_per_sec: f64,
    publish_wall_us_mean: f64,
    /// Wall-clock of the first query wave issued after every primary
    /// died — dial + retry + rotation to the standby, end to end.
    failover_wall_us: f64,
    /// The front-end's `wire.failover_ns` histogram over the drill.
    failover_ns: Percentiles,
}

fn measure_replication(reqs: &[QueryRequest]) -> ReplicationSummary {
    let topo = Topology::fat_tree(4, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, da) = (tb.node("h0_0_0"), tb.node("h2_0_0"));
    tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
        a,
        da,
        Priority::LOW,
        SimTime::from_ms(60),
    ));
    tb.sim.run_until(SimTime::from_ms(10));
    let analyzer = tb.analyzer();
    let (shards, replicas) = (2usize, 2usize);
    let cluster = ReplicaCluster::launch(&analyzer, shards, replicas, WireConfig::default())
        .expect("launch replicated cluster");

    // Publish a train of sequenced deltas to every replica.
    let mut publish_wall = Duration::ZERO;
    let windows = 8u64;
    for w in 1..=windows {
        tb.sim.run_until(SimTime::from_ms(10 + w * 5));
        let t0 = Instant::now();
        cluster.refresh(&analyzer);
        publish_wall += t0.elapsed();
    }

    // The drill: every primary dies; the next wave rotates to standbys.
    for s in 0..shards {
        assert!(cluster.kill_primary(s));
    }
    let sample: Vec<&QueryRequest> = reqs.iter().take(8).collect();
    let t0 = Instant::now();
    for req in &sample {
        let _ = cluster.front().execute(req);
    }
    let failover_wall = t0.elapsed();
    assert!(
        cluster.front().shard_failovers() >= shards as u64,
        "every shard must rotate off its dead primary"
    );

    let owner = cluster.owner_metrics().snapshot();
    let front = cluster.front_metrics().snapshot();
    let appends = owner.counter("repl.appends");
    let summary = ReplicationSummary {
        shards,
        replicas,
        publishes: owner.counter("repl.published"),
        appends,
        bootstraps: owner.counter("repl.bootstraps"),
        replay_lag: owner.gauges.get("repl.lag").copied().unwrap_or(i64::MAX),
        applied_seqs_per_sec: appends as f64 / publish_wall.as_secs_f64().max(1e-9),
        publish_wall_us_mean: publish_wall.as_micros() as f64 / windows as f64,
        failover_wall_us: failover_wall.as_micros() as f64,
        failover_ns: front
            .hists
            .get("wire.failover_ns")
            .map(|h| h.percentiles())
            .unwrap_or_default(),
    };
    cluster.shutdown();
    summary
}

#[allow(clippy::too_many_arguments)] // one section per JSON block, called once
fn write_summary(
    points: &[ThroughputPoint],
    cold: &BatchAccounting,
    warm: &BatchAccounting,
    shards: &[ShardPoint],
    latency: &[(&'static str, Percentiles)],
    scaling: &WorkerScalingSummary,
    stream: &StreamSummary,
    retention: &RetentionSummary,
    wire: &WireSummary,
    repl: &ReplicationSummary,
) {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"workers\": {}, \"cold_queries_per_sec\": {:.0}, \"warm_queries_per_sec\": {:.0}}}",
                p.workers, p.cold_qps, p.warm_qps
            )
        })
        .collect();
    let shard_rows: Vec<String> = shards
        .iter()
        .map(|p| {
            let bits: Vec<String> = p.decode_bits.iter().map(|b| b.to_string()).collect();
            let reads: Vec<String> = p.host_reads.iter().map(|r| r.to_string()).collect();
            format!(
                "    {{\"directory_shards\": {}, \"decode_bits_per_shard\": [{}], \"host_reads_per_shard\": [{}], \"cross_shard_merges\": {}, \"modelled_decode_us\": {:.1}, \"decode_speedup\": {:.2}}}",
                p.shards,
                bits.join(", "),
                reads.join(", "),
                p.cross_shard_merges,
                p.modelled_decode_us,
                p.decode_speedup
            )
        })
        .collect();
    let stream_json = format!(
        "  \"streamplane\": {{\n    \"delta_refresh_ms\": {:.3},\n    \"full_recapture_ms\": {:.3},\n    \"delta_copied\": {},\n    \"full_copied_equiv\": {},\n    \"result_cache_hit_rate\": {:.4},\n    \"incidents\": {},\n    \"incidents_per_sec\": {:.0}\n  }}",
        stream.delta_refresh.as_secs_f64() * 1e3,
        stream.full_recapture.as_secs_f64() * 1e3,
        stream.delta_copied,
        stream.full_copied_equiv,
        stream.result_hit_rate,
        stream.incidents,
        stream.incidents_per_sec,
    );
    let join_u64 = |v: &[u64]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let sweep_us: Vec<String> = retention
        .sweep_wall_clock_us
        .iter()
        .map(|x| format!("{x:.1}"))
        .collect();
    let retention_json = format!(
        "  \"retention\": {{\n    \"directory_shards\": {},\n    \"shard_record_budget\": {},\n    \"records_reclaimed_per_sweep\": [{}],\n    \"resident_records_after_sweep\": [{}],\n    \"sweep_wall_clock_us\": [{}],\n    \"steady_state_resident_records\": {}\n  }}",
        retention.dir_shards,
        retention.budget_per_shard,
        join_u64(&retention.reclaimed_per_sweep),
        join_u64(&retention.resident_after_sweep),
        sweep_us.join(", "),
        retention.steady_state_resident,
    );
    let wire_json = format!(
        "  \"wireplane\": {{\n    \"shard_servers\": {},\n    \"queries\": {},\n    \"rpc_frames\": {},\n    \"wave_rpc_frames\": {},\n    \"wave_round_trips\": {},\n    \"round_trips\": {},\n    \"wire_wall_us_per_query\": {:.1},\n    \"scraped_processes\": {},\n    \"frames_served\": {},\n    \"rtt_ns\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}\n  }}",
        wire.shards,
        wire.queries,
        wire.rpcs,
        wire.wave_rpcs,
        wire.wave_rounds,
        wire.rounds,
        wire.wall_us_per_query,
        wire.scraped_processes,
        wire.frames_served,
        wire.rtt.count,
        wire.rtt.p50,
        wire.rtt.p95,
        wire.rtt.p99,
        wire.rtt.max,
    );
    let repl_json = format!(
        "  \"replication\": {{\n    \"shards\": {},\n    \"replicas_per_shard\": {},\n    \"publishes\": {},\n    \"sequenced_appends\": {},\n    \"bootstraps\": {},\n    \"replay_lag\": {},\n    \"applied_seqs_per_sec\": {:.0},\n    \"publish_wall_us_mean\": {:.1},\n    \"failover_wall_us\": {:.1},\n    \"failover_ns\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}\n  }}",
        repl.shards,
        repl.replicas,
        repl.publishes,
        repl.appends,
        repl.bootstraps,
        repl.replay_lag,
        repl.applied_seqs_per_sec,
        repl.publish_wall_us_mean,
        repl.failover_wall_us,
        repl.failover_ns.count,
        repl.failover_ns.p50,
        repl.failover_ns.p95,
        repl.failover_ns.p99,
        repl.failover_ns.max,
    );
    let latency_rows: Vec<String> = latency
        .iter()
        .map(|(class, p)| {
            format!(
                "    \"{class}\": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                p.count, p.p50, p.p95, p.p99, p.max
            )
        })
        .collect();
    let latency_json = format!(
        "  \"query_latency\": {{\n{}\n  }}",
        latency_rows.join(",\n")
    );
    let scaling_rows: Vec<String> = scaling
        .points
        .iter()
        .map(|p| {
            format!(
                "      {{\"workers\": {}, \"cold_queries_per_sec\": {:.0}, \"steals\": {}, \"chunks\": {}}}",
                p.workers, p.cold_qps, p.steals, p.chunks
            )
        })
        .collect();
    let scaling_json = format!(
        "  \"worker_scaling\": {{\n    \"cores\": {},\n    \"scaling_16v1\": {:.3},\n    \"meets_2x\": {},\n    \"gate\": \"{}\",\n    \"sweep\": [\n{}\n    ]\n  }}",
        scaling.cores,
        scaling.scaling_16v1,
        scaling.meets_2x,
        scaling.gate,
        scaling_rows.join(",\n"),
    );
    // The sweep also lands as its own artifact next to the trajectory
    // JSON, so CI can upload and diff it independently.
    let sweep_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/worker_scaling.json"
    );
    match obsplane::write_atomic(sweep_path, format!("{{\n{scaling_json}\n}}\n").as_bytes()) {
        Ok(()) => println!("wrote {sweep_path}"),
        Err(e) => eprintln!("could not write {sweep_path}: {e}"),
    }
    let json = format!(
        "{{\n  \"bench\": \"queryplane_ops\",\n  \"modelled\": {{\n    \"cold_batch\": {{\"cache_hit_rate\": {:.4}, \"modelled_speedup\": {:.2}}},\n    \"warm_batch\": {{\"cache_hit_rate\": {:.4}, \"modelled_speedup\": {:.2}}}\n  }},\n  \"throughput\": [\n{}\n  ],\n  \"directory_shards\": [\n{}\n  ],\n{},\n{},\n{},\n{},\n{},\n{}\n}}\n",
        cold.cache_hit_rate,
        cold.modelled_speedup,
        warm.cache_hit_rate,
        warm.modelled_speedup,
        rows.join(",\n"),
        shard_rows.join(",\n"),
        latency_json,
        scaling_json,
        stream_json,
        retention_json,
        wire_json,
        repl_json
    );
    // Benches run with the package dir as cwd; aim at the workspace target.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/queryplane_ops.json"
    );
    // Atomic (temp + rename): a killed bench run never leaves a torn
    // trajectory file for the next comparison to trip over.
    match obsplane::write_atomic(path, json.as_bytes()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!("{json}");
    append_trajectory(points, scaling, stream, wire, repl, retention);
}

/// Appends one headline row per run to the *cumulative* trajectory file
/// at the repo root (`BENCH_trajectory.json`, a JSON array), so the
/// perf history accretes across PRs instead of each run overwriting the
/// last. The append re-writes the whole file through
/// [`obsplane::write_atomic`]: a killed run leaves the previous history
/// intact, never a torn file.
fn append_trajectory(
    points: &[ThroughputPoint],
    scaling: &WorkerScalingSummary,
    stream: &StreamSummary,
    wire: &WireSummary,
    repl: &ReplicationSummary,
    retention: &RetentionSummary,
) {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let qps_at = |w: usize| {
        points
            .iter()
            .find(|p| p.workers == w)
            .map(|p| (p.cold_qps, p.warm_qps))
            .unwrap_or((0.0, 0.0))
    };
    let (cold16, warm16) = qps_at(16);
    let entry = format!(
        "  {{\"unix_time\": {unix_time}, \"cold_qps_16\": {cold16:.0}, \
         \"warm_qps_16\": {warm16:.0}, \"scaling_16v1\": {:.3}, \
         \"wire_wall_us_per_query\": {:.1}, \"incidents_per_sec\": {:.0}, \
         \"applied_seqs_per_sec\": {:.0}, \"steady_state_resident_records\": {}}}",
        scaling.scaling_16v1,
        wire.wall_us_per_query,
        stream.incidents_per_sec,
        repl.applied_seqs_per_sec,
        retention.steady_state_resident,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trajectory.json");
    let history = std::fs::read_to_string(path).unwrap_or_default();
    let body = match history.trim_end().strip_suffix(']') {
        // Existing history: splice the new row before the closing bracket.
        Some(head) if head.trim_end().ends_with('}') => {
            format!("{},\n{entry}\n]\n", head.trim_end())
        }
        // Missing, empty (`[]`/`[\n]`) or unparseable: start fresh rather
        // than compound a torn file.
        _ => format!("[\n{entry}\n]\n"),
    };
    match obsplane::write_atomic(path, body.as_bytes()) {
        Ok(()) => println!("appended trajectory row to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_queryplane(c: &mut Criterion) {
    let (tb, reqs) = workload();

    // JSON trajectory: one throughput point per concurrency level; the
    // modelled accounting is worker-independent, so it is reported once
    // per batch kind (taken from the concurrency-16 run).
    let mut points = Vec::new();
    let mut accounting = None;
    for w in [1usize, 4, 16] {
        let (p, cold, warm) = measure(&tb, &reqs, w);
        points.push(p);
        accounting = Some((cold, warm));
    }
    let (cold, warm) = accounting.expect("at least one concurrency level");
    // The acceptance bar gates on the *cold* batch (empty cache): batching
    // + first-touch caching must still give ≥ 2× modelled reduction at
    // concurrency 16. The warm repeat is reported separately.
    assert!(
        cold.modelled_speedup >= 2.0,
        "cold-batch modelled speedup regressed below 2x: {:.2}",
        cold.modelled_speedup
    );
    // The persistent pool fixed DESIGN.md §9's known limitation: scaling
    // workers must no longer *cost* wall-clock throughput. Gate on the
    // best-of-five warm batches at each level. On hardware with headroom
    // (≥ 4 cores) the bar is strict (16-worker ≥ 1-worker); on 2-3 cores
    // oversubscription leaves little margin over scheduler noise, and a
    // uniprocessor cannot run threads in parallel at all — those get a
    // small "no material regression" allowance (time-slicing 16 threads
    // costs a few percent, where the old spawn-per-batch design cost a
    // multiple).
    let qps_at = |w: usize| {
        points
            .iter()
            .find(|p| p.workers == w)
            .map(|p| p.warm_qps)
            .expect("measured level")
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let floor = match cores {
        0 | 1 => 0.85,
        2 | 3 => 0.9,
        _ => 1.0,
    };
    assert!(
        qps_at(16) >= floor * qps_at(1),
        "16-worker wall-clock throughput regressed below 1-worker on the storm workload \
         ({cores} core(s), floor {floor}): {:.0} qps vs {:.0} qps",
        qps_at(16),
        qps_at(1)
    );

    let shard_points = measure_shards(&tb, &reqs);
    let latency = measure_latency(&tb, &reqs);
    // The storm issues every query class; a zero count in any per-class
    // latency histogram means the workload silently stopped covering it.
    for class in QUERY_CLASS_NAMES {
        let (_, p) = latency
            .iter()
            .find(|(c, _)| *c == class)
            .expect("class present");
        assert!(
            p.count > 0 && p.p50 > 0 && p.p99 > 0 && p.max > 0,
            "per-class latency histogram for {class} is empty or zeroed: {p:?}"
        );
    }
    let scaling = measure_worker_scaling(&tb, &reqs);
    let stream = measure_stream();
    let retention = measure_retention();
    let wire = measure_wire(&tb, &reqs);
    let repl = measure_replication(&reqs);
    write_summary(
        &points,
        &cold,
        &warm,
        &shard_points,
        &latency,
        &scaling,
        &stream,
        &retention,
        &wire,
        &repl,
    );

    let mut group = c.benchmark_group("queryplane_ops");
    group.throughput(Throughput::Elements(reqs.len() as u64));
    for workers in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("execute_batch", workers),
            &workers,
            |b, &w| {
                let analyzer = tb.analyzer();
                let mut plane = QueryPlane::from_analyzer(
                    &analyzer,
                    QueryPlaneConfig {
                        workers: w,
                        shards: 8,
                        directory_shards: 1,
                        cache_capacity: 4096,
                        retention: None,
                    },
                );
                b.iter(|| plane.execute_batch(&reqs));
            },
        );
    }
    group.bench_function("snapshot_capture", |b| {
        let analyzer = tb.analyzer();
        b.iter(|| queryplane::Snapshot::capture(&analyzer, 8));
    });
    group.finish();
}

criterion_group!(benches, bench_queryplane);
criterion_main!(benches);
