//! Pointer-hierarchy benchmarks: the line-rate update across k (ablation
//! for §4.1.2's one-hash design), epoch rotation cost, and analyzer-side
//! pointer-union pulls (the Fig. 8 "most recent 1 sec" query).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mphf::Mphf;
use switchpointer::pointer::{PointerConfig, PointerHierarchy};

const N: usize = 100_000;

fn setup(k: usize, alpha: u32) -> (PointerHierarchy, Vec<u64>) {
    let addrs: Vec<u64> = (0..N as u64).map(|i| 0x0a00_0000 + i).collect();
    let mphf = Arc::new(Mphf::build(&addrs).unwrap());
    (
        PointerHierarchy::new(
            PointerConfig {
                n_hosts: N,
                alpha,
                k,
            },
            mphf,
        ),
        addrs,
    )
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("pointer_update");
    group.throughput(Throughput::Elements(4_096));
    for k in [1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::new("same_epoch_k", k), &k, |b, &k| {
            let (mut h, addrs) = setup(k, 10);
            let mut i = 0usize;
            b.iter(|| {
                for _ in 0..4_096 {
                    h.update_unchecked(addrs[i % addrs.len()], 7);
                    i = i.wrapping_add(1);
                }
            });
        });
    }
    group.finish();
}

fn bench_rotation(c: &mut Criterion) {
    // Worst case: every update lands in a new epoch, forcing slot refresh
    // (and periodic clears) each time.
    let mut group = c.benchmark_group("pointer_rotation");
    group.throughput(Throughput::Elements(1_024));
    group.bench_function("new_epoch_every_update_k3", |b| {
        let (mut h, addrs) = setup(3, 10);
        let mut e = 0u64;
        b.iter(|| {
            for i in 0..1_024 {
                h.update_unchecked(addrs[i % addrs.len()], e);
                e += 1;
            }
        });
    });
    group.finish();
}

fn bench_union(c: &mut Criterion) {
    // Analyzer pull: union over a 1000-epoch window on a populated
    // hierarchy (mix of live slots and archives).
    let (mut h, addrs) = setup(3, 10);
    for e in 0..1_000u64 {
        for i in 0..32usize {
            h.update_unchecked(addrs[(e as usize * 37 + i * 101) % addrs.len()], e);
        }
    }
    let mut group = c.benchmark_group("pointer_union");
    group.bench_function("union_1000_epochs", |b| {
        b.iter(|| std::hint::black_box(h.pointer_union(0, 999)));
    });
    group.bench_function("union_10_epochs", |b| {
        b.iter(|| std::hint::black_box(h.pointer_union(990, 999)));
    });
    group.finish();
}

criterion_group!(benches, bench_update, bench_rotation, bench_union);
criterion_main!(benches);
