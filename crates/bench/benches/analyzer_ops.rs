//! Analyzer compute-cost benchmarks: the *real* work the analyzer does
//! (pointer decode via the directory, search-radius reduction, host-store
//! queries, diagnosis logic) as opposed to the modelled RPC latencies.
//! These bound how fast a production analyzer written on this library
//! could go if the RPC fabric were free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::prelude::*;
use switchpointer::testbed::{Testbed, TestbedConfig};
use telemetry::EpochRange;

/// A populated contention deployment: m UDP culprits + TCP victim, run.
fn contention_testbed(m: usize) -> (Testbed, FlowId, NodeId) {
    let topo = Topology::dumbbell(m + 1, m + 1, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let a = tb.node("L0");
    let b = tb.node("R0");
    let tcp = tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
        a,
        b,
        Priority::LOW,
        SimTime::from_ms(40),
    ));
    for u in 0..m {
        let src = tb.node(&format!("L{}", u + 1));
        let dst = tb.node(&format!("R{}", u + 1));
        tb.sim.add_udp_flow(UdpFlowSpec::burst(
            src,
            dst,
            Priority::HIGH,
            SimTime::from_ms(20),
            SimTime::from_ms(1),
            GBPS,
        ));
    }
    tb.sim.run_until(SimTime::from_ms(40));
    (tb, tcp, b)
}

fn bench_diagnosis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyzer_diagnose_contention");
    group.sample_size(30);
    for m in [4usize, 16] {
        let (tb, victim, dst) = contention_testbed(m);
        let analyzer = tb.analyzer();
        let window = tb.cfg.trigger.window;
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| std::hint::black_box(analyzer.diagnose_contention(victim, dst, window)));
        });
    }
    group.finish();
}

fn bench_hosts_for(c: &mut Criterion) {
    let (tb, _, _) = contention_testbed(16);
    let analyzer = tb.analyzer();
    let sl = tb.node("SL");
    let mut group = c.benchmark_group("analyzer_pointer_decode");
    group.bench_function("hosts_for_20_epochs", |b| {
        b.iter(|| std::hint::black_box(analyzer.hosts_for(sl, EpochRange { lo: 0, hi: 19 })));
    });
    group.finish();
}

fn bench_top_k(c: &mut Criterion) {
    let (tb, _, _) = contention_testbed(16);
    let analyzer = tb.analyzer();
    let sl = tb.node("SL");
    let mut group = c.benchmark_group("analyzer_top_k");
    group.bench_function("top_100_contention_fixture", |b| {
        b.iter(|| std::hint::black_box(analyzer.top_k(sl, 100, EpochRange { lo: 0, hi: 40 })));
    });
    group.finish();
}

criterion_group!(benches, bench_diagnosis, bench_hosts_for, bench_top_k);
criterion_main!(benches);
