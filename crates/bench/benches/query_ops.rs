//! Host-store benchmarks: ingest rate and the two analyzer query shapes
//! (filter by (switch, epoch range), top-k aggregate) on stores of
//! realistic size — the query-execution term of Fig. 12's breakdown.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::packet::{FlowId, NodeId, Priority, Protocol};
use switchpointer::hoststore::FlowStore;
use telemetry::{DecodedTelemetry, EpochRange, HopTelemetry};

fn telem(seed: u64) -> DecodedTelemetry {
    let e = seed % 100;
    DecodedTelemetry {
        hops: vec![
            HopTelemetry {
                switch: NodeId(0),
                epochs: EpochRange { lo: e, hi: e },
            },
            HopTelemetry {
                switch: NodeId(1),
                epochs: EpochRange {
                    lo: e.saturating_sub(1),
                    hi: e + 1,
                },
            },
        ],
        tag_idx: 0,
    }
}

fn store_with(n_flows: usize, pkts_per_flow: usize) -> FlowStore {
    let mut s = FlowStore::new();
    for f in 0..n_flows {
        for p in 0..pkts_per_flow {
            s.ingest(
                FlowId(f as u64),
                NodeId(100 + (f % 32) as u32),
                NodeId(200),
                Protocol::Tcp,
                Priority::LOW,
                1_448,
                &telem((f * 7 + p) as u64),
                Some((f % 4) as u16),
            );
        }
    }
    s
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("hoststore_ingest");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("ingest_1k_pkts", |b| {
        b.iter(|| store_with(100, 10));
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("hoststore_query");
    for n_flows in [100usize, 1_000, 10_000] {
        let s = store_with(n_flows, 5);
        group.bench_with_input(BenchmarkId::new("flows_matching", n_flows), &s, |b, s| {
            b.iter(|| {
                std::hint::black_box(s.flows_matching(NodeId(0), EpochRange { lo: 10, hi: 20 }))
            });
        });
        group.bench_with_input(BenchmarkId::new("top_100", n_flows), &s, |b, s| {
            b.iter(|| std::hint::black_box(s.top_k_through(NodeId(0), 100)));
        });
        group.bench_with_input(BenchmarkId::new("sizes_by_link", n_flows), &s, |b, s| {
            b.iter(|| std::hint::black_box(s.sizes_by_link(NodeId(0))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_queries);
criterion_main!(benches);
