//! MPHF microbenchmarks: construction time (the analyzer's coarse-timescale
//! job, §4.1.2) and lookup cost (the switch's per-packet hash).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mphf::Mphf;

fn keys(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 0x0a00_0000 + i).collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("mphf_build");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let ks = keys(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ks, |b, ks| {
            b.iter(|| Mphf::build(std::hint::black_box(ks)).unwrap());
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let ks = keys(100_000);
    let m = Mphf::build(&ks).unwrap();
    let mut group = c.benchmark_group("mphf_lookup");
    group.throughput(Throughput::Elements(ks.len() as u64));
    group.bench_function("index_unchecked_100k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for k in &ks {
                acc ^= m.index_unchecked(std::hint::black_box(k));
            }
            acc
        });
    });
    group.bench_function("index_checked_100k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for k in &ks {
                acc ^= m.index(std::hint::black_box(k)).unwrap();
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_lookup);
criterion_main!(benches);
