//! Fig. 9 — per-packet cost of the forwarding pipeline: vanilla-OVS
//! baseline vs SwitchPointer k = 1 / k = 3 / k = 5.
//!
//! Criterion reports ns/packet; `spexp fig9` converts such measurements
//! into the paper's Gbps-vs-packet-size curves. The k-sweep doubles as the
//! ablation for the paper's "one hash operation independent of k" claim:
//! cost grows by the k extra bit writes only, not by extra hashing.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mphf::Mphf;
use switchpointer::pipeline::{unique_dst_workload, workload_addrs, ForwardingPipeline};
use switchpointer::pointer::PointerConfig;

const N_DSTS: usize = 100_000;
const BATCH: usize = 4_096;

fn bench_pipeline(c: &mut Criterion) {
    let addrs = workload_addrs(N_DSTS);
    let mphf = Arc::new(Mphf::build(&addrs).expect("mphf"));
    let wl = unique_dst_workload(BATCH, N_DSTS, 256);

    let mut group = c.benchmark_group("fig9_pipeline");
    group.throughput(Throughput::Elements(BATCH as u64));

    group.bench_function("ovs_baseline", |b| {
        let mut pipe = ForwardingPipeline::baseline();
        b.iter(|| {
            for pkt in &wl {
                std::hint::black_box(pipe.process(pkt));
            }
        });
    });

    for k in [1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::new("switchpointer", k), &k, |b, &k| {
            let mut pipe = ForwardingPipeline::with_pointers(
                PointerConfig {
                    n_hosts: N_DSTS,
                    alpha: 10,
                    k,
                },
                mphf.clone(),
            );
            b.iter(|| {
                for pkt in &wl {
                    std::hint::black_box(pipe.process(pkt));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
