//! Benchmark-only crate; see `benches/` for the Criterion targets:
//!
//! * `fig9_pipeline` — the paper's Fig. 9 forwarding-cost comparison
//! * `mphf_ops` — hash construction and lookup
//! * `pointer_ops` — line-rate update / rotation / analyzer pulls
//! * `query_ops` — host-store ingest and query shapes
//! * `simulator` — event-loop throughput with and without instrumentation
