//! The SwitchPointer switch component (§4.1).
//!
//! Runs inside the simulator's forwarding pipeline via [`netsim::apps::SwitchApp`].
//! Per forwarded packet it:
//!
//! 1. reads the switch's *local* clock (bounded offset from global time) and
//!    derives the current epoch;
//! 2. updates the hierarchical pointer structure with the packet's
//!    destination (one MPHF evaluation, k bit writes);
//! 3. embeds telemetry into the header: in commodity mode the designated
//!    tagging switch pushes the (linkID, epochID) double tag; in INT mode
//!    every switch appends a (switchID, epochID) pair.
//!
//! The component's state is shared (`Rc<RefCell<…>>`) between the app
//! installed in the simulator and the analyzer, mirroring the real system
//! where the analyzer pulls pointers out of switch SRAM over the control
//! channel.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use mphf::Mphf;
use netsim::apps::{AppCtx, EgressInfo, SwitchApp};
use netsim::packet::{NodeId, Packet};
use telemetry::{wire, EmbedMode, EpochParams, PathCodec};

use crate::pointer::{PointerConfig, PointerHierarchy};

/// Shared, queryable state of one SwitchPointer switch.
#[derive(Debug)]
pub struct SwitchComponent {
    /// The switch this component runs on.
    pub switch: NodeId,
    /// Epoch timing parameters (α, ε, Δ).
    pub params: EpochParams,
    /// Telemetry embedding mode.
    pub mode: EmbedMode,
    /// The hierarchical pointer structure.
    pub pointers: PointerHierarchy,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets this switch tagged.
    pub tagged: u64,
    codec: Rc<PathCodec>,
}

impl SwitchComponent {
    pub fn new(
        switch: NodeId,
        params: EpochParams,
        mode: EmbedMode,
        pointer_cfg: PointerConfig,
        mphf: Arc<Mphf>,
        codec: Rc<PathCodec>,
    ) -> Self {
        SwitchComponent {
            switch,
            params,
            mode,
            pointers: PointerHierarchy::new(pointer_cfg, mphf),
            forwarded: 0,
            tagged: 0,
            codec,
        }
    }

    /// The per-packet dataplane work.
    fn process(&mut self, ctx: &AppCtx, pkt: &mut Packet, egress: EgressInfo) {
        self.forwarded += 1;
        let epoch = self.params.epoch_of(ctx.local_time);
        self.pointers.update(pkt.dst.addr(), epoch);
        match self.mode {
            EmbedMode::Commodity => {
                if !wire::has_link_tag(pkt) && self.codec.should_tag(self.switch, pkt) {
                    wire::embed_commodity(pkt, egress.link.0, epoch);
                    self.tagged += 1;
                }
            }
            EmbedMode::Int => {
                wire::embed_int_hop(pkt, self.switch.0, epoch);
                self.tagged += 1;
            }
        }
    }

    /// The switch's current epoch given its local clock reading.
    pub fn epoch_at(&self, local_time: netsim::time::SimTime) -> u64 {
        self.params.epoch_of(local_time)
    }
}

/// Shared handle the analyzer keeps.
pub type SwitchHandle = Rc<RefCell<SwitchComponent>>;

/// The simulator-facing adapter.
pub struct SwitchPointerApp {
    state: SwitchHandle,
}

impl SwitchPointerApp {
    /// Wraps shared switch state as an installable app; returns (app, handle).
    pub fn new(component: SwitchComponent) -> (Self, SwitchHandle) {
        let state = Rc::new(RefCell::new(component));
        (
            SwitchPointerApp {
                state: state.clone(),
            },
            state,
        )
    }
}

impl SwitchApp for SwitchPointerApp {
    fn on_forward(&mut self, ctx: &mut AppCtx, pkt: &mut Packet, egress: EgressInfo) {
        self.state.borrow_mut().process(ctx, pkt, egress);
    }
}

/// Installs SwitchPointer on every switch of a simulator and returns the
/// handles keyed by switch id (what the analyzer consumes).
pub fn install_on_all_switches(
    sim: &mut netsim::engine::Simulator,
    params: EpochParams,
    mode: EmbedMode,
    pointer_cfg: PointerConfig,
    mphf: Arc<Mphf>,
    codec: Rc<PathCodec>,
) -> std::collections::HashMap<NodeId, SwitchHandle> {
    let switches: Vec<NodeId> = sim.topo().switches().to_vec();
    let mut handles = std::collections::HashMap::new();
    for sw in switches {
        let comp = SwitchComponent::new(sw, params, mode, pointer_cfg, mphf.clone(), codec.clone());
        let (app, handle) = SwitchPointerApp::new(comp);
        sim.set_switch_app(sw, Box::new(app));
        handles.insert(sw, handle);
    }
    handles
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::engine::{SimConfig, Simulator};
    use netsim::packet::Priority;
    use netsim::time::SimTime;
    use netsim::topology::{Topology, GBPS};
    use netsim::udp::UdpFlowSpec;

    fn setup(
        topo: Topology,
        mode: EmbedMode,
    ) -> (Simulator, std::collections::HashMap<NodeId, SwitchHandle>) {
        let mut sim = Simulator::new(topo, SimConfig::default());
        let addrs: Vec<u64> = sim.topo().hosts().iter().map(|h| h.addr()).collect();
        let mphf = Arc::new(Mphf::build(&addrs).unwrap());
        let codec = Rc::new(PathCodec::new(sim.topo().clone()));
        let params = EpochParams {
            alpha: SimTime::from_ms(1),
            epsilon: SimTime::from_ms(1),
            delta: SimTime::from_ms(2),
        };
        let cfg = PointerConfig {
            n_hosts: addrs.len(),
            alpha: 10,
            k: 3,
        };
        let handles = install_on_all_switches(&mut sim, params, mode, cfg, mphf, codec);
        (sim, handles)
    }

    #[test]
    fn pointers_record_destinations_per_epoch() {
        let (mut sim, handles) = setup(Topology::chain(3, 2, GBPS), EmbedMode::Commodity);
        let a = sim.topo().node_by_name("A").unwrap();
        let f = sim.topo().node_by_name("F").unwrap();
        let s2 = sim.topo().node_by_name("S2").unwrap();
        sim.add_udp_flow(UdpFlowSpec {
            src: a,
            dst: f,
            priority: Priority::LOW,
            start: SimTime::from_ms(2),
            duration: SimTime::from_ms(1),
            rate_bps: 100_000_000,
            payload_bytes: 1000,
        });
        sim.run_to_completion();
        let s2c = handles[&s2].borrow();
        assert!(s2c.forwarded > 0);
        // Epoch 2 (α = 1 ms, flow ran 2..3 ms) must contain F.
        assert!(s2c.pointers.contains(f.addr(), 2));
        assert!(
            !s2c.pointers.contains(a.addr(), 2),
            "A is not a destination"
        );
    }

    #[test]
    fn commodity_mode_tags_exactly_once_per_packet() {
        let (mut sim, handles) = setup(Topology::chain(3, 2, GBPS), EmbedMode::Commodity);
        let a = sim.topo().node_by_name("A").unwrap();
        let f = sim.topo().node_by_name("F").unwrap();
        let flow = sim.add_udp_flow(UdpFlowSpec {
            src: a,
            dst: f,
            priority: Priority::LOW,
            start: SimTime::ZERO,
            duration: SimTime::from_ms(1),
            rate_bps: 100_000_000,
            payload_bytes: 1000,
        });
        sim.run_to_completion();
        let delivered = sim.traces.rx_events(flow).len() as u64;
        let s1 = sim.topo().node_by_name("S1").unwrap();
        let s2 = sim.topo().node_by_name("S2").unwrap();
        let s3 = sim.topo().node_by_name("S3").unwrap();
        assert_eq!(handles[&s1].borrow().tagged, delivered, "S1 tags A->F");
        assert_eq!(handles[&s2].borrow().tagged, 0);
        assert_eq!(handles[&s3].borrow().tagged, 0);
    }

    #[test]
    fn int_mode_every_switch_tags() {
        let (mut sim, handles) = setup(Topology::chain(3, 2, GBPS), EmbedMode::Int);
        let a = sim.topo().node_by_name("A").unwrap();
        let f = sim.topo().node_by_name("F").unwrap();
        let flow = sim.add_udp_flow(UdpFlowSpec {
            src: a,
            dst: f,
            priority: Priority::LOW,
            start: SimTime::ZERO,
            duration: SimTime::from_ms(1),
            rate_bps: 100_000_000,
            payload_bytes: 1000,
        });
        sim.run_to_completion();
        let delivered = sim.traces.rx_events(flow).len() as u64;
        for name in ["S1", "S2", "S3"] {
            let sw = sim.topo().node_by_name(name).unwrap();
            assert_eq!(handles[&sw].borrow().tagged, delivered, "{name}");
        }
    }

    #[test]
    fn local_clock_offset_shifts_recorded_epoch() {
        let (mut sim, handles) = setup(Topology::chain(2, 1, GBPS), EmbedMode::Commodity);
        let a = sim.topo().node_by_name("A").unwrap();
        let b = sim.topo().node_by_name("B").unwrap();
        let s1 = sim.topo().node_by_name("S1").unwrap();
        // S1's clock runs 1 ms (one epoch) ahead.
        sim.set_clock_offset(s1, 1_000_000);
        sim.add_udp_flow(UdpFlowSpec {
            src: a,
            dst: b,
            priority: Priority::LOW,
            start: SimTime::from_us(100),
            duration: SimTime::from_us(50),
            rate_bps: GBPS,
            payload_bytes: 1000,
        });
        sim.run_to_completion();
        let c = handles[&s1].borrow();
        // Global time ~0.1 ms => local ~1.1 ms => epoch 1, not 0 (at exact
        // level-1 resolution; the coarse top level cannot distinguish).
        assert_eq!(c.pointers.contains_within(b.addr(), 1, 1), Some(true));
        assert_ne!(c.pointers.contains_within(b.addr(), 0, 1), Some(true));
    }
}
