//! The end-host flow-record store (§4.2, §6 "implemented using MongoDB").
//!
//! One record per flow terminating at this host, holding what the paper's
//! OVS module keeps: the flow's 5-tuple identity (our [`FlowId`] + endpoint
//! metadata), the list of switches visited, the epoch ranges at each
//! switch, byte/packet counts (total and per epoch), the DSCP priority,
//! and — beyond the paper's list — the sampled link VID, which is what the
//! load-imbalance query groups by.
//!
//! The store answers the analyzer's two query shapes:
//! * *filter*: flows that traversed switch S during epoch range E
//!   (the "(switchID, epochID) pair" filter of §1);
//! * *aggregate*: top-k flows by bytes, flow-size distributions.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use netsim::packet::{FlowId, NodeId, Priority, Protocol};
use telemetry::{DecodedTelemetry, EpochRange};

/// A stored flow record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRecord {
    pub flow: FlowId,
    pub src: NodeId,
    pub dst: NodeId,
    pub protocol: Protocol,
    /// DSCP value — the paper stores it to reason about priority contention.
    pub priority: Priority,
    pub bytes: u64,
    pub packets: u64,
    /// Switches on the flow's path, in traversal order.
    pub path: Vec<NodeId>,
    /// Epochs each switch may have processed this flow's packets in (the
    /// union of per-packet decoded ranges).
    pub epochs_at: BTreeMap<NodeId, BTreeSet<u64>>,
    /// Payload bytes per epoch of the *tagging* switch (exact epochs — this
    /// is the per-epoch byte count series the §5.1 alert carries).
    pub bytes_per_epoch: BTreeMap<u64, u64>,
    /// Link VID sampled in the packets' telemetry (identifies e.g. which
    /// parallel core link the flow used — the Fig. 8 grouping key).
    pub link_vid: Option<u16>,
}

impl FlowRecord {
    /// Did any packet of this flow possibly traverse `switch` during any
    /// epoch of `range`?
    pub fn matches(&self, switch: NodeId, range: EpochRange) -> bool {
        self.epochs_at
            .get(&switch)
            .map(|set| set.range(range.lo..=range.hi).next().is_some())
            .unwrap_or(false)
    }

    /// The newest epoch any switch recorded for this flow — what retention
    /// sweeps compare against the eviction floor. A record whose newest
    /// epoch predates the floor cannot match any retained epoch range.
    pub fn newest_epoch(&self) -> Option<u64> {
        self.epochs_at
            .values()
            .filter_map(|s| s.iter().next_back())
            .max()
            .copied()
    }
}

/// Stable shard assignment of a flow: [`mphf::stable_shard`] (a splitmix64
/// finalizer reduced mod `n_shards`) over the flow id. Every layer that
/// partitions by key — flow records here, directory hosts in
/// [`crate::shard`] — uses this one function, so a key lands in the same
/// shard everywhere.
pub fn shard_of(flow: FlowId, n_shards: usize) -> usize {
    mphf::stable_shard(flow.0, n_shards)
}

/// What changed in a [`FlowStore`] since a recorded version baseline —
/// the input to incremental snapshot refresh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreDelta {
    /// No mutation since the baseline.
    Unchanged,
    /// Only these flows were touched (ascending flow id); every shard not
    /// containing one of them is byte-identical to the baseline.
    Flows(Vec<FlowId>),
    /// Records were evicted since the baseline: per-flow journaling cannot
    /// express removals, so the caller must re-freeze the whole store.
    FullRescan,
}

/// The per-host store.
#[derive(Debug, Default)]
pub struct FlowStore {
    records: HashMap<FlowId, FlowRecord>,
    /// Secondary index: switch -> flows that reported it on their path.
    by_switch: HashMap<NodeId, BTreeSet<FlowId>>,
    /// Monotone mutation counter (bumps once per ingest / eviction pass).
    version: u64,
    /// flow -> version at which it was last mutated (dirty-set journal for
    /// incremental snapshot refresh; one u64 per live record).
    modified_at: HashMap<FlowId, u64>,
    /// Version of the most recent eviction, if any (evictions invalidate
    /// the per-flow journal for older baselines).
    last_eviction: u64,
}

impl FlowStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one decoded packet.
    #[allow(clippy::too_many_arguments)]
    pub fn ingest(
        &mut self,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        protocol: Protocol,
        priority: Priority,
        payload: u32,
        telemetry: &DecodedTelemetry,
        link_vid: Option<u16>,
    ) {
        self.version += 1;
        self.modified_at.insert(flow, self.version);
        let rec = self.records.entry(flow).or_insert_with(|| FlowRecord {
            flow,
            src,
            dst,
            protocol,
            priority,
            bytes: 0,
            packets: 0,
            path: telemetry.path(),
            epochs_at: BTreeMap::new(),
            bytes_per_epoch: BTreeMap::new(),
            link_vid,
        });
        rec.bytes += payload as u64;
        rec.packets += 1;
        if rec.link_vid.is_none() {
            rec.link_vid = link_vid;
        }
        for hop in &telemetry.hops {
            let set = rec.epochs_at.entry(hop.switch).or_default();
            for e in hop.epochs.iter() {
                set.insert(e);
            }
            self.by_switch.entry(hop.switch).or_default().insert(flow);
        }
        // Exact per-epoch accounting at the tagging switch.
        if let Some(tag_hop) = telemetry.hops.get(telemetry.tag_idx) {
            if tag_hop.epochs.len() == 1 {
                *rec.bytes_per_epoch.entry(tag_hop.epochs.lo).or_insert(0) += payload as u64;
            }
        }
    }

    /// Number of flow records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// A flow's record, if stored.
    pub fn record(&self, flow: FlowId) -> Option<&FlowRecord> {
        self.records.get(&flow)
    }

    /// All records (deterministic order by flow id).
    pub fn records(&self) -> impl Iterator<Item = &FlowRecord> {
        let mut v: Vec<&FlowRecord> = self.records.values().collect();
        v.sort_by_key(|r| r.flow);
        v.into_iter()
    }

    /// Shard-aware iteration: the records of `shard` (of `n_shards`), in
    /// deterministic ascending-flow-id order. The union over all shards is
    /// exactly [`FlowStore::records`]; shards are disjoint.
    pub fn records_in_shard(
        &self,
        shard: usize,
        n_shards: usize,
    ) -> impl Iterator<Item = &FlowRecord> {
        self.records()
            .filter(move |r| shard_of(r.flow, n_shards) == shard)
    }

    /// *Filter query* restricted to one shard: flows of `shard` that
    /// traversed `switch` during `range`.
    pub fn flows_matching_in_shard(
        &self,
        switch: NodeId,
        range: EpochRange,
        shard: usize,
        n_shards: usize,
    ) -> Vec<&FlowRecord> {
        self.flows_matching(switch, range)
            .into_iter()
            .filter(|r| shard_of(r.flow, n_shards) == shard)
            .collect()
    }

    /// *Filter query*: flows that traversed `switch` during `range`.
    pub fn flows_matching(&self, switch: NodeId, range: EpochRange) -> Vec<&FlowRecord> {
        let Some(candidates) = self.by_switch.get(&switch) else {
            return Vec::new();
        };
        candidates
            .iter()
            .filter_map(|f| self.records.get(f))
            .filter(|r| r.matches(switch, range))
            .collect()
    }

    /// *Aggregate query*: top-k flows through `switch` by byte count
    /// (the Fig. 12 query).
    pub fn top_k_through(&self, switch: NodeId, k: usize) -> Vec<(FlowId, u64)> {
        let mut flows: Vec<(FlowId, u64)> = self
            .by_switch
            .get(&switch)
            .map(|set| {
                set.iter()
                    .filter_map(|f| self.records.get(f))
                    .map(|r| (r.flow, r.bytes))
                    .collect()
            })
            .unwrap_or_default();
        flows.sort_by_key(|&(f, b)| (std::cmp::Reverse(b), f));
        flows.truncate(k);
        flows
    }

    /// Retention: drops flow records whose newest epoch (at any switch) is
    /// older than `horizon_epoch`. The paper's host store ("initially
    /// maintained in memory and flushed to a local storage") is similarly
    /// bounded; we drop instead of spooling since queries target recent
    /// state. Returns the number of records evicted.
    ///
    /// An eviction also *compacts the journal*: every pre-eviction
    /// baseline gets [`StoreDelta::FullRescan`] regardless of per-flow
    /// stamps, and any baseline taken afterwards is ≥ the eviction
    /// version — so no surviving `modified_at` entry can ever satisfy a
    /// `changed_since` again. The whole journal is dropped (live records
    /// re-enter it on their next mutation) and emptied per-switch index
    /// sets go with it, so a long-lived store's bookkeeping shrinks with
    /// its records instead of accreting tombstones.
    pub fn evict_older_than(&mut self, horizon_epoch: u64) -> usize {
        let stale: Vec<FlowId> = self
            .records
            .values()
            .filter(|r| r.newest_epoch().map(|e| e < horizon_epoch).unwrap_or(true))
            .map(|r| r.flow)
            .collect();
        if stale.is_empty() {
            return 0;
        }
        self.version += 1;
        self.last_eviction = self.version;
        for f in &stale {
            self.records.remove(f);
            for set in self.by_switch.values_mut() {
                set.remove(f);
            }
        }
        self.modified_at.clear();
        self.by_switch.retain(|_, set| !set.is_empty());
        stale.len()
    }

    /// The monotone mutation counter (bumps once per ingest / eviction).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// What changed since the `version` baseline. `Flows` lists touched
    /// flows ascending; `FullRescan` means an eviction invalidated the
    /// journal for this baseline.
    pub fn changed_since(&self, version: u64) -> StoreDelta {
        if self.version == version {
            return StoreDelta::Unchanged;
        }
        if self.last_eviction > version {
            return StoreDelta::FullRescan;
        }
        let mut flows: Vec<FlowId> = self
            .modified_at
            .iter()
            .filter(|&(_, &v)| v > version)
            .map(|(&f, _)| f)
            .collect();
        flows.sort();
        StoreDelta::Flows(flows)
    }

    /// *Aggregate query*: (link VID, flow bytes) pairs for flows through
    /// `switch` — the Fig. 8 flow-size-distribution-per-egress query.
    pub fn sizes_by_link(&self, switch: NodeId) -> Vec<(u16, u64)> {
        let mut out: Vec<(u16, u64)> = self
            .by_switch
            .get(&switch)
            .map(|set| {
                set.iter()
                    .filter_map(|f| self.records.get(f))
                    .filter_map(|r| r.link_vid.map(|l| (l, r.bytes)))
                    .collect()
            })
            .unwrap_or_default();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{EpochRange, HopTelemetry};

    fn telem(hops: &[(u32, u64, u64)], tag_idx: usize) -> DecodedTelemetry {
        DecodedTelemetry {
            hops: hops
                .iter()
                .map(|&(sw, lo, hi)| HopTelemetry {
                    switch: NodeId(sw),
                    epochs: EpochRange { lo, hi },
                })
                .collect(),
            tag_idx,
        }
    }

    fn ingest_simple(store: &mut FlowStore, flow: u64, bytes: u32, hops: &[(u32, u64, u64)]) {
        store.ingest(
            FlowId(flow),
            NodeId(100),
            NodeId(101),
            Protocol::Udp,
            Priority::LOW,
            bytes,
            &telem(hops, 0),
            Some(7),
        );
    }

    #[test]
    fn ingest_accumulates_per_flow() {
        let mut s = FlowStore::new();
        ingest_simple(&mut s, 1, 1000, &[(0, 5, 5), (1, 4, 6)]);
        ingest_simple(&mut s, 1, 500, &[(0, 6, 6), (1, 5, 7)]);
        assert_eq!(s.len(), 1);
        let r = s.record(FlowId(1)).unwrap();
        assert_eq!(r.bytes, 1500);
        assert_eq!(r.packets, 2);
        assert_eq!(
            r.epochs_at[&NodeId(0)].iter().copied().collect::<Vec<_>>(),
            vec![5, 6]
        );
        assert_eq!(r.epochs_at[&NodeId(1)].len(), 4); // {4,5,6,7}
                                                      // Exact per-epoch bytes at the tagging switch (switch 0).
        assert_eq!(r.bytes_per_epoch[&5], 1000);
        assert_eq!(r.bytes_per_epoch[&6], 500);
    }

    #[test]
    fn filter_by_switch_and_epoch() {
        let mut s = FlowStore::new();
        ingest_simple(&mut s, 1, 100, &[(0, 5, 5)]);
        ingest_simple(&mut s, 2, 100, &[(0, 9, 9)]);
        ingest_simple(&mut s, 3, 100, &[(1, 5, 5)]);
        let hits = s.flows_matching(NodeId(0), EpochRange { lo: 4, hi: 6 });
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].flow, FlowId(1));
        assert!(s
            .flows_matching(NodeId(2), EpochRange { lo: 0, hi: 100 })
            .is_empty());
    }

    #[test]
    fn range_membership_is_inclusive() {
        let mut s = FlowStore::new();
        ingest_simple(&mut s, 1, 100, &[(0, 5, 7)]);
        let r = s.record(FlowId(1)).unwrap();
        assert!(r.matches(NodeId(0), EpochRange { lo: 7, hi: 9 }));
        assert!(r.matches(NodeId(0), EpochRange { lo: 0, hi: 5 }));
        assert!(!r.matches(NodeId(0), EpochRange { lo: 8, hi: 9 }));
    }

    #[test]
    fn top_k_orders_by_bytes_then_id() {
        let mut s = FlowStore::new();
        ingest_simple(&mut s, 1, 500, &[(0, 1, 1)]);
        ingest_simple(&mut s, 2, 900, &[(0, 1, 1)]);
        ingest_simple(&mut s, 3, 500, &[(0, 1, 1)]);
        ingest_simple(&mut s, 4, 100, &[(1, 1, 1)]);
        let top = s.top_k_through(NodeId(0), 2);
        assert_eq!(top, vec![(FlowId(2), 900), (FlowId(1), 500)]);
        let all = s.top_k_through(NodeId(0), 10);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn sizes_by_link_groups_for_load_imbalance() {
        let mut s = FlowStore::new();
        s.ingest(
            FlowId(1),
            NodeId(100),
            NodeId(101),
            Protocol::Tcp,
            Priority::LOW,
            2_000_000,
            &telem(&[(0, 1, 1)], 0),
            Some(3),
        );
        s.ingest(
            FlowId(2),
            NodeId(100),
            NodeId(101),
            Protocol::Tcp,
            Priority::LOW,
            500,
            &telem(&[(0, 1, 1)], 0),
            Some(4),
        );
        let by_link = s.sizes_by_link(NodeId(0));
        assert_eq!(by_link, vec![(3, 2_000_000), (4, 500)]);
    }

    #[test]
    fn eviction_drops_stale_records_only() {
        let mut s = FlowStore::new();
        ingest_simple(&mut s, 1, 100, &[(0, 2, 4)]);
        ingest_simple(&mut s, 2, 100, &[(0, 8, 9)]);
        ingest_simple(&mut s, 3, 100, &[(1, 3, 3), (0, 9, 10)]);
        let evicted = s.evict_older_than(8);
        assert_eq!(evicted, 1, "only flow 1 is wholly stale");
        assert!(s.record(FlowId(1)).is_none());
        assert!(s.record(FlowId(2)).is_some());
        // Flow 3's newest epoch (10) keeps it alive despite the old hop.
        assert!(s.record(FlowId(3)).is_some());
        // Index is consistent: stale flow no longer reachable by switch.
        assert!(s
            .flows_matching(NodeId(0), EpochRange { lo: 0, hi: 100 })
            .iter()
            .all(|r| r.flow != FlowId(1)));
    }

    #[test]
    fn shards_partition_the_store() {
        let mut s = FlowStore::new();
        for f in 0..64 {
            ingest_simple(&mut s, f, 100, &[(0, 5, 5)]);
        }
        for n_shards in [1usize, 2, 3, 8] {
            let mut seen = Vec::new();
            for shard in 0..n_shards {
                for r in s.records_in_shard(shard, n_shards) {
                    assert_eq!(shard_of(r.flow, n_shards), shard);
                    seen.push(r.flow);
                }
            }
            seen.sort();
            let all: Vec<FlowId> = s.records().map(|r| r.flow).collect();
            assert_eq!(seen, all, "shards must partition exactly ({n_shards})");
        }
    }

    #[test]
    fn sharded_filter_query_unions_to_unsharded() {
        let mut s = FlowStore::new();
        for f in 0..40 {
            ingest_simple(&mut s, f, 100, &[(0, (f % 4) + 1, (f % 4) + 1)]);
        }
        let range = EpochRange { lo: 2, hi: 3 };
        let full: Vec<FlowId> = s
            .flows_matching(NodeId(0), range)
            .iter()
            .map(|r| r.flow)
            .collect();
        let mut merged: Vec<FlowId> = (0..4)
            .flat_map(|shard| {
                s.flows_matching_in_shard(NodeId(0), range, shard, 4)
                    .into_iter()
                    .map(|r| r.flow)
                    .collect::<Vec<_>>()
            })
            .collect();
        merged.sort();
        assert_eq!(merged, full);
    }

    #[test]
    fn eviction_everything_and_nothing() {
        let mut s = FlowStore::new();
        ingest_simple(&mut s, 1, 100, &[(0, 5, 5)]);
        assert_eq!(s.evict_older_than(0), 0);
        assert_eq!(s.evict_older_than(100), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn changed_since_journals_touched_flows_and_evictions() {
        let mut s = FlowStore::new();
        ingest_simple(&mut s, 1, 100, &[(0, 5, 5)]);
        ingest_simple(&mut s, 2, 100, &[(0, 6, 6)]);
        let base = s.version();
        assert_eq!(s.changed_since(base), StoreDelta::Unchanged);

        ingest_simple(&mut s, 2, 50, &[(0, 7, 7)]);
        ingest_simple(&mut s, 3, 100, &[(1, 7, 7)]);
        assert_eq!(
            s.changed_since(base),
            StoreDelta::Flows(vec![FlowId(2), FlowId(3)])
        );
        // A baseline taken now sees nothing.
        let base2 = s.version();
        assert_eq!(s.changed_since(base2), StoreDelta::Unchanged);

        // Evictions invalidate per-flow journaling for older baselines.
        assert_eq!(s.evict_older_than(6), 1);
        assert_eq!(s.changed_since(base), StoreDelta::FullRescan);
        assert_eq!(s.changed_since(base2), StoreDelta::FullRescan);
        let base3 = s.version();
        ingest_simple(&mut s, 4, 100, &[(0, 9, 9)]);
        assert_eq!(s.changed_since(base3), StoreDelta::Flows(vec![FlowId(4)]));
    }

    #[test]
    fn eviction_compacts_the_journal_without_losing_deltas() {
        let mut s = FlowStore::new();
        for f in 0..8 {
            ingest_simple(&mut s, f, 100, &[(0, f, f)]);
        }
        assert_eq!(s.modified_at.len(), 8);
        // Evict half: the journal empties (every pre-eviction baseline is
        // FullRescan; post-eviction baselines only need newer stamps) and
        // per-switch sets with no survivors disappear.
        ingest_simple(&mut s, 100, 100, &[(7, 1, 1)]); // switch 7, stale
        assert_eq!(s.evict_older_than(4), 5);
        assert!(s.modified_at.is_empty(), "journal must compact on eviction");
        assert!(
            !s.by_switch.contains_key(&NodeId(7)),
            "emptied per-switch index sets must be dropped"
        );
        // Post-eviction journaling starts clean and stays precise.
        let base = s.version();
        ingest_simple(&mut s, 6, 50, &[(0, 9, 9)]);
        assert_eq!(s.changed_since(base), StoreDelta::Flows(vec![FlowId(6)]));
        assert_eq!(s.modified_at.len(), 1);
        // Records that survived but were not touched since are invisible
        // to the compacted journal, as they must be.
        assert!(s.record(FlowId(5)).is_some());
    }

    #[test]
    fn newest_epoch_spans_all_switches() {
        let mut s = FlowStore::new();
        ingest_simple(&mut s, 1, 100, &[(0, 2, 4), (1, 7, 9)]);
        assert_eq!(s.record(FlowId(1)).unwrap().newest_epoch(), Some(9));
    }

    #[test]
    fn uncertain_tag_epoch_skips_per_epoch_accounting() {
        let mut s = FlowStore::new();
        // Tagging hop has a multi-epoch range: cannot attribute bytes.
        s.ingest(
            FlowId(1),
            NodeId(100),
            NodeId(101),
            Protocol::Udp,
            Priority::LOW,
            100,
            &telem(&[(0, 5, 7)], 0),
            None,
        );
        assert!(s.record(FlowId(1)).unwrap().bytes_per_epoch.is_empty());
    }
}
