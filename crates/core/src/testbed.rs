//! One-call wiring of a full SwitchPointer deployment over a simulated
//! topology: MPHF construction and distribution, switch components on every
//! switch, host components on every host, and an [`Analyzer`] over the lot.
//!
//! This is the "operator bootstraps the system" step of the paper (§4.3:
//! the analyzer builds the hash function and distributes it) packaged for
//! the experiments, examples and integration tests.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use mphf::Mphf;
use netsim::engine::{SimConfig, Simulator, TcpFlowSpec};
use netsim::packet::{FlowId, NodeId, Priority};
use netsim::time::SimTime;
use netsim::topology::{Topology, GBPS};
use netsim::udp::UdpFlowSpec;
use telemetry::{EmbedMode, EpochParams, PathCodec, TelemetryDecoder};

use crate::analyzer::{Analyzer, HostDirectory};
use crate::cost::CostModel;
use crate::host::{install_on_all_hosts, HostHandle, TriggerConfig};
use crate::pointer::PointerConfig;
use crate::switch::{install_on_all_switches, SwitchHandle};

/// Deployment-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct TestbedConfig {
    /// Epoch timing (α duration, ε, Δ).
    pub params: EpochParams,
    /// Telemetry embedding mode.
    pub mode: EmbedMode,
    /// Pointer hierarchy branching factor (α slots per level).
    pub pointer_alpha: u32,
    /// Pointer hierarchy depth (k levels).
    pub pointer_k: usize,
    /// Host trigger engine tuning.
    pub trigger: TriggerConfig,
    /// Analyzer RPC cost model.
    pub cost: CostModel,
    /// Simulator configuration (queues, seed).
    pub sim: SimConfig,
}

impl TestbedConfig {
    /// Millisecond-scale defaults suited to the paper's experiments:
    /// α = 1 ms epochs (so 100 ms scenarios span many epochs), commodity
    /// tagging, a 10×3 hierarchy, the 1 ms / 50% trigger, calibrated costs.
    pub fn default_ms() -> Self {
        TestbedConfig {
            params: EpochParams {
                alpha: netsim::time::SimTime::from_ms(1),
                epsilon: netsim::time::SimTime::from_ms(1),
                delta: netsim::time::SimTime::from_ms(2),
            },
            mode: EmbedMode::Commodity,
            pointer_alpha: 10,
            pointer_k: 3,
            trigger: TriggerConfig::default(),
            cost: CostModel::paper_calibrated(),
            sim: SimConfig::default(),
        }
    }
}

/// A fully wired deployment.
pub struct Testbed {
    pub sim: Simulator,
    pub switches: HashMap<NodeId, SwitchHandle>,
    pub hosts: HashMap<NodeId, HostHandle>,
    pub mphf: Arc<Mphf>,
    pub cfg: TestbedConfig,
}

impl Testbed {
    /// Deploys SwitchPointer on every node of `topo`.
    pub fn new(topo: Topology, cfg: TestbedConfig) -> Self {
        let mut sim = Simulator::new(topo, cfg.sim);

        // Analyzer-side bootstrap: hash function over all host addresses.
        let addrs: Vec<u64> = sim.topo().hosts().iter().map(|h| h.addr()).collect();
        let mphf = Arc::new(Mphf::build(&addrs).expect("MPHF over host set"));
        let codec = Rc::new(PathCodec::new(sim.topo().clone()));
        let decoder = Rc::new(TelemetryDecoder::new(
            PathCodec::new(sim.topo().clone()),
            cfg.params,
            cfg.mode,
        ));

        let pointer_cfg = PointerConfig {
            n_hosts: addrs.len(),
            alpha: cfg.pointer_alpha,
            k: cfg.pointer_k,
        };
        let switches = install_on_all_switches(
            &mut sim,
            cfg.params,
            cfg.mode,
            pointer_cfg,
            mphf.clone(),
            codec,
        );
        let hosts = install_on_all_hosts(&mut sim, decoder, cfg.trigger);

        Testbed {
            sim,
            switches,
            hosts,
            mphf,
            cfg,
        }
    }

    /// Builds the analyzer view over the deployment (call after — or
    /// during — the simulation; handles are shared).
    pub fn analyzer(&self) -> Analyzer {
        let directory = HostDirectory::new(self.mphf.clone(), self.sim.topo().hosts());
        Analyzer::new(
            self.sim.topo().clone(),
            self.cfg.params,
            self.switches.clone(),
            self.hosts.clone(),
            directory,
            self.cfg.cost,
        )
    }

    /// Convenience: node lookup by name.
    pub fn node(&self, name: &str) -> NodeId {
        self.sim
            .topo()
            .node_by_name(name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    }
}

/// The churn-storm fixture shared by the retention drivers, benches and
/// regression tests: the deterministic continuous-watch contention
/// incident over a k=4 fat tree — the flow-id order (background, victim,
/// burst, background) fixes the victim/burst ECMP collision at `edge0_0`,
/// so the HIGH-priority burst starves the TCP victim at 15 ms and its
/// destination raises a trigger — plus caller-chosen churn waves
/// `(src, dst, start_ms, duration_ms)` whose records go stale one wave at
/// a time (the reclaimable tail retention sweeps chew through). Returns
/// the testbed, the victim flow and the victim's destination host.
pub fn churn_storm(waves: &[(&str, &str, u64, u64)]) -> (Testbed, FlowId, NodeId) {
    let topo = Topology::fat_tree(4, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let udp = |tb: &mut Testbed, s: &str, d: &str, start: u64, ms: u64| {
        let (s, d) = (tb.node(s), tb.node(d));
        tb.sim.add_udp_flow(UdpFlowSpec {
            src: s,
            dst: d,
            priority: Priority::LOW,
            start: SimTime::from_ms(start),
            duration: SimTime::from_ms(ms),
            rate_bps: 100_000_000,
            payload_bytes: 1458,
        });
    };
    udp(&mut tb, "h1_0_0", "h3_1_1", 0, 40);
    let (a, b) = (tb.node("h0_0_0"), tb.node("h0_0_1"));
    let (da, db) = (tb.node("h2_0_0"), tb.node("h2_0_1"));
    let victim = tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
        a,
        da,
        Priority::LOW,
        SimTime::from_ms(50),
    ));
    tb.sim.add_udp_flow(UdpFlowSpec::burst(
        b,
        db,
        Priority::HIGH,
        SimTime::from_ms(15),
        SimTime::from_ms(2),
        GBPS,
    ));
    udp(&mut tb, "h3_0_0", "h0_1_0", 0, 40);
    for &(s, d, start, ms) in waves {
        udp(&mut tb, s, d, start, ms);
    }
    (tb, victim, da)
}
