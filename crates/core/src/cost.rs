//! Control-plane RPC cost model.
//!
//! The paper's latency figures (Fig. 7, 8, 12) are dominated by
//! implementation constants of its Flask-based RPC: per-host connection
//! initiation (one thread spawned per contacted server — §6.2 calls this
//! out explicitly), request transfer, query execution over the host's flow
//! records, and response transfer. This module models those terms
//! explicitly so the harness reproduces the *shape* of the latency plots;
//! the constants are calibrated once, in [`CostModel::paper_calibrated`],
//! against the numbers the paper reports, and recorded in EXPERIMENTS.md.

use netsim::time::SimTime;

/// Latency constants of the analyzer's RPC fabric.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Host → analyzer alert and acknowledgment round trip (§5.1: "2-3 ms").
    pub alert_rtt: SimTime,
    /// Fixed cost of a pointer-retrieval round to the switches.
    pub pointer_retrieval_base: SimTime,
    /// Incremental cost per additional switch queried in the same round
    /// (§5.1: one switch ≈ 7-8 ms; §5.2: three switches ≈ 10 ms).
    pub pointer_retrieval_per_switch: SimTime,
    /// Fixed cost of one query wave to a set of hosts.
    pub query_base: SimTime,
    /// Serialized connection initiation per contacted host (the dominant
    /// term of Fig. 12's breakdown: the analyzer spawns one thread per
    /// server on demand).
    pub conn_init_per_host: SimTime,
    /// Request marshalling/transfer per host.
    pub request_per_host: SimTime,
    /// Query execution fixed cost per host.
    pub query_exec_per_host: SimTime,
    /// Query execution cost per flow record scanned at a host.
    pub query_exec_per_record: SimTime,
    /// Response transfer per host.
    pub response_per_host: SimTime,
    /// Cost of answering a pointer-retrieval round from the analyzer's
    /// epoch-keyed pointer cache instead of contacting the switches (a
    /// local map lookup — orders of magnitude below a retrieval round).
    pub pointer_cache_hit: SimTime,
    /// Per-extra-request marshalling overhead when several queries'
    /// requests to the same host are coalesced into one batched RPC (the
    /// expensive per-host connection initiation is paid once per batch).
    pub batched_request_per_query: SimTime,
    /// Directory decode cost per pointer bit resolved to a host id
    /// (MPHF-inverse lookup + sort insertion). With a sharded directory
    /// the shards decode their slices in parallel, so the modelled wall
    /// time is the *maximum* per-shard decode work.
    pub decode_per_pointer_bit: SimTime,
    /// Cross-shard merge cost per decoded host id when N > 1 directory
    /// shards reassemble a verdict (the sorted k-way merge the router
    /// runs). Far cheaper than the decode itself.
    pub shard_merge_per_host: SimTime,
}

impl CostModel {
    /// Constants calibrated against the paper's reported latencies:
    ///
    /// * 1 switch pointer retrieval ≈ 7.5 ms; 3 switches ≈ 10 ms
    ///   ⇒ base 6.25 ms + 1.25 ms/switch;
    /// * PathDump top-100 query over 96 servers ≈ 0.35 s, dominated by
    ///   connection initiation ⇒ ≈ 2.8 ms/host serialized;
    /// * Fig. 8 load-imbalance diagnosis ≈ linear, ~350-400 ms at 96 servers.
    pub fn paper_calibrated() -> Self {
        CostModel {
            alert_rtt: SimTime::from_us(2_500),
            pointer_retrieval_base: SimTime::from_us(6_250),
            pointer_retrieval_per_switch: SimTime::from_us(1_250),
            query_base: SimTime::from_us(8_000),
            conn_init_per_host: SimTime::from_us(2_800),
            request_per_host: SimTime::from_us(150),
            query_exec_per_host: SimTime::from_us(450),
            query_exec_per_record: SimTime::from_us(20),
            response_per_host: SimTime::from_us(300),
            pointer_cache_hit: SimTime::from_us(5),
            batched_request_per_query: SimTime::from_us(50),
            decode_per_pointer_bit: SimTime::from_us(2),
            shard_merge_per_host: SimTime::from_ns(100),
        }
    }

    /// Modelled wall time of decoding one query's pointer bits through a
    /// sharded directory: `per_shard_bits[s]` is the decode work shard `s`
    /// performed, `merged_bits` the host ids that flowed through
    /// cross-shard reassembly (zero for single-address probes, which
    /// route to one owning shard and need no merge). Shards decode
    /// concurrently (max term); the router then pays the serial merge. A
    /// single-shard directory degenerates to the plain decode cost.
    pub fn sharded_decode(&self, per_shard_bits: &[u64], merged_bits: u64) -> SimTime {
        let max = per_shard_bits.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return SimTime::ZERO;
        }
        let decode = self.decode_per_pointer_bit * max;
        if per_shard_bits.len() <= 1 {
            return decode;
        }
        decode + self.shard_merge_per_host * merged_bits
    }

    /// Latency of one pointer-retrieval round over `switches` switches.
    pub fn pointer_retrieval(&self, switches: usize) -> SimTime {
        if switches == 0 {
            return SimTime::ZERO;
        }
        self.pointer_retrieval_base + self.pointer_retrieval_per_switch * switches as u64
    }

    /// Breakdown of one query wave over `hosts` hosts scanning
    /// `records_per_host` records each.
    pub fn query_wave(&self, hosts: usize, records_per_host: &[usize]) -> QueryWaveCost {
        debug_assert_eq!(hosts, records_per_host.len());
        if hosts == 0 {
            return QueryWaveCost::default();
        }
        let conn = self.conn_init_per_host * hosts as u64;
        let req = self.request_per_host * hosts as u64;
        let exec_records: u64 = records_per_host.iter().map(|&r| r as u64).sum();
        let exec =
            self.query_exec_per_host * hosts as u64 + self.query_exec_per_record * exec_records;
        let resp = self.response_per_host * hosts as u64;
        QueryWaveCost {
            connection_initiation: conn,
            request: req,
            query_execution: exec,
            response: resp,
            base: self.query_base,
        }
    }
}

/// One host's workload inside a *batched* query wave: how many distinct
/// queries' requests were coalesced into the single RPC to this host, and
/// how many flow records each of those requests scans.
#[derive(Debug, Clone, Copy)]
pub struct BatchedHostLoad {
    /// Coalesced requests carried by the one RPC (≥ 1).
    pub requests: usize,
    /// Total records scanned across those requests.
    pub records: usize,
}

impl CostModel {
    /// Breakdown of one *batched* query wave: every entry of `loads` is one
    /// contacted host carrying one or more coalesced requests. Connection
    /// initiation (the Fig. 12-dominant serialized term) is paid **once per
    /// host**, not once per (query, host) pair; the extra requests pay only
    /// the cheap marshalling increment. Query execution still scales with
    /// the records actually scanned, so batching never hides real work.
    pub fn batched_query_wave(&self, loads: &[BatchedHostLoad]) -> QueryWaveCost {
        if loads.is_empty() {
            return QueryWaveCost::default();
        }
        let hosts = loads.len() as u64;
        let extra_requests: u64 = loads.iter().map(|l| (l.requests - 1) as u64).sum();
        let total_requests: u64 = loads.iter().map(|l| l.requests as u64).sum();
        let total_records: u64 = loads.iter().map(|l| l.records as u64).sum();
        QueryWaveCost {
            connection_initiation: self.conn_init_per_host * hosts,
            request: self.request_per_host * hosts
                + self.batched_request_per_query * extra_requests,
            query_execution: self.query_exec_per_host * total_requests
                + self.query_exec_per_record * total_records,
            response: self.response_per_host * hosts,
            base: self.query_base,
        }
    }
}

/// Cost of one analyzer → hosts query wave, in the four components Fig. 12
/// stacks.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryWaveCost {
    pub connection_initiation: SimTime,
    pub request: SimTime,
    pub query_execution: SimTime,
    pub response: SimTime,
    pub base: SimTime,
}

impl QueryWaveCost {
    pub fn total(&self) -> SimTime {
        self.base + self.connection_initiation + self.request + self.query_execution + self.response
    }
}

/// End-to-end latency breakdown of a debugging episode (the Fig. 7 stack).
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyBreakdown {
    /// Time from problem onset to the host trigger firing.
    pub detection: SimTime,
    /// Alert delivery + acknowledgment.
    pub alert: SimTime,
    /// Pointer retrieval from switches.
    pub pointer_retrieval: SimTime,
    /// All query waves to hosts.
    pub diagnosis: SimTime,
    /// Fig. 12-style split of the diagnosis term.
    pub diagnosis_detail: QueryWaveCost,
}

impl LatencyBreakdown {
    pub fn total(&self) -> SimTime {
        self.detection + self.alert + self.pointer_retrieval + self.diagnosis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_retrieval_matches_paper_quotes() {
        let c = CostModel::paper_calibrated();
        let one = c.pointer_retrieval(1);
        assert!(
            (7_000..=8_000).contains(&one.as_us()),
            "1 switch: {one} (paper: 7-8 ms)"
        );
        let three = c.pointer_retrieval(3);
        assert!(
            (9_500..=10_500).contains(&three.as_us()),
            "3 switches: {three} (paper: ~10 ms)"
        );
        assert_eq!(c.pointer_retrieval(0), SimTime::ZERO);
    }

    #[test]
    fn query_wave_scales_linearly_with_hosts() {
        let c = CostModel::paper_calibrated();
        let w16 = c.query_wave(16, &[5; 16]);
        let w96 = c.query_wave(96, &[5; 96]);
        let per_host_16 = (w16.total() - w16.base).as_ns() / 16;
        let per_host_96 = (w96.total() - w96.base).as_ns() / 96;
        assert_eq!(per_host_16, per_host_96);
        // 96 servers lands in the paper's ~0.35 s regime.
        let total_ms = w96.total().as_ms();
        assert!(
            (250..=450).contains(&total_ms),
            "96-host wave: {total_ms} ms"
        );
    }

    #[test]
    fn connection_initiation_dominates() {
        // Fig. 12's observation: "most of the response time is because of
        // connection initiation".
        let c = CostModel::paper_calibrated();
        let w = c.query_wave(64, &[10; 64]);
        assert!(w.connection_initiation > w.request + w.query_execution + w.response);
    }

    #[test]
    fn empty_wave_is_free() {
        let c = CostModel::paper_calibrated();
        assert_eq!(c.query_wave(0, &[]).total(), SimTime::ZERO);
    }

    #[test]
    fn batched_wave_with_single_requests_degenerates_to_plain_wave() {
        let c = CostModel::paper_calibrated();
        let plain = c.query_wave(3, &[5, 6, 7]);
        let loads: Vec<BatchedHostLoad> = [5, 6, 7]
            .iter()
            .map(|&records| BatchedHostLoad {
                requests: 1,
                records,
            })
            .collect();
        assert_eq!(c.batched_query_wave(&loads).total(), plain.total());
    }

    #[test]
    fn coalescing_shares_connection_initiation() {
        // 4 queries over the same 8 hosts: batched pays 8 connection
        // initiations instead of 32, which dominates the wave.
        let c = CostModel::paper_calibrated();
        let mut sequential = SimTime::ZERO;
        for _ in 0..4 {
            sequential += c.query_wave(8, &[10; 8]).total();
        }
        let loads = vec![
            BatchedHostLoad {
                requests: 4,
                records: 40,
            };
            8
        ];
        let batched = c.batched_query_wave(&loads).total();
        assert!(
            batched * 2 < sequential,
            "batched {batched} vs 4 sequential waves {sequential}"
        );
    }

    #[test]
    fn cache_hit_is_far_below_a_retrieval_round() {
        let c = CostModel::paper_calibrated();
        assert!(c.pointer_cache_hit * 100 < c.pointer_retrieval(1));
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = LatencyBreakdown {
            detection: SimTime::from_ms(1),
            alert: SimTime::from_ms(2),
            pointer_retrieval: SimTime::from_ms(3),
            diagnosis: SimTime::from_ms(4),
            diagnosis_detail: QueryWaveCost::default(),
        };
        assert_eq!(b.total(), SimTime::from_ms(10));
    }
}
