//! The hierarchical pointer data structure (§4.1.1) and its line-rate
//! update path (§4.1.2).
//!
//! A switch divides its local time into epochs of α ms and maintains `k`
//! levels of pointer sets:
//!
//! * level `h` (1 ≤ h ≤ k−1) holds α slots; one slot at level `h` covers
//!   α^(h−1) consecutive epochs (= α^h ms);
//! * the top level holds a single slot covering α^(k−1) epochs (= α^k ms),
//!   pushed to the control plane when it rotates.
//!
//! Every slot is an n-bit [`BitSet`] indexed by the shared minimal perfect
//! hash of the packet's destination address, so a packet costs **one hash
//! evaluation plus k bit writes** regardless of k. Rotation is lazy: a slot
//! whose period label is stale is cleared on first touch, which models the
//! control-plane agent's register-rotation described in the paper without
//! needing per-epoch timers.
//!
//! The deliberate redundancy between levels (a level-(h+1) slot covers the
//! same wall-clock span as all α level-h slots) is what buys the
//! memory/bandwidth trade-off of Fig. 10 — both accounted for by
//! [`PointerConfig::memory_bytes`] and [`PointerConfig::flush_bandwidth_bps`].

use std::sync::Arc;

use mphf::Mphf;
use telemetry::frame::{Dec, Enc, WireError};

use crate::bitset::BitSet;

/// Sizing parameters of a switch's pointer hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerConfig {
    /// Maximum number of end-hosts (n): bits per slot.
    pub n_hosts: usize,
    /// α — both the number of slots per level and the epoch duration in ms
    /// (the paper couples the two).
    pub alpha: u32,
    /// k — number of levels.
    pub k: usize,
}

/// A [`PointerConfig`] whose capacity math does not fit the u64 epoch
/// arithmetic. Deep hierarchies with large α overflow `α^(h−1)` (slot
/// spans) or `α·(α^h − 1)` (recycling periods); these used to be a
/// debug-build-only panic (and a silent wraparound in release) — now they
/// are a typed construction error surfaced by [`PointerConfig::validate`]
/// and [`PointerHierarchy::try_new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointerConfigError {
    /// Need k ≥ 1 levels.
    NoLevels,
    /// Need α ≥ 2 (α = 1 would make every level span one epoch).
    AlphaTooSmall,
    /// `α^(h−1)` (the span of one level-`h` slot, in epochs) overflows u64.
    SpanOverflow { level: usize },
    /// `α·(α^h − 1)` (the level-`h` pointer recycling period, in ms)
    /// overflows u64.
    RecyclingOverflow { level: usize },
}

impl std::fmt::Display for PointerConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointerConfigError::NoLevels => write!(f, "need at least one level"),
            PointerConfigError::AlphaTooSmall => write!(f, "alpha must be >= 2"),
            PointerConfigError::SpanOverflow { level } => {
                write!(
                    f,
                    "alpha^{} (span of level {level}) overflows u64",
                    level - 1
                )
            }
            PointerConfigError::RecyclingOverflow { level } => {
                write!(
                    f,
                    "alpha*(alpha^{level} - 1) (recycling period of level {level}) overflows u64"
                )
            }
        }
    }
}

impl std::error::Error for PointerConfigError {}

impl PointerConfig {
    /// The paper's running configuration: α = 10, k = 3.
    pub fn paper_defaults(n_hosts: usize) -> Self {
        PointerConfig {
            n_hosts,
            alpha: 10,
            k: 3,
        }
    }

    /// Checks every level's capacity math with checked arithmetic. A config
    /// that passes cannot overflow in [`PointerConfig::span_epochs`] or
    /// [`PointerConfig::recycling_period_ms`].
    pub fn validate(&self) -> Result<(), PointerConfigError> {
        if self.k < 1 {
            return Err(PointerConfigError::NoLevels);
        }
        if self.alpha < 2 {
            return Err(PointerConfigError::AlphaTooSmall);
        }
        for h in 1..=self.k {
            self.checked_span_epochs(h)
                .ok_or(PointerConfigError::SpanOverflow { level: h })?;
        }
        for h in 1..self.k {
            self.checked_recycling_period_ms(h)
                .ok_or(PointerConfigError::RecyclingOverflow { level: h })?;
        }
        Ok(())
    }

    /// `α^(h−1)` with overflow reported as `None` instead of a panic.
    fn checked_span_epochs(&self, h: usize) -> Option<u64> {
        (self.alpha as u64).checked_pow(h as u32 - 1)
    }

    /// `α·(α^h − 1)` with overflow reported as `None` instead of a panic.
    fn checked_recycling_period_ms(&self, h: usize) -> Option<u64> {
        (self.alpha as u64)
            .checked_pow(h as u32)?
            .checked_sub(1)?
            .checked_mul(self.alpha as u64)
    }

    /// Epochs covered by one slot at 1-based level `h`.
    pub fn span_epochs(&self, h: usize) -> u64 {
        debug_assert!(h >= 1 && h <= self.k);
        self.checked_span_epochs(h)
            .expect("PointerConfig validated: alpha^(h-1) must fit u64")
    }

    /// Number of slots at level `h` (α everywhere except the single-slot
    /// top level).
    pub fn slots_at(&self, h: usize) -> usize {
        if h == self.k {
            // Top level (and the k = 1 degenerate case) has a single slot.
            1
        } else {
            self.alpha as usize
        }
    }

    /// Data-plane memory for the pointer sets: `α·(k−1)·S + S` with
    /// `S = ⌈n/8⌉` bytes (Fig. 10a, excluding the MPHF metadata which
    /// [`PointerHierarchy::memory_bytes`] adds).
    pub fn memory_bytes(&self) -> usize {
        let s = self.n_hosts.div_ceil(8);
        self.alpha as usize * (self.k - 1) * s + s
    }

    /// Control-plane flush bandwidth: the top slot (S bits) every α^k ms,
    /// i.e. `S × (10^3 / α^k)` bits per second (Fig. 10b).
    pub fn flush_bandwidth_bps(&self) -> f64 {
        let s_bits = self.n_hosts as f64; // S in bits
        s_bits * 1_000.0 / (self.alpha as f64).powi(self.k as i32)
    }

    /// Pointer recycling period at level `h < k`: `α(α^h − 1)` ms (Fig. 11):
    /// the time between a slot being overwritten and the same slot becoming
    /// current again.
    pub fn recycling_period_ms(&self, h: usize) -> u64 {
        debug_assert!(h >= 1 && h < self.k);
        self.checked_recycling_period_ms(h)
            .expect("PointerConfig validated: alpha*(alpha^h - 1) must fit u64")
    }
}

/// One slot: the period index it currently holds plus the bit array.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot {
    /// Which period (epoch / span) this slot's bits belong to; None = never
    /// written.
    period: Option<u64>,
    bits: BitSet,
    /// Hierarchy version at which this slot was last mutated (bit write,
    /// clear, or period relabel). Shadow bookkeeping for incremental
    /// snapshot refresh — not part of the modelled data-plane cost.
    touched: u64,
}

/// A flushed top-level pointer set retained by the control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchivedPointer {
    /// Top-level period index (epoch / α^(k−1)).
    pub period: u64,
    pub bits: BitSet,
}

/// Everything that changed in a [`PointerHierarchy`] since a recorded
/// baseline `(version, archive length)` — enough to bring a clone taken at
/// the baseline back to full equality with the live hierarchy via
/// [`PointerHierarchy::apply_patch`]. Internals are private; consumers see
/// only the copy-work counters.
#[derive(Debug, Clone)]
pub struct PointerPatch {
    version: u64,
    /// `(level-1, slot index, slot contents)` for every slot mutated after
    /// the baseline version.
    slots: Vec<(usize, usize, Slot)>,
    /// Archive entries appended after the baseline *logical* length
    /// (append-only modulo the retired prefix) and still resident.
    archive_tail: Vec<ArchivedPointer>,
    /// The live hierarchy's retired-prefix count at patch time: applying
    /// the patch drops the same prefix from the clone's resident archive
    /// before appending the tail (retention sweeps stay delta-expressible).
    archive_retired: usize,
    flushed_bits: u64,
    updates: u64,
    unknown_dsts: u64,
    cached_epoch: Option<u64>,
    cached_slots: Vec<usize>,
}

impl PointerPatch {
    /// Slot bit-sets this patch clones (live slots + archived sets) — the
    /// incremental-refresh copy-work metric. A full hierarchy clone copies
    /// every live slot plus the whole archive.
    pub fn copied_slots(&self) -> usize {
        self.slots.len() + self.archive_tail.len()
    }
}

/// A switch's full pointer state.
#[derive(Debug, Clone)]
pub struct PointerHierarchy {
    cfg: PointerConfig,
    mphf: Arc<Mphf>,
    /// `levels[h-1]` = slots of level `h`.
    levels: Vec<Vec<Slot>>,
    /// Top-level sets flushed to the control plane (push model, §4.1.1).
    /// Sorted ascending by period (rotation refuses to go backward), so a
    /// retention sweep always removes a prefix.
    archive: Vec<ArchivedPointer>,
    /// Archived sets retired by retention sweeps — the count of entries
    /// ever removed from the front of `archive`. The archive is logically
    /// append-only with a monotone retired prefix; snapshot baselines and
    /// patches index it logically so incremental refresh survives GC.
    archive_retired: usize,
    /// Precomputed `span_epochs(h)` per level (hot path).
    spans: Vec<u64>,
    /// Epoch the cached slot indices are valid for. Rotation work runs once
    /// per epoch change (the paper's control-plane agent updating the
    /// next-pointer register every α^h ms), keeping the per-packet cost at
    /// one hash + k bit writes.
    cached_epoch: Option<u64>,
    /// Current slot index per level; `usize::MAX` = skip (stale epoch).
    cached_slots: Vec<usize>,
    /// Monotone mutation counter: bumps once per state-changing call
    /// (update, unchecked update). Baselines recorded against it let an
    /// incremental snapshot ask "what changed since?" without scanning.
    version: u64,
    /// Total bits pushed data-plane → control-plane (bandwidth accounting).
    pub flushed_bits: u64,
    /// Packets processed.
    pub updates: u64,
    /// Packets whose destination was not in the MPHF key set.
    pub unknown_dsts: u64,
}

impl PointerHierarchy {
    /// Creates the hierarchy. The MPHF must be built over (at least) the
    /// addresses that will be updated; `cfg.n_hosts` must equal its range.
    /// Panics on an invalid config; use [`PointerHierarchy::try_new`] for
    /// the typed-error path.
    pub fn new(cfg: PointerConfig, mphf: Arc<Mphf>) -> Self {
        match Self::try_new(cfg, mphf) {
            Ok(h) => h,
            Err(e) => panic!("invalid pointer config: {e}"),
        }
    }

    /// Fallible constructor: rejects configs whose capacity math overflows
    /// (deep hierarchies with large α) with a typed [`PointerConfigError`]
    /// instead of a debug-build panic deep inside the epoch arithmetic.
    pub fn try_new(cfg: PointerConfig, mphf: Arc<Mphf>) -> Result<Self, PointerConfigError> {
        cfg.validate()?;
        assert_eq!(
            cfg.n_hosts,
            mphf.len(),
            "bit-array size must match the MPHF range"
        );
        let levels = (1..=cfg.k)
            .map(|h| {
                (0..cfg.slots_at(h))
                    .map(|_| Slot {
                        period: None,
                        bits: BitSet::new(cfg.n_hosts),
                        touched: 0,
                    })
                    .collect()
            })
            .collect();
        Ok(PointerHierarchy {
            spans: (1..=cfg.k).map(|h| cfg.span_epochs(h)).collect(),
            cached_epoch: None,
            cached_slots: vec![usize::MAX; cfg.k],
            version: 0,
            cfg,
            mphf,
            levels,
            archive: Vec::new(),
            archive_retired: 0,
            flushed_bits: 0,
            updates: 0,
            unknown_dsts: 0,
        })
    }

    /// The sizing configuration.
    pub fn config(&self) -> PointerConfig {
        self.cfg
    }

    /// The shared hash function.
    pub fn mphf(&self) -> &Arc<Mphf> {
        &self.mphf
    }

    fn slot_index(&self, h: usize, period: u64) -> usize {
        if h == self.cfg.k {
            0
        } else {
            (period % self.cfg.alpha as u64) as usize
        }
    }

    /// Ensures the slot covering `epoch` at level `h` is labelled with the
    /// current period, recycling (and for the top level, flushing) stale
    /// contents. Returns the slot index, or `usize::MAX` when the slot
    /// holds a *newer* period (out-of-order epoch — never clear forward
    /// state for a late packet).
    fn rotate(&mut self, h: usize, epoch: u64) -> usize {
        let span = self.spans[h - 1];
        let period = epoch / span;
        let idx = self.slot_index(h, period);
        let is_top = h == self.cfg.k;
        let version = self.version;
        let slot = &mut self.levels[h - 1][idx];
        if slot.period != Some(period) {
            if let Some(p) = slot.period {
                if p > period {
                    return usize::MAX;
                }
            }
            if is_top && slot.period.is_some() && !slot.bits.is_empty() {
                // Push the completed top-level set to persistent storage.
                self.flushed_bits += self.cfg.n_hosts as u64;
                let archived = ArchivedPointer {
                    period: slot.period.unwrap(),
                    bits: slot.bits.clone(),
                };
                slot.bits.clear();
                slot.period = Some(period);
                slot.touched = version;
                self.archive.push(archived);
                return idx;
            }
            slot.bits.clear();
            slot.period = Some(period);
            slot.touched = version;
        }
        idx
    }

    /// Recomputes the per-level slot cache for `epoch`. This is the
    /// once-per-epoch control-plane work; the per-packet path only checks
    /// the cached epoch.
    #[cold]
    fn refresh_slots(&mut self, epoch: u64) {
        for h in 1..=self.cfg.k {
            self.cached_slots[h - 1] = self.rotate(h, epoch);
        }
        self.cached_epoch = Some(epoch);
    }

    #[inline]
    fn set_all_levels(&mut self, bit: usize, epoch: u64) {
        if self.cached_epoch != Some(epoch) {
            self.refresh_slots(epoch);
        }
        let version = self.version;
        for (level, &idx) in self.levels.iter_mut().zip(&self.cached_slots) {
            if idx != usize::MAX {
                let slot = &mut level[idx];
                slot.bits.set(bit);
                slot.touched = version;
            }
        }
    }

    /// Records that a packet destined to `dst_addr` was forwarded during
    /// `epoch`. One hash; k bit writes.
    pub fn update(&mut self, dst_addr: u64, epoch: u64) {
        self.version += 1;
        self.updates += 1;
        let Some(bit) = self.mphf.index(&dst_addr) else {
            self.unknown_dsts += 1;
            return;
        };
        self.set_all_levels(bit, epoch);
    }

    /// The data-plane fast-path variant used by the Fig. 9 pipeline: skips
    /// the membership fingerprint check, exactly one hash evaluation.
    #[inline]
    pub fn update_unchecked(&mut self, dst_addr: u64, epoch: u64) {
        self.version += 1;
        self.updates += 1;
        let bit = self.mphf.index_unchecked(&dst_addr);
        self.set_all_levels(bit, epoch);
    }

    /// Was a packet to `dst_addr` forwarded during `epoch`, as far as the
    /// live hierarchy remembers? Checks the finest live level covering the
    /// epoch. Never false-negative while the epoch is within retention.
    pub fn contains(&self, dst_addr: u64, epoch: u64) -> bool {
        let Some(bit) = self.mphf.index(&dst_addr) else {
            return false;
        };
        self.pointer_for(epoch)
            .map(|b| b.test(bit))
            .unwrap_or(false)
    }

    /// Membership using only pointer sets that aggregate at most `max_span`
    /// epochs. Returns `None` when no sufficiently fine live set covers the
    /// epoch (the caller may then fall back to [`PointerHierarchy::contains`],
    /// accepting coarser resolution and hence possible false positives).
    pub fn contains_within(&self, dst_addr: u64, epoch: u64, max_span: u64) -> Option<bool> {
        let bit = self.mphf.index(&dst_addr)?;
        for h in 1..=self.cfg.k {
            let span = self.cfg.span_epochs(h);
            if span > max_span {
                break;
            }
            let period = epoch / span;
            let idx = self.slot_index(h, period);
            let slot = &self.levels[h - 1][idx];
            if slot.period == Some(period) {
                return Some(slot.bits.test(bit));
            }
        }
        None
    }

    /// The finest-grained live pointer set covering `epoch`: level 1 if the
    /// epoch's slot is still live, else level 2, ... else the archive.
    /// Returns the bit set and the number of epochs it aggregates
    /// (diagnosis precision: 1 = exact epoch, larger = coarser, §4.1.1's
    /// "fine-grained view ... for real-time diagnosis").
    pub fn pointer_for(&self, epoch: u64) -> Option<&BitSet> {
        for h in 1..=self.cfg.k {
            let span = self.cfg.span_epochs(h);
            let period = epoch / span;
            let idx = self.slot_index(h, period);
            let slot = &self.levels[h - 1][idx];
            if slot.period == Some(period) {
                return Some(&slot.bits);
            }
        }
        // Fall back to flushed top-level pointers.
        let top_span = self.cfg.span_epochs(self.cfg.k);
        let period = epoch / top_span;
        self.archive
            .iter()
            .find(|a| a.period == period)
            .map(|a| &a.bits)
    }

    /// Epochs aggregated by the set [`PointerHierarchy::pointer_for`] would
    /// return (1 = exact).
    pub fn resolution_for(&self, epoch: u64) -> Option<u64> {
        for h in 1..=self.cfg.k {
            let span = self.cfg.span_epochs(h);
            let period = epoch / span;
            let idx = self.slot_index(h, period);
            if self.levels[h - 1][idx].period == Some(period) {
                return Some(span);
            }
        }
        let top_span = self.cfg.span_epochs(self.cfg.k);
        self.archive
            .iter()
            .any(|a| a.period == epoch / top_span)
            .then_some(top_span)
    }

    /// Union of pointer sets over an inclusive epoch range — what the
    /// analyzer pulls when debugging a window (the Fig. 8 "most recent
    /// 1 sec" pull).
    pub fn pointer_union(&self, lo: u64, hi: u64) -> BitSet {
        let mut acc = BitSet::new(self.cfg.n_hosts);
        let mut e = lo;
        while e <= hi {
            if let Some(bits) = self.pointer_for(e) {
                acc.union_with(bits);
            }
            // Skip to the next epoch not covered by the same slot where
            // possible (resolution_for tells the slot's span).
            let step = self.resolution_for(e).unwrap_or(1);
            let next = (e / step + 1) * step;
            e = next.max(e + 1);
        }
        acc
    }

    /// Flushed top-level pointer sets (offline diagnosis source) still
    /// resident after retention sweeps.
    pub fn archive(&self) -> &[ArchivedPointer] {
        &self.archive
    }

    /// Archived sets retired by retention sweeps so far.
    pub fn archive_retired(&self) -> usize {
        self.archive_retired
    }

    /// Logical archive length: resident entries plus everything retired by
    /// retention sweeps. Snapshot baselines record this (not the resident
    /// length) so a sweep between two deltas is never mistaken for fresh
    /// appends.
    pub fn archive_logical_len(&self) -> usize {
        self.archive_retired + self.archive.len()
    }

    /// Retention: retires flushed top-level pointer sets whose covered
    /// epochs all predate `floor_epoch`. An archived period `p` spans
    /// epochs `[p·α^(k−1), (p+1)·α^(k−1))` (the checked
    /// [`PointerConfig::span_epochs`]); it is retired iff
    /// `(p+1)·span ≤ floor_epoch`, so epochs at or above the floor stay
    /// answerable. The archive is sorted by period, hence retirement
    /// removes a prefix that is folded into the logical indexing the
    /// incremental-snapshot baselines use. Returns how many sets were
    /// retired (0 ⇒ no state change, no version bump).
    pub fn retire_archive_before(&mut self, floor_epoch: u64) -> usize {
        let span = self.spans[self.cfg.k - 1];
        let n = self
            .archive
            .iter()
            .take_while(|a| {
                a.period
                    .checked_add(1)
                    .and_then(|p| p.checked_mul(span))
                    .map(|end| end <= floor_epoch)
                    .unwrap_or(false)
            })
            .count();
        if n > 0 {
            self.archive.drain(..n);
            self.archive_retired += n;
            self.version += 1;
        }
        n
    }

    /// Total switch SRAM footprint: pointer sets plus MPHF metadata.
    pub fn memory_bytes(&self) -> usize {
        self.cfg.memory_bytes() + self.mphf.metadata_bytes()
    }

    // ---- incremental-snapshot support ------------------------------------

    /// The monotone mutation counter (bumps once per update call).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The most recent epoch an update was applied for, if any — the
    /// hierarchy's view of "now" (snapshot epoch horizons derive from it).
    pub fn last_epoch(&self) -> Option<u64> {
        self.cached_epoch
    }

    /// Live slots plus archived sets — what one full clone copies (the
    /// denominator of the incremental-refresh savings metric).
    pub fn total_slots(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum::<usize>() + self.archive.len()
    }

    /// Everything that changed since the `(version, logical archive
    /// length)` baseline, or `None` when nothing did. Applying the
    /// returned patch to a clone taken at the baseline makes it equal
    /// (`==`) to `self` — including across retention sweeps, which the
    /// patch expresses as a retired-prefix count rather than forcing a
    /// full re-clone.
    pub fn delta_since(&self, version: u64, archive_len: usize) -> Option<PointerPatch> {
        if self.version == version && self.archive_logical_len() == archive_len {
            return None;
        }
        debug_assert!(
            archive_len <= self.archive_logical_len(),
            "logical archive length is monotone (append-only modulo the retired prefix)"
        );
        let mut slots = Vec::new();
        for (li, level) in self.levels.iter().enumerate() {
            for (si, slot) in level.iter().enumerate() {
                if slot.touched > version {
                    slots.push((li, si, slot.clone()));
                }
            }
        }
        // Resident entries appended after the baseline. Entries appended
        // after the baseline but already retired again are simply absent —
        // the applier's prefix drop covers them.
        let tail_from = archive_len.saturating_sub(self.archive_retired);
        Some(PointerPatch {
            version: self.version,
            slots,
            archive_tail: self.archive[tail_from..].to_vec(),
            archive_retired: self.archive_retired,
            flushed_bits: self.flushed_bits,
            updates: self.updates,
            unknown_dsts: self.unknown_dsts,
            cached_epoch: self.cached_epoch,
            cached_slots: self.cached_slots.clone(),
        })
    }

    /// Applies a patch produced by [`PointerHierarchy::delta_since`] on the
    /// live hierarchy to a clone taken at the same baseline.
    pub fn apply_patch(&mut self, patch: &PointerPatch) {
        for &(li, si, ref slot) in &patch.slots {
            // `usize::MAX` is the "skip" sentinel of the slot cache, never
            // a real slot index. `delta_since` enumerates live slots and
            // so cannot emit one, but any future patch producer that
            // journals the cached-slot path must have its sentinels
            // skipped, not copied (indexing by the sentinel would panic;
            // a stale slot's contents are unchanged since the baseline by
            // definition). A genuinely out-of-range index still panics
            // loudly below — a mismatched patch must not half-apply.
            if si == usize::MAX {
                continue;
            }
            self.levels[li][si] = slot.clone();
        }
        // Retirement first: drop the prefix of the resident archive the
        // live hierarchy has retired beyond this clone's own retired
        // count, then append what was flushed after the baseline.
        let drop = patch
            .archive_retired
            .saturating_sub(self.archive_retired)
            .min(self.archive.len());
        self.archive.drain(..drop);
        self.archive_retired = patch.archive_retired;
        self.archive.extend(patch.archive_tail.iter().cloned());
        self.version = patch.version;
        self.flushed_bits = patch.flushed_bits;
        self.updates = patch.updates;
        self.unknown_dsts = patch.unknown_dsts;
        self.cached_epoch = patch.cached_epoch;
        self.cached_slots = patch.cached_slots.clone();
    }
}

/// Full-state equality (the "bit-identical snapshot" check). The MPHF is
/// compared by identity: clones of one deployment share the `Arc`.
impl PartialEq for PointerHierarchy {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.mphf, &other.mphf)
            && self.cfg == other.cfg
            && self.levels == other.levels
            && self.archive == other.archive
            && self.archive_retired == other.archive_retired
            && self.cached_epoch == other.cached_epoch
            && self.cached_slots == other.cached_slots
            && self.version == other.version
            && self.flushed_bits == other.flushed_bits
            && self.updates == other.updates
            && self.unknown_dsts == other.unknown_dsts
    }
}

// ---- wire codecs ---------------------------------------------------------
//
// Replication ships pointer patches and whole hierarchies between shard
// replicas (the `replicaplane` crate). The codecs are inherent methods here
// because `Slot` and the patch internals are private: nothing outside this
// module may construct a patch, but any peer may decode one. Decoding never
// panics — malformed input is a typed [`WireError`] — and the MPHF never
// travels: a decoded hierarchy re-attaches the receiver's shared `Arc` so
// identity-based equality keeps holding across the wire.

fn enc_bits(e: &mut Enc, bits: &BitSet) {
    e.put_usize(bits.capacity());
    for w in bits.words() {
        e.put_u64(*w);
    }
}

fn dec_bits(d: &mut Dec) -> Result<BitSet, WireError> {
    let nbits = d.get_usize()?;
    let n_words = nbits.div_ceil(64);
    // Bound the allocation by the bytes actually present: a corrupt
    // capacity cannot OOM the decoder.
    if n_words
        .checked_mul(8)
        .map(|need| need > d.remaining())
        .unwrap_or(true)
    {
        return Err(WireError::Truncated {
            needed: n_words.saturating_mul(8),
            have: d.remaining(),
        });
    }
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(d.get_u64()?);
    }
    Ok(BitSet::from_words(nbits, &words))
}

fn enc_opt_u64(e: &mut Enc, v: Option<u64>) {
    match v {
        None => e.put_u8(0),
        Some(x) => {
            e.put_u8(1);
            e.put_u64(x);
        }
    }
}

fn dec_opt_u64(d: &mut Dec) -> Result<Option<u64>, WireError> {
    match d.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(d.get_u64()?)),
        t => Err(WireError::BadTag(t)),
    }
}

/// Slot indices travel as u64 with the `usize::MAX` "skip" sentinel mapped
/// to `u64::MAX` so both ends agree regardless of platform width.
fn enc_slot_index(e: &mut Enc, si: usize) {
    e.put_u64(if si == usize::MAX {
        u64::MAX
    } else {
        si as u64
    });
}

fn dec_slot_index(d: &mut Dec) -> Result<usize, WireError> {
    let v = d.get_u64()?;
    Ok(if v == u64::MAX {
        usize::MAX
    } else {
        v as usize
    })
}

impl Slot {
    fn wire_enc(&self, e: &mut Enc) {
        enc_opt_u64(e, self.period);
        enc_bits(e, &self.bits);
        e.put_u64(self.touched);
    }

    fn wire_dec(d: &mut Dec) -> Result<Self, WireError> {
        Ok(Slot {
            period: dec_opt_u64(d)?,
            bits: dec_bits(d)?,
            touched: d.get_u64()?,
        })
    }
}

impl ArchivedPointer {
    /// Encodes one flushed top-level set.
    pub fn wire_enc(&self, e: &mut Enc) {
        e.put_u64(self.period);
        enc_bits(e, &self.bits);
    }

    /// Decodes one flushed top-level set; never panics.
    pub fn wire_dec(d: &mut Dec) -> Result<Self, WireError> {
        Ok(ArchivedPointer {
            period: d.get_u64()?,
            bits: dec_bits(d)?,
        })
    }
}

impl PointerPatch {
    /// Encodes the patch for the replication log.
    pub fn wire_enc(&self, e: &mut Enc) {
        e.put_u64(self.version);
        e.put_usize(self.slots.len());
        for (li, si, slot) in &self.slots {
            e.put_usize(*li);
            enc_slot_index(e, *si);
            slot.wire_enc(e);
        }
        e.put_usize(self.archive_tail.len());
        for a in &self.archive_tail {
            a.wire_enc(e);
        }
        e.put_usize(self.archive_retired);
        e.put_u64(self.flushed_bits);
        e.put_u64(self.updates);
        e.put_u64(self.unknown_dsts);
        enc_opt_u64(e, self.cached_epoch);
        e.put_usize(self.cached_slots.len());
        for &s in &self.cached_slots {
            enc_slot_index(e, s);
        }
    }

    /// Decodes a patch; never panics. Structural validity against a
    /// particular hierarchy is checked at apply time by
    /// [`PointerHierarchy::checked_apply_patch`].
    pub fn wire_dec(d: &mut Dec) -> Result<Self, WireError> {
        let version = d.get_u64()?;
        let n_slots = d.get_len()?;
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let li = d.get_usize()?;
            let si = dec_slot_index(d)?;
            slots.push((li, si, Slot::wire_dec(d)?));
        }
        let n_tail = d.get_len()?;
        let mut archive_tail = Vec::with_capacity(n_tail);
        for _ in 0..n_tail {
            archive_tail.push(ArchivedPointer::wire_dec(d)?);
        }
        let archive_retired = d.get_usize()?;
        let flushed_bits = d.get_u64()?;
        let updates = d.get_u64()?;
        let unknown_dsts = d.get_u64()?;
        let cached_epoch = dec_opt_u64(d)?;
        let n_cached = d.get_len()?;
        let mut cached_slots = Vec::with_capacity(n_cached);
        for _ in 0..n_cached {
            cached_slots.push(dec_slot_index(d)?);
        }
        Ok(PointerPatch {
            version,
            slots,
            archive_tail,
            archive_retired,
            flushed_bits,
            updates,
            unknown_dsts,
            cached_epoch,
            cached_slots,
        })
    }
}

impl PointerHierarchy {
    /// Bounds-validated [`PointerHierarchy::apply_patch`] for patches that
    /// crossed the wire: a corrupt or mismatched patch is a typed error
    /// instead of an index panic, and the hierarchy is untouched on error.
    pub fn checked_apply_patch(&mut self, patch: &PointerPatch) -> Result<(), WireError> {
        for &(li, si, ref slot) in &patch.slots {
            if si == usize::MAX {
                continue;
            }
            let fits = self
                .levels
                .get(li)
                .map(|level| si < level.len())
                .unwrap_or(false);
            if !fits {
                return Err(WireError::Remote(format!(
                    "pointer patch slot ({li},{si}) outside hierarchy shape"
                )));
            }
            if slot.bits.capacity() != self.cfg.n_hosts {
                return Err(WireError::Remote(format!(
                    "pointer patch slot capacity {} != {}",
                    slot.bits.capacity(),
                    self.cfg.n_hosts
                )));
            }
        }
        if patch
            .archive_tail
            .iter()
            .any(|a| a.bits.capacity() != self.cfg.n_hosts)
        {
            return Err(WireError::Remote(
                "pointer patch archive capacity mismatch".into(),
            ));
        }
        if patch.cached_slots.len() != self.cfg.k {
            return Err(WireError::Remote(format!(
                "pointer patch cached-slot count {} != k {}",
                patch.cached_slots.len(),
                self.cfg.k
            )));
        }
        self.apply_patch(patch);
        Ok(())
    }

    /// Encodes the full hierarchy state — everything except the MPHF,
    /// which is deployment-shared and re-attached on decode.
    pub fn wire_enc(&self, e: &mut Enc) {
        e.put_usize(self.cfg.n_hosts);
        e.put_u32(self.cfg.alpha);
        e.put_usize(self.cfg.k);
        for level in &self.levels {
            e.put_usize(level.len());
            for slot in level {
                slot.wire_enc(e);
            }
        }
        e.put_usize(self.archive.len());
        for a in &self.archive {
            a.wire_enc(e);
        }
        e.put_usize(self.archive_retired);
        enc_opt_u64(e, self.cached_epoch);
        e.put_usize(self.cached_slots.len());
        for &s in &self.cached_slots {
            enc_slot_index(e, s);
        }
        e.put_u64(self.version);
        e.put_u64(self.flushed_bits);
        e.put_u64(self.updates);
        e.put_u64(self.unknown_dsts);
    }

    /// Decodes a hierarchy, re-attaching the receiver's shared MPHF.
    /// Shape and config are fully validated; malformed input is a typed
    /// error, never a panic. Round-trips to `==` with the encoded source
    /// when both sides hold the same MPHF `Arc`.
    pub fn wire_dec(d: &mut Dec, mphf: &Arc<Mphf>) -> Result<Self, WireError> {
        let cfg = PointerConfig {
            n_hosts: d.get_usize()?,
            alpha: d.get_u32()?,
            k: d.get_usize()?,
        };
        cfg.validate()
            .map_err(|e| WireError::Remote(format!("invalid pointer config on wire: {e}")))?;
        if cfg.n_hosts != mphf.len() {
            return Err(WireError::Remote(format!(
                "pointer hierarchy sized for {} hosts, local MPHF covers {}",
                cfg.n_hosts,
                mphf.len()
            )));
        }
        let mut levels = Vec::with_capacity(cfg.k);
        for h in 1..=cfg.k {
            let n = d.get_len()?;
            if n != cfg.slots_at(h) {
                return Err(WireError::Remote(format!(
                    "level {h} carries {n} slots, config says {}",
                    cfg.slots_at(h)
                )));
            }
            let mut slots = Vec::with_capacity(n);
            for _ in 0..n {
                let slot = Slot::wire_dec(d)?;
                if slot.bits.capacity() != cfg.n_hosts {
                    return Err(WireError::Remote(
                        "slot capacity does not match config".into(),
                    ));
                }
                slots.push(slot);
            }
            levels.push(slots);
        }
        let n_arch = d.get_len()?;
        let mut archive = Vec::with_capacity(n_arch);
        for _ in 0..n_arch {
            let a = ArchivedPointer::wire_dec(d)?;
            if a.bits.capacity() != cfg.n_hosts {
                return Err(WireError::Remote(
                    "archived set capacity does not match config".into(),
                ));
            }
            archive.push(a);
        }
        let archive_retired = d.get_usize()?;
        let cached_epoch = dec_opt_u64(d)?;
        let n_cached = d.get_len()?;
        if n_cached != cfg.k {
            return Err(WireError::Remote(format!(
                "cached-slot count {n_cached} != k {}",
                cfg.k
            )));
        }
        let mut cached_slots = Vec::with_capacity(n_cached);
        for _ in 0..n_cached {
            cached_slots.push(dec_slot_index(d)?);
        }
        Ok(PointerHierarchy {
            spans: (1..=cfg.k).map(|h| cfg.span_epochs(h)).collect(),
            cached_epoch,
            cached_slots,
            version: d.get_u64()?,
            cfg,
            mphf: mphf.clone(),
            levels,
            archive,
            archive_retired,
            flushed_bits: d.get_u64()?,
            updates: d.get_u64()?,
            unknown_dsts: d.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy(n: usize, alpha: u32, k: usize) -> (PointerHierarchy, Vec<u64>) {
        let addrs: Vec<u64> = (0..n as u64).map(|i| 0x0a00_0000 + i).collect();
        let mphf = Arc::new(Mphf::build(&addrs).unwrap());
        (
            PointerHierarchy::new(
                PointerConfig {
                    n_hosts: n,
                    alpha,
                    k,
                },
                mphf,
            ),
            addrs,
        )
    }

    #[test]
    fn update_then_contains_same_epoch() {
        let (mut h, addrs) = hierarchy(64, 4, 3);
        h.update(addrs[5], 7);
        assert!(h.contains(addrs[5], 7));
        assert!(!h.contains(addrs[6], 7));
        // At exact (level-1) resolution, epoch 8 has no record of addrs[5]:
        // no level-1 slot covers epoch 8 yet.
        assert_eq!(h.contains_within(addrs[5], 8, 1), None);
        assert_eq!(h.contains_within(addrs[5], 7, 1), Some(true));
        assert_eq!(h.contains_within(addrs[6], 7, 1), Some(false));
        // The coarse query *does* report epoch 8 (top-level span covers it):
        // a false positive by design — wider search radius, never a miss.
        assert!(h.contains(addrs[5], 8));
    }

    #[test]
    fn unknown_destination_counted_not_stored() {
        let (mut h, _) = hierarchy(16, 4, 2);
        h.update(0xdead_beef, 0);
        assert_eq!(h.unknown_dsts, 1);
        assert!(!h.contains(0xdead_beef, 0));
    }

    #[test]
    fn level1_recycles_after_alpha_epochs() {
        let (mut h, addrs) = hierarchy(32, 4, 3);
        h.update(addrs[1], 0);
        assert_eq!(h.resolution_for(0), Some(1));
        // Epoch 4 reuses slot 0 of level 1 (alpha = 4): epoch 0's level-1
        // view is gone, but level 2 (span 4, period 0) still covers it.
        h.update(addrs[2], 4);
        assert_eq!(h.resolution_for(0), Some(4));
        assert!(h.contains(addrs[1], 0), "level 2 retains the host");
        // Level-2 period 0 covers epochs 0..4, so epoch 3 also reports it:
        // coarser, but never a false negative (the paper's correctness
        // argument — worse precision only widens the search radius).
        assert!(h.contains(addrs[1], 3));
    }

    #[test]
    fn higher_levels_superset_of_lower() {
        // The redundancy invariant: everything in live level-1 slots of a
        // level-2 period is in that level-2 slot.
        let (mut h, addrs) = hierarchy(64, 4, 3);
        for e in 0..4u64 {
            h.update(addrs[e as usize], e);
            h.update(addrs[10 + e as usize], e);
        }
        // Union of level-1 views for epochs 0..4:
        let mut union = BitSet::new(64);
        for e in 0..4u64 {
            union.union_with(h.pointer_for(e).unwrap());
        }
        // Level-2 slot for period 0:
        h.update(addrs[20], 4); // force nothing to recycle level 2 period 0? epoch 4 is period 1
        let lvl2 = {
            // Access: after epoch 4 touched, epoch 0's finest live view is
            // still level 1 (only slot 0 recycled). Pull level-2 via
            // pointer_union over 0..=3 at worst.
            h.pointer_union(0, 3)
        };
        assert!(union.is_subset_of(&lvl2));
    }

    #[test]
    fn top_level_flushes_to_archive() {
        // alpha=2, k=2: top slot spans 2 epochs; rotating it must archive.
        let (mut h, addrs) = hierarchy(16, 2, 2);
        h.update(addrs[0], 0);
        h.update(addrs[1], 1);
        assert!(h.archive().is_empty());
        h.update(addrs[2], 2); // top period 0 -> 1: flush
        assert_eq!(h.archive().len(), 1);
        assert_eq!(h.archive()[0].period, 0);
        assert_eq!(h.flushed_bits, 16);
        // Archived set still answers for epoch 0 after all live slots moved on.
        h.update(addrs[3], 4);
        h.update(addrs[3], 5);
        assert!(h.contains(addrs[0], 0), "archive must answer");
        assert!(h.contains(addrs[1], 1));
    }

    #[test]
    fn pointer_union_collects_across_epochs() {
        let (mut h, addrs) = hierarchy(32, 4, 3);
        h.update(addrs[1], 0);
        h.update(addrs[2], 1);
        h.update(addrs[3], 2);
        let u = h.pointer_union(0, 2);
        let ones: Vec<usize> = u.iter_ones().collect();
        assert_eq!(ones.len(), 3);
        let u01 = h.pointer_union(0, 1);
        assert_eq!(u01.count(), 2);
    }

    #[test]
    fn memory_formula_matches_paper_figures() {
        // n=100K, alpha=10, k=3: pointers = (10*2+1) * 12.5KB = 262.5 KB...
        // The paper's Fig. 10a reports 345 KB for n=100K *including* the
        // ~70 KB hash function — our accounting separates the two.
        let cfg = PointerConfig {
            n_hosts: 100_000,
            alpha: 10,
            k: 3,
        };
        assert_eq!(cfg.memory_bytes(), 21 * 12_500);
        // n=1M scales 10x: Fig. 10a's ~3.45 MB point.
        let cfg1m = PointerConfig {
            n_hosts: 1_000_000,
            alpha: 10,
            k: 3,
        };
        assert_eq!(cfg1m.memory_bytes(), 21 * 125_000); // 2.625 MB pointers
    }

    #[test]
    fn bandwidth_formula_matches_paper_figures() {
        // n=1M, alpha=10, k=1: 1M bits * 1000/10 ms = 100 Mbps (Fig. 10b).
        let k1 = PointerConfig {
            n_hosts: 1_000_000,
            alpha: 10,
            k: 1,
        };
        assert!((k1.flush_bandwidth_bps() - 100_000_000.0).abs() < 1.0);
        // k=2 drops it to 10 Mbps.
        let k2 = PointerConfig {
            n_hosts: 1_000_000,
            alpha: 10,
            k: 2,
        };
        assert!((k2.flush_bandwidth_bps() - 10_000_000.0).abs() < 1.0);
    }

    #[test]
    fn recycling_period_formula() {
        // Fig. 11: alpha=10, k=3: level 1 recycles after 90 ms, level 2
        // after 990 ms.
        let cfg = PointerConfig {
            n_hosts: 16,
            alpha: 10,
            k: 3,
        };
        assert_eq!(cfg.recycling_period_ms(1), 90);
        assert_eq!(cfg.recycling_period_ms(2), 990);
    }

    #[test]
    fn k1_single_level_hierarchy_works() {
        let (mut h, addrs) = hierarchy(16, 4, 1);
        h.update(addrs[0], 0);
        assert!(h.contains(addrs[0], 0));
        // k=1: the single level IS the top; rotating flushes.
        h.update(addrs[1], 1);
        assert_eq!(h.archive().len(), 1);
        assert!(h.contains(addrs[0], 0), "answered from archive");
    }

    #[test]
    fn delta_patch_restores_full_equality() {
        let (mut h, addrs) = hierarchy(32, 4, 3);
        h.update(addrs[1], 0);
        h.update(addrs[2], 1);
        let clone_at_base = h.clone();
        let base = (h.version(), h.archive().len());
        assert!(h.delta_since(base.0, base.1).is_none(), "no change yet");

        // A small advance: only the slots covering epochs 2-3 rotate.
        for e in 2..4u64 {
            h.update(addrs[(e % 32) as usize], e);
            h.update(0xdead_beef, e); // unknown dst: counter-only mutation
        }
        let patch = h.delta_since(base.0, base.1).expect("changes happened");
        // The patch copies strictly less than a full clone would.
        assert!(patch.copied_slots() < h.total_slots());
        let mut patched = clone_at_base;
        patched.apply_patch(&patch);
        assert!(patched == h, "patched clone must equal the live hierarchy");

        // Layered baselines: a later delta over the patched state is empty.
        assert!(h
            .delta_since(patched.version(), patched.archive().len())
            .is_none());
    }

    #[test]
    fn overflowing_capacity_math_is_a_typed_error_not_a_panic() {
        // alpha = 2^31, k = 3: span of level 3 is (2^31)^2 = 2^62 (fine),
        // but the level-2 recycling period 2^31*((2^31)^2 - 1) overflows.
        let recyc = PointerConfig {
            n_hosts: 16,
            alpha: 1 << 31,
            k: 3,
        };
        assert_eq!(
            recyc.validate(),
            Err(PointerConfigError::RecyclingOverflow { level: 2 })
        );
        // alpha = 2^16, k = 5: span of level 5 is 2^64 — overflows u64.
        let span = PointerConfig {
            n_hosts: 16,
            alpha: 1 << 16,
            k: 5,
        };
        assert_eq!(
            span.validate(),
            Err(PointerConfigError::SpanOverflow { level: 5 })
        );
        // try_new surfaces the same error instead of panicking.
        let addrs: Vec<u64> = (0..16u64).collect();
        let mphf = Arc::new(Mphf::build(&addrs).unwrap());
        assert_eq!(
            PointerHierarchy::try_new(span, mphf).err(),
            Some(PointerConfigError::SpanOverflow { level: 5 })
        );
        // Degenerate shapes are typed too.
        assert_eq!(
            PointerConfig {
                n_hosts: 16,
                alpha: 1,
                k: 2
            }
            .validate(),
            Err(PointerConfigError::AlphaTooSmall)
        );
        assert_eq!(
            PointerConfig {
                n_hosts: 16,
                alpha: 4,
                k: 0
            }
            .validate(),
            Err(PointerConfigError::NoLevels)
        );
        // The paper's running configuration passes.
        assert_eq!(PointerConfig::paper_defaults(16).validate(), Ok(()));
    }

    #[test]
    fn stale_sentinel_slots_survive_delta_roundtrip() {
        // alpha=2, k=2: epoch 4 labels the top slot with period 2; a late
        // packet for epoch 2 (period 1 < 2) must not clear forward state,
        // so every cached slot goes to the usize::MAX "skip" sentinel.
        let (mut h, addrs) = hierarchy(16, 2, 2);
        h.update(addrs[0], 4);
        let clone_at_base = h.clone();
        let base = (h.version(), h.archive().len());

        h.update(addrs[1], 2); // out-of-order: all-sentinel slot cache
        assert!(
            !h.contains_within(addrs[1], 2, 1).unwrap_or(false),
            "late packet must not be recorded over newer state"
        );
        let patch = h.delta_since(base.0, base.1).expect("version bumped");
        let mut patched = clone_at_base;
        patched.apply_patch(&patch);
        assert!(
            patched == h,
            "a patch spanning a stale-sentinel window must restore equality"
        );
        // And the patched hierarchy keeps working for in-order epochs.
        patched.update(addrs[2], 5);
        assert!(patched.contains(addrs[2], 5));
    }

    #[test]
    fn apply_patch_skips_injected_stale_sentinel_entries() {
        // `delta_since` never emits the `usize::MAX` cached-slot sentinel
        // as a slot index, but apply_patch hardens against any future
        // patch producer that journals the cached-slot path. Inject one
        // directly (the tests module sees the private internals): it must
        // be skipped without panicking and without perturbing the state.
        let (mut h, addrs) = hierarchy(16, 4, 2);
        h.update(addrs[0], 0);
        let clone_at_base = h.clone();
        let base = (h.version(), h.archive().len());
        h.update(addrs[1], 1);
        let mut patch = h.delta_since(base.0, base.1).expect("changes happened");
        patch.slots.push((
            0,
            usize::MAX,
            Slot {
                period: Some(999),
                bits: BitSet::new(16),
                touched: u64::MAX,
            },
        ));
        let mut patched = clone_at_base;
        patched.apply_patch(&patch);
        assert!(
            patched == h,
            "sentinel slot entries must be skipped without effect"
        );
    }

    #[test]
    fn archive_retirement_respects_the_epoch_floor() {
        // alpha=2, k=2: top span is 2 epochs; walking 10 epochs archives
        // periods 0..4 (period 4 still live in the top slot).
        let (mut h, addrs) = hierarchy(16, 2, 2);
        for e in 0..10u64 {
            h.update(addrs[(e % 16) as usize], e);
        }
        assert_eq!(h.archive().len(), 4);
        // Floor 5: period 0 spans [0,2), period 1 spans [2,4) — both end
        // at or before epoch 5. Period 2 spans [4,6): epoch 5 is retained.
        assert_eq!(h.retire_archive_before(5), 2);
        assert_eq!(h.archive().len(), 2);
        assert_eq!(h.archive_retired(), 2);
        assert_eq!(h.archive_logical_len(), 4);
        // Epochs at/above the floor still answer; reclaimed ones no longer.
        assert!(h.contains(addrs[5], 5), "retained epoch must still answer");
        assert!(h.pointer_for(1).is_none(), "reclaimed epoch is gone");
        assert!(!h.contains(addrs[1], 1));
        // Idempotent at the same floor: no state change, no version bump.
        let v = h.version();
        assert_eq!(h.retire_archive_before(5), 0);
        assert_eq!(h.version(), v);
    }

    #[test]
    fn retirement_stays_delta_expressible() {
        let (mut h, addrs) = hierarchy(16, 2, 2);
        for e in 0..8u64 {
            h.update(addrs[(e % 16) as usize], e);
        }
        let clone_at_base = h.clone();
        let base = (h.version(), h.archive_logical_len());

        // Retire-only advance: the patch must carry the prefix drop.
        assert!(h.retire_archive_before(4) > 0);
        let patch = h.delta_since(base.0, base.1).expect("retire bumps version");
        assert_eq!(patch.copied_slots(), 0, "pure retirement copies no slots");
        let mut patched = clone_at_base.clone();
        patched.apply_patch(&patch);
        assert!(patched == h, "retire-only patch must restore equality");

        // Mixed advance: more epochs (fresh archives) plus a deeper sweep.
        let base2 = (h.version(), h.archive_logical_len());
        let clone_at_base2 = h.clone();
        for e in 8..14u64 {
            h.update(addrs[(e % 16) as usize], e);
        }
        assert!(h.retire_archive_before(9) > 0);
        let patch2 = h.delta_since(base2.0, base2.1).expect("changes happened");
        let mut patched2 = clone_at_base2;
        patched2.apply_patch(&patch2);
        assert!(
            patched2 == h,
            "append + retire interleaving must stay patchable"
        );
        // Layered baselines over the patched state are empty.
        assert!(h
            .delta_since(patched2.version(), patched2.archive_logical_len())
            .is_none());
    }

    #[test]
    fn retirement_spanning_the_whole_baseline_tail() {
        // A sweep can retire entries the baseline clone never saw: the
        // applier must drop its whole resident archive and take only the
        // still-resident tail.
        let (mut h, addrs) = hierarchy(16, 2, 2);
        for e in 0..6u64 {
            h.update(addrs[(e % 16) as usize], e);
        }
        let clone_at_base = h.clone();
        let base = (h.version(), h.archive_logical_len());
        for e in 6..12u64 {
            h.update(addrs[(e % 16) as usize], e);
        }
        // Floor 10 retires every archived period up to [8,10) — including
        // ones appended after the baseline.
        assert!(h.retire_archive_before(10) >= clone_at_base.archive().len());
        let patch = h.delta_since(base.0, base.1).expect("changes happened");
        let mut patched = clone_at_base;
        patched.apply_patch(&patch);
        assert!(patched == h, "deep sweep past the baseline must patch");
    }

    #[test]
    fn patch_and_hierarchy_wire_roundtrip_to_equality() {
        let (mut h, addrs) = hierarchy(32, 4, 3);
        h.update(addrs[1], 0);
        h.update(addrs[2], 1);
        let clone_at_base = h.clone();
        let base = (h.version(), h.archive_logical_len());
        for e in 2..9u64 {
            h.update(addrs[(e % 32) as usize], e);
        }
        h.retire_archive_before(2);
        let patch = h.delta_since(base.0, base.1).expect("changes happened");

        // Patch: encode → decode → checked apply == direct apply.
        let mut e = Enc::new();
        patch.wire_enc(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let decoded = PointerPatch::wire_dec(&mut d).unwrap();
        d.finish().unwrap();
        let mut patched = clone_at_base;
        patched.checked_apply_patch(&decoded).unwrap();
        assert!(patched == h, "wire-tripped patch must restore equality");

        // Whole hierarchy: encode → decode with the shared MPHF == source.
        let mut e = Enc::new();
        h.wire_enc(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let over_wire = PointerHierarchy::wire_dec(&mut d, h.mphf()).unwrap();
        d.finish().unwrap();
        assert!(over_wire == h, "wire-tripped hierarchy must be ==");

        // Truncation anywhere is a typed error, never a panic.
        for cut in (0..bytes.len()).step_by(7) {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(PointerHierarchy::wire_dec(&mut d, h.mphf()).is_err());
        }
    }

    #[test]
    fn mismatched_wire_patch_is_rejected_without_half_applying() {
        let (mut big, addrs) = hierarchy(64, 4, 3);
        big.update(addrs[0], 0);
        let base = (0, 0);
        let patch = big.delta_since(base.0, base.1).unwrap();
        let mut e = Enc::new();
        patch.wire_enc(&mut e);
        let bytes = e.into_bytes();
        let decoded = PointerPatch::wire_dec(&mut Dec::new(&bytes)).unwrap();
        // A hierarchy with a different slot capacity must refuse it.
        let (mut small, _) = hierarchy(16, 4, 3);
        let before = small.clone();
        assert!(small.checked_apply_patch(&decoded).is_err());
        assert!(small == before, "rejected patch must not perturb state");
    }

    #[test]
    fn no_false_negative_within_retention_many_updates() {
        let (mut h, addrs) = hierarchy(128, 4, 3);
        // Walk 30 epochs; every epoch records 3 hosts.
        let mut expected: Vec<(u64, u64)> = Vec::new();
        for e in 0..30u64 {
            for i in 0..3u64 {
                let a = addrs[((e * 7 + i * 13) % 128) as usize];
                h.update(a, e);
                expected.push((a, e));
            }
        }
        // Top level spans 16 epochs; archives + live levels must cover all.
        for (a, e) in expected {
            assert!(h.contains(a, e), "lost ({a:#x}, epoch {e})");
        }
    }
}
