//! Per-directory-shard retention: the GC pass that keeps a long-lived
//! deployment's state bounded.
//!
//! The paper's analyzer only ever accretes state — every epoch adds flow
//! records at the hosts and archived pointer sets at the switches, so a
//! continuously monitored deployment (and every [`queryplane`] snapshot
//! frozen over it) grows without bound. This module reclaims what standing
//! queries can no longer reach:
//!
//! * **Flow records** are evicted per *directory shard*
//!   ([`crate::shard::host_shard_of`] groups hosts exactly as the sharded
//!   directory partitions them): shard `s`'s eviction floor is the
//!   policy's trailing epoch horizon, lowered by any *pin* (the oldest
//!   epoch a standing query homed on — or last evaluated against — that
//!   shard can still reach) and raised, up to the pin, by the per-shard
//!   record budget.
//! * **Trigger logs** are trimmed at the same per-shard floor as the
//!   records ([`crate::host::HostComponent::trim_triggers_before`]): a
//!   pinned watch's trigger epoch is at or above its shard's floor, so
//!   resolved watches keep resolving; everything older is reclaimed with
//!   the records it indexed.
//! * **Archived pointer sets** are retired at the minimum floor across
//!   shards ([`crate::pointer::PointerHierarchy::retire_archive_before`],
//!   built on the PR-3 checked [`crate::pointer::PointerConfig`] span
//!   arithmetic): a pointer hierarchy serves decode for every shard, so it
//!   keeps whatever the most conservative shard still needs.
//!
//! A sweep mutates the *live* components. The incremental snapshot layer
//! picks the reclamation up on its next delta: record eviction invalidates
//! the store's per-flow journal and therefore surfaces as a
//! [`crate::hoststore::StoreDelta::FullRescan`] (broadcast per owning
//! shard by the result caches); archive retirement rides the pointer patch
//! as a retired-prefix count. `tests/retention_props.rs` pins
//! `apply_delta`-with-GC ≡ fresh-capture-of-the-truncated-state under
//! arbitrary interleavings, and pins retained-epoch answers against an
//! unswept twin deployment.

use crate::analyzer::Analyzer;
use crate::shard::host_shard_of;

/// What a retention sweep may reclaim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Trailing epochs to keep: the sweep's policy floor is
    /// `newest_epoch − keep_epochs` (saturating). Epochs at or above the
    /// floor are never collected.
    pub keep_epochs: u64,
    /// Maximum resident flow records per directory shard after a sweep.
    /// Enforced by raising that shard's floor past the policy horizon —
    /// but never past a pin, so a subscription's reachable window wins
    /// over the budget (such shards are reported in
    /// [`SweepReport::over_budget_shards`]). `usize::MAX` disables the
    /// budget.
    pub shard_record_budget: usize,
}

impl RetentionPolicy {
    /// A pure epoch-horizon policy with no record budget.
    pub fn horizon(keep_epochs: u64) -> Self {
        RetentionPolicy {
            keep_epochs,
            shard_record_budget: usize::MAX,
        }
    }

    /// A budgeted policy: keep `keep_epochs` trailing epochs, and at most
    /// `shard_record_budget` records per directory shard.
    pub fn budgeted(keep_epochs: u64, shard_record_budget: usize) -> Self {
        RetentionPolicy {
            keep_epochs,
            shard_record_budget,
        }
    }
}

/// What one sweep did, per directory shard and in total.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Newest epoch any switch had seen at sweep time.
    pub newest_epoch: u64,
    /// `newest_epoch − keep_epochs`: the floor before pins and budgets.
    pub policy_floor: u64,
    /// The eviction floor actually applied per shard (pins lower it,
    /// budgets raise it).
    pub floor_per_shard: Vec<u64>,
    /// Flow records evicted per shard.
    pub evicted_per_shard: Vec<usize>,
    /// Flow records resident per shard after the sweep.
    pub resident_per_shard: Vec<usize>,
    /// Shards whose pin kept them above the record budget (best-effort:
    /// reachability wins over the budget).
    pub over_budget_shards: Vec<usize>,
    /// Total flow records evicted.
    pub records_evicted: usize,
    /// Archived pointer sets retired across all switches.
    pub archived_retired: usize,
    /// Trigger-log entries trimmed across all hosts (each shard's trigger
    /// log is trimmed at the same floor as its records, so a pinned
    /// watch's trigger always survives on its shard).
    pub triggers_trimmed: usize,
}

impl SweepReport {
    /// Total flow records resident after the sweep.
    pub fn resident_total(&self) -> usize {
        self.resident_per_shard.iter().sum()
    }

    /// Did the sweep reclaim anything at all?
    pub fn reclaimed_anything(&self) -> bool {
        self.records_evicted > 0 || self.archived_retired > 0 || self.triggers_trimmed > 0
    }
}

/// Newest epoch any switch's pointer hierarchy has seen — the "now" the
/// policy's trailing horizon counts back from.
pub fn newest_epoch(analyzer: &Analyzer) -> u64 {
    analyzer
        .all_switches()
        .into_iter()
        .filter_map(|sw| {
            analyzer
                .switch(sw)
                .expect("listed switch")
                .borrow()
                .pointers
                .last_epoch()
        })
        .max()
        .unwrap_or(0)
}

/// The budget cutoff for one shard: the lowest floor that keeps at most
/// `budget` of the records whose newest epochs are `kept` (sorted
/// descending). Ties at the boundary are evicted wholesale — the budget is
/// a ceiling, not a target. Budget 0 floors past every representable
/// epoch: decoded telemetry ranges widened for clock asynchrony can stamp
/// records *beyond* the switch horizon, and those must go too.
fn budget_cutoff(kept: &[u64], budget: usize) -> u64 {
    if budget == 0 {
        return u64::MAX;
    }
    let e = kept[budget - 1];
    let at_least_e = kept.iter().take_while(|&&x| x >= e).count();
    if at_least_e <= budget {
        e
    } else {
        e.saturating_add(1)
    }
}

/// One retention sweep over the live deployment behind `analyzer`,
/// treating the host set as an `n_shards`-way directory partition.
/// `pins[s]`, when present, is the oldest epoch some standing query can
/// still reach on shard `s`: the sweep never collects at or above it
/// there. An empty/short pin slice means "nothing pinned".
///
/// Mutates the live component state; the caller's snapshot picks the
/// reclamation up on its next `apply_delta`/`refresh_delta`.
pub fn sweep(
    analyzer: &Analyzer,
    policy: RetentionPolicy,
    n_shards: usize,
    pins: &[Option<u64>],
) -> SweepReport {
    sweep_at(analyzer, policy, n_shards, pins, newest_epoch(analyzer))
}

/// Like [`sweep`], with a caller-provided `newest` epoch — callers that
/// already scanned the switches to compute pins (the stream plane's
/// per-window path) avoid a second scan.
pub fn sweep_at(
    analyzer: &Analyzer,
    policy: RetentionPolicy,
    n_shards: usize,
    pins: &[Option<u64>],
    newest: u64,
) -> SweepReport {
    let n_shards = n_shards.max(1);
    let policy_floor = newest.saturating_sub(policy.keep_epochs);

    let mut hosts_by_shard: Vec<Vec<_>> = vec![Vec::new(); n_shards];
    for h in analyzer.all_hosts() {
        hosts_by_shard[host_shard_of(h, n_shards)].push(h);
    }

    let mut report = SweepReport {
        newest_epoch: newest,
        policy_floor,
        ..SweepReport::default()
    };
    for (s, hosts) in hosts_by_shard.iter().enumerate() {
        let pin = pins.get(s).copied().flatten();
        let mut floor = policy_floor.min(pin.unwrap_or(u64::MAX));

        // Budget pass: only when the shard's raw record count (a cheap
        // upper bound on what the horizon floor would keep) can exceed
        // the budget — the steady-state common case skips the epoch scan
        // entirely — collect the kept records' newest epochs, newest
        // first.
        let shard_len: usize = hosts
            .iter()
            .map(|&h| analyzer.host(h).expect("listed host").borrow().store.len())
            .sum();
        if policy.shard_record_budget != usize::MAX && shard_len > policy.shard_record_budget {
            let mut kept: Vec<u64> = Vec::new();
            for &h in hosts {
                let comp = analyzer.host(h).expect("listed host").borrow();
                for rec in comp.store.records() {
                    match rec.newest_epoch() {
                        Some(e) if e >= floor => kept.push(e),
                        _ => {}
                    }
                }
            }
            if kept.len() > policy.shard_record_budget {
                kept.sort_unstable_by(|a, b| b.cmp(a));
                let cutoff = budget_cutoff(&kept, policy.shard_record_budget);
                // Reachability wins: never raise the floor past the pin.
                floor = cutoff.max(floor).min(pin.unwrap_or(u64::MAX));
            }
        }

        // Trigger-log entries below the same floor go with the records:
        // epoch `floor` starts at local time `floor × α` (saturating — a
        // budget-0 floor of `u64::MAX` trims everything).
        let trigger_cutoff =
            netsim::time::SimTime(analyzer.params().alpha.as_ns().saturating_mul(floor));
        let mut evicted = 0usize;
        let mut resident = 0usize;
        for &h in hosts {
            let handle = analyzer.host(h).expect("listed host");
            let mut comp = handle.borrow_mut();
            evicted += comp.store.evict_older_than(floor);
            report.triggers_trimmed += comp.trim_triggers_before(trigger_cutoff);
            resident += comp.store.len();
        }
        if resident > policy.shard_record_budget {
            report.over_budget_shards.push(s);
        }
        report.floor_per_shard.push(floor);
        report.evicted_per_shard.push(evicted);
        report.resident_per_shard.push(resident);
        report.records_evicted += evicted;
    }

    // Pointer hierarchies serve decode for every shard: retire archives at
    // the most conservative (minimum) shard floor.
    let pointer_floor = report
        .floor_per_shard
        .iter()
        .copied()
        .min()
        .unwrap_or(policy_floor);
    for sw in analyzer.all_switches() {
        report.archived_retired += analyzer
            .switch(sw)
            .expect("listed switch")
            .borrow_mut()
            .pointers
            .retire_archive_before(pointer_floor);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_cutoff_handles_ties_and_zero() {
        // 5 records, budget 3: the 3rd newest is 7 and only 3 are ≥ 7.
        assert_eq!(budget_cutoff(&[9, 8, 7, 3, 1], 3), 7);
        // Ties at the boundary: keeping epoch 7 would keep 4 > 3 records,
        // so the whole tie group goes.
        assert_eq!(budget_cutoff(&[9, 7, 7, 7, 1], 3), 8);
        // Budget 0 evicts everything — even records whose asynchrony-
        // widened epoch stamps run past the switch horizon.
        assert_eq!(budget_cutoff(&[5, 4], 0), u64::MAX);
    }
}
