//! The SwitchPointer analyzer (§4.3) and the four debugging applications of
//! §5.
//!
//! The analyzer coordinates with switch agents (pulling pointer sets — the
//! "directory service") and host agents (filter/aggregate queries over flow
//! records). Its latency is *modelled* by [`CostModel`] (connection
//! initiation per host, pointer-retrieval rounds, …) while its *answers*
//! are computed from the real data structures populated during simulation —
//! exactly the split that makes the reproduced latency shapes honest: who
//! gets contacted is real, how long a contact takes is calibrated.
//!
//! Implemented applications:
//! * [`Analyzer::diagnose_contention`] — §5.1 too much traffic
//!   (priority-based and microburst-based);
//! * [`Analyzer::diagnose_red_lights`] — §5.2 spatial correlation across
//!   switches;
//! * [`Analyzer::diagnose_cascade`] — §5.3 spatio-temporal recursion;
//! * [`Analyzer::diagnose_load_imbalance`] — §5.4 per-egress flow-size
//!   distributions;
//! * [`Analyzer::top_k`] — the §6.2 top-k query (benchmarked against
//!   PathDump in Fig. 12).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use mphf::Mphf;
use netsim::packet::{FlowId, NodeId, Priority};
use netsim::routing::RouteTable;
use netsim::time::SimTime;
use netsim::topology::Topology;
use telemetry::{EpochParams, EpochRange};

use crate::bitset::BitSet;
use crate::cost::{CostModel, LatencyBreakdown, QueryWaveCost};
use crate::host::{HostHandle, TriggerEvent};
use crate::hoststore::FlowRecord;
use crate::query::{QueryCtx, QueryExecutor, QueryRequest, QueryResponse, StateView};
use crate::switch::SwitchHandle;

/// Maps pointer-bit indices back to hosts (the analyzer built the MPHF, so
/// it owns the inverse mapping; §4.3 "constructs a minimal perfect hash
/// function ... distributes it to all the switches").
#[derive(Debug, Clone)]
pub struct HostDirectory {
    mphf: Arc<Mphf>,
    by_slot: Vec<Option<NodeId>>,
}

impl HostDirectory {
    pub fn new(mphf: Arc<Mphf>, hosts: &[NodeId]) -> Self {
        let mut by_slot = vec![None; mphf.len()];
        for &h in hosts {
            let idx = mphf
                .index(&h.addr())
                .expect("directory host missing from MPHF");
            by_slot[idx] = Some(h);
        }
        HostDirectory { mphf, by_slot }
    }

    /// The hash function (shared with all switches).
    pub fn mphf(&self) -> &Arc<Mphf> {
        &self.mphf
    }

    /// Decodes a pointer bit set into host ids (ascending).
    pub fn hosts_in(&self, bits: &BitSet) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = bits
            .iter_ones()
            .filter_map(|i| self.by_slot.get(i).copied().flatten())
            .collect();
        out.sort();
        out
    }
}

/// A contending flow identified during diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Culprit {
    pub flow: FlowId,
    pub src: NodeId,
    pub dst: NodeId,
    /// Host whose store produced the record.
    pub host: NodeId,
    pub priority: Priority,
    pub bytes: u64,
    /// Epochs (at the diagnosed switch) shared with the victim.
    pub common_epochs: Vec<u64>,
}

/// Outcome of a contention diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Higher-priority flows starved the victim (§2.1 priority contention).
    PriorityContention,
    /// Equal-priority burst overflowed the queue (§2.1 microburst).
    Microburst,
    /// No contending flow found in the window.
    NoCulprit,
}

/// Result of [`Analyzer::diagnose_contention`].
#[derive(Debug, Clone)]
pub struct ContentionDiagnosis {
    pub victim: FlowId,
    /// The switch the diagnosis settled on.
    pub switch: NodeId,
    /// Epoch window diagnosed.
    pub epochs: EpochRange,
    pub culprits: Vec<Culprit>,
    pub hosts_contacted: usize,
    pub verdict: Verdict,
    pub breakdown: LatencyBreakdown,
}

/// Result of [`Analyzer::diagnose_red_lights`].
#[derive(Debug, Clone)]
pub struct RedLightsDiagnosis {
    pub victim: FlowId,
    /// Culprits found at each switch of the victim's path.
    pub per_switch: Vec<(NodeId, Vec<Culprit>)>,
    /// Switches where contention was confirmed (≥1 culprit with a common
    /// epoch).
    pub implicated: Vec<NodeId>,
    pub hosts_contacted: usize,
    pub breakdown: LatencyBreakdown,
}

/// One stage of a cascade diagnosis: `victim` was delayed by `culprit` at
/// `switch`.
#[derive(Debug, Clone)]
pub struct CascadeStage {
    pub victim: FlowId,
    pub switch: NodeId,
    pub culprit: Culprit,
}

/// Result of [`Analyzer::diagnose_cascade`].
#[derive(Debug, Clone)]
pub struct CascadeDiagnosis {
    /// Delay chain, outermost victim first (C-E ← A-F ← B-D in Fig. 1c).
    pub stages: Vec<CascadeStage>,
    pub hosts_contacted: usize,
    pub breakdown: LatencyBreakdown,
}

/// Result of [`Analyzer::diagnose_load_imbalance`].
#[derive(Debug, Clone)]
pub struct LoadImbalanceDiagnosis {
    /// Flow sizes grouped by egress link VID.
    pub per_link: BTreeMap<u16, Vec<u64>>,
    /// If the distributions separate cleanly, the size threshold between
    /// the two busiest links.
    pub separation_bytes: Option<u64>,
    pub hosts_contacted: usize,
    pub breakdown: LatencyBreakdown,
}

/// Result of [`Analyzer::localize_silent_drop`].
#[derive(Debug, Clone)]
pub struct DropDiagnosis {
    pub flow: FlowId,
    /// Switches on the flow's forwarding path, in order.
    pub path: Vec<NodeId>,
    /// Per switch: did its pointer witness the destination in the window?
    pub per_switch: Vec<(NodeId, bool)>,
    /// (last switch that forwarded, first that did not) — the failure lies
    /// between them. `None` if the flow was seen everywhere (no drop on
    /// this path) or nowhere.
    pub suspected_segment: Option<(NodeId, NodeId)>,
    /// Modelled cost of the pointer pulls.
    pub pointer_retrieval: SimTime,
}

/// Result of [`Analyzer::top_k`].
#[derive(Debug, Clone)]
pub struct TopKResult {
    pub flows: Vec<(FlowId, u64)>,
    pub hosts_contacted: usize,
    /// Pointer retrieval latency (zero for the PathDump baseline).
    pub pointer_retrieval: SimTime,
    pub wave: QueryWaveCost,
}

impl TopKResult {
    pub fn total_latency(&self) -> SimTime {
        self.pointer_retrieval + self.wave.total()
    }
}

/// The analyzer.
pub struct Analyzer {
    topo: Topology,
    routes: RouteTable,
    params: EpochParams,
    switches: HashMap<NodeId, SwitchHandle>,
    hosts: HashMap<NodeId, HostHandle>,
    directory: HostDirectory,
    cost: CostModel,
}

impl Analyzer {
    pub fn new(
        topo: Topology,
        params: EpochParams,
        switches: HashMap<NodeId, SwitchHandle>,
        hosts: HashMap<NodeId, HostHandle>,
        directory: HostDirectory,
        cost: CostModel,
    ) -> Self {
        let routes = RouteTable::build(&topo);
        Analyzer {
            topo,
            routes,
            params,
            switches,
            hosts,
            directory,
            cost,
        }
    }

    /// The directory (bit → host decoding).
    pub fn directory(&self) -> &HostDirectory {
        &self.directory
    }

    /// The executor context: everything the analyzer knows about the
    /// deployment besides the mutable component state. Public so
    /// alternative routers (the backend router, the wire front-end) can
    /// run the shared executor over their own views.
    pub fn ctx(&self) -> QueryCtx<'_> {
        QueryCtx {
            topo: &self.topo,
            routes: &self.routes,
            params: self.params,
            directory: &self.directory,
            cost: &self.cost,
        }
    }

    /// A [`StateView`] over the live simulator component handles.
    pub fn live_view(&self) -> LiveView<'_> {
        LiveView {
            switches: &self.switches,
            hosts: &self.hosts,
        }
    }

    fn with_executor<R>(&self, f: impl FnOnce(&mut QueryExecutor<'_, LiveView<'_>>) -> R) -> R {
        let view = self.live_view();
        let mut exec = QueryExecutor::new(self.ctx(), &view);
        f(&mut exec)
    }

    /// Runs any [`QueryRequest`] against the live deployment state.
    pub fn execute(&self, req: &QueryRequest) -> QueryResponse {
        let view = self.live_view();
        QueryExecutor::new(self.ctx(), &view).execute(req)
    }

    /// Pulls the pointer union for `range` from `switch` and decodes it.
    pub fn hosts_for(&self, switch: NodeId, range: EpochRange) -> Vec<NodeId> {
        self.with_executor(|e| e.hosts_for(switch, range))
    }

    /// Search-radius reduction (§4.3): keep only hosts whose traffic can
    /// have shared the victim's egress port at `switch`. The victim's next
    /// hop determines the port; a pointer host is relevant iff some
    /// equal-cost route from `switch` to it uses the same port.
    pub fn reduce_search_radius(
        &self,
        switch: NodeId,
        victim_dst: NodeId,
        victim_flow: FlowId,
        hosts: Vec<NodeId>,
    ) -> Vec<NodeId> {
        self.with_executor(|e| e.reduce_search_radius(switch, victim_dst, victim_flow, hosts))
    }

    /// The epoch window to diagnose around a trigger, with ±⌈ε/α⌉ slack for
    /// clock asynchrony. Covers the dropped window and the one before it.
    pub fn epoch_window(&self, trigger: &TriggerEvent, trigger_window: SimTime) -> EpochRange {
        self.with_executor(|e| e.epoch_window(trigger, trigger_window))
    }

    /// Diagnoses priority/microburst contention for a victim flow whose
    /// destination raised a trigger (§5.1): alert → pointer retrieval →
    /// host queries → verdict.
    pub fn diagnose_contention(
        &self,
        victim: FlowId,
        victim_dst: NodeId,
        trigger_window: SimTime,
    ) -> ContentionDiagnosis {
        self.with_executor(|e| e.diagnose_contention(victim, victim_dst, trigger_window))
    }

    /// Like [`Analyzer::diagnose_contention`] but for a specific trigger
    /// (a flow may raise several over its lifetime; under background load
    /// the operator picks the one tied to the incident under
    /// investigation).
    pub fn diagnose_contention_at(
        &self,
        victim: FlowId,
        victim_dst: NodeId,
        trigger_window: SimTime,
        trigger: &TriggerEvent,
    ) -> ContentionDiagnosis {
        self.with_executor(|e| {
            e.diagnose_contention_at(victim, victim_dst, trigger_window, trigger)
        })
    }

    /// Diagnoses accumulated contention across every switch of the victim's
    /// path (§5.2, spatial correlation).
    pub fn diagnose_red_lights(
        &self,
        victim: FlowId,
        victim_dst: NodeId,
        trigger_window: SimTime,
    ) -> RedLightsDiagnosis {
        self.with_executor(|e| e.diagnose_red_lights(victim, victim_dst, trigger_window))
    }

    /// Recursively chases the delay chain (§5.3): who delayed the victim,
    /// then who delayed the delayer, up to `max_depth` stages.
    pub fn diagnose_cascade(
        &self,
        victim: FlowId,
        victim_dst: NodeId,
        trigger_window: SimTime,
        max_depth: usize,
    ) -> CascadeDiagnosis {
        self.with_executor(|e| e.diagnose_cascade(victim, victim_dst, trigger_window, max_depth))
    }

    /// Pulls pointers for `range` at `switch`, asks every pointed host for
    /// its per-egress flow sizes, and tests for a clean flow-size
    /// separation between egress links (§5.4).
    pub fn diagnose_load_imbalance(
        &self,
        switch: NodeId,
        range: EpochRange,
    ) -> LoadImbalanceDiagnosis {
        self.with_executor(|e| e.diagnose_load_imbalance(switch, range))
    }

    /// Top-k flows through `switch` over `range` (§6.2). SwitchPointer
    /// contacts only hosts named by the pointer; the PathDump baseline must
    /// contact every server.
    pub fn top_k(&self, switch: NodeId, k: usize, range: EpochRange) -> TopKResult {
        self.with_executor(|e| e.top_k(switch, k, range))
    }

    /// Localizes where a flow's packets stopped flowing, using switch
    /// pointers as per-hop *presence* witnesses (§2.4-class application).
    pub fn localize_silent_drop(
        &self,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        range: EpochRange,
    ) -> DropDiagnosis {
        self.with_executor(|e| e.localize_silent_drop(flow, src, dst, range))
    }

    /// All hosts known to the analyzer (used by baselines and tests).
    pub fn all_hosts(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.hosts.keys().copied().collect();
        v.sort();
        v
    }

    /// All switches with a SwitchPointer component (sorted).
    pub fn all_switches(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.switches.keys().copied().collect();
        v.sort();
        v
    }

    /// Access to a host handle (tests, baselines).
    pub fn host(&self, h: NodeId) -> Option<&HostHandle> {
        self.hosts.get(&h)
    }

    /// Access to a switch handle (tests).
    pub fn switch(&self, s: NodeId) -> Option<&SwitchHandle> {
        self.switches.get(&s)
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        self.cost_ref()
    }

    fn cost_ref(&self) -> &CostModel {
        &self.cost
    }

    /// The topology the analyzer reasons over.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Epoch timing parameters in force.
    pub fn params(&self) -> EpochParams {
        self.params
    }

    /// The route tables the analyzer reasons over.
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }
}

/// [`StateView`] over the live `Rc<RefCell<…>>` component handles the
/// simulator mutates — what the sequential [`Analyzer`] queries.
pub struct LiveView<'a> {
    switches: &'a HashMap<NodeId, SwitchHandle>,
    hosts: &'a HashMap<NodeId, HostHandle>,
}

impl StateView for LiveView<'_> {
    fn pointer_union(&self, switch: NodeId, range: EpochRange) -> Option<BitSet> {
        self.switches
            .get(&switch)
            .map(|h| h.borrow().pointers.pointer_union(range.lo, range.hi))
    }

    fn pointer_contains_exact(
        &self,
        switch: NodeId,
        addr: u64,
        epoch: u64,
    ) -> Option<Option<bool>> {
        self.switches
            .get(&switch)
            .map(|h| h.borrow().pointers.contains_within(addr, epoch, 1))
    }

    fn store_len(&self, host: NodeId) -> Option<usize> {
        self.hosts.get(&host).map(|h| h.borrow().store.len())
    }

    fn record(&self, host: NodeId, flow: FlowId) -> Option<FlowRecord> {
        self.hosts.get(&host)?.borrow().store.record(flow).cloned()
    }

    fn flows_matching(&self, host: NodeId, switch: NodeId, range: EpochRange) -> Vec<FlowRecord> {
        match self.hosts.get(&host) {
            Some(h) => h
                .borrow()
                .store
                .flows_matching(switch, range)
                .into_iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    fn top_k_through(&self, host: NodeId, switch: NodeId, k: usize) -> Vec<(FlowId, u64)> {
        match self.hosts.get(&host) {
            Some(h) => h.borrow().store.top_k_through(switch, k),
            None => Vec::new(),
        }
    }

    fn sizes_by_link(&self, host: NodeId, switch: NodeId) -> Vec<(u16, u64)> {
        match self.hosts.get(&host) {
            Some(h) => h.borrow().store.sizes_by_link(switch),
            None => Vec::new(),
        }
    }

    fn first_trigger_for(&self, host: NodeId, flow: FlowId) -> Option<TriggerEvent> {
        self.hosts
            .get(&host)?
            .borrow()
            .first_trigger_for(flow)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{HostComponent, TriggerConfig, TriggerEvent};
    use crate::pointer::PointerConfig;
    use crate::switch::SwitchComponent;
    use netsim::packet::Protocol;
    use netsim::topology::GBPS;
    use std::cell::RefCell;
    use std::rc::Rc;
    use telemetry::{DecodedTelemetry, EmbedMode, HopTelemetry, PathCodec, TelemetryDecoder};

    /// Hand-wires an analyzer over the 3-switch chain with no simulation:
    /// switch pointers and host stores are populated directly.
    struct Fixture {
        analyzer: Analyzer,
        topo: Topology,
    }

    fn fixture() -> Fixture {
        let topo = Topology::chain(3, 2, GBPS);
        let addrs: Vec<u64> = topo.hosts().iter().map(|h| h.addr()).collect();
        let mphf = Arc::new(Mphf::build(&addrs).unwrap());
        let params = EpochParams {
            alpha: netsim::time::SimTime::from_ms(1),
            epsilon: netsim::time::SimTime::from_ms(1),
            delta: netsim::time::SimTime::from_ms(2),
        };
        let codec = Rc::new(PathCodec::new(topo.clone()));
        let decoder = Rc::new(TelemetryDecoder::new(
            PathCodec::new(topo.clone()),
            params,
            EmbedMode::Commodity,
        ));
        let mut switches = HashMap::new();
        for &sw in topo.switches() {
            let comp = SwitchComponent::new(
                sw,
                params,
                EmbedMode::Commodity,
                PointerConfig {
                    n_hosts: addrs.len(),
                    alpha: 10,
                    k: 3,
                },
                mphf.clone(),
                codec.clone(),
            );
            switches.insert(sw, Rc::new(RefCell::new(comp)));
        }
        let mut hosts = HashMap::new();
        for &h in topo.hosts() {
            hosts.insert(
                h,
                Rc::new(RefCell::new(HostComponent::new(
                    h,
                    decoder.clone(),
                    TriggerConfig::default(),
                ))),
            );
        }
        let directory = HostDirectory::new(mphf, topo.hosts());
        let analyzer = Analyzer::new(
            topo.clone(),
            params,
            switches,
            hosts,
            directory,
            CostModel::paper_calibrated(),
        );
        Fixture { analyzer, topo }
    }

    fn node(topo: &Topology, name: &str) -> NodeId {
        topo.node_by_name(name).unwrap()
    }

    fn telem(hops: &[(NodeId, u64)]) -> DecodedTelemetry {
        DecodedTelemetry {
            hops: hops
                .iter()
                .map(|&(sw, e)| HopTelemetry {
                    switch: sw,
                    epochs: EpochRange::exact(e),
                })
                .collect(),
            tag_idx: 0,
        }
    }

    #[test]
    fn hosts_for_decodes_pointer_bits() {
        let fx = fixture();
        let topo = &fx.topo;
        let (s1, d, f) = (node(topo, "S1"), node(topo, "D"), node(topo, "F"));
        {
            let h = fx.analyzer.switch(s1).unwrap();
            let mut comp = h.borrow_mut();
            comp.pointers.update(d.addr(), 5);
            comp.pointers.update(f.addr(), 6);
        }
        assert_eq!(
            fx.analyzer.hosts_for(s1, EpochRange { lo: 5, hi: 5 }),
            vec![d]
        );
        let both = fx.analyzer.hosts_for(s1, EpochRange { lo: 5, hi: 6 });
        assert_eq!(both.len(), 2);
    }

    #[test]
    fn search_radius_reduction_keeps_same_egress_only() {
        let fx = fixture();
        let topo = &fx.topo;
        let (s2, a, b, e, f) = (
            node(topo, "S2"),
            node(topo, "A"),
            node(topo, "B"),
            node(topo, "E"),
            node(topo, "F"),
        );
        // Victim heads to F (egress S2->S3). E shares that egress; A and B
        // are behind S2->S1, the opposite direction.
        let kept = fx
            .analyzer
            .reduce_search_radius(s2, f, FlowId(0), vec![a, b, e]);
        assert_eq!(kept, vec![e]);
    }

    #[test]
    fn epoch_window_includes_slack() {
        let fx = fixture();
        let trig = TriggerEvent {
            at: netsim::time::SimTime::from_ms(21),
            flow: FlowId(0),
            prev_bytes: 100_000,
            cur_bytes: 0,
        };
        let w = fx
            .analyzer
            .epoch_window(&trig, netsim::time::SimTime::from_ms(1));
        // Trigger at epoch 21, window covers [19-slack .. 21+slack], slack=1.
        assert!(w.contains(19) && w.contains(21) && w.contains(22));
        assert!(w.lo <= 18);
    }

    #[test]
    fn top_k_merges_across_hosts() {
        let fx = fixture();
        let topo = &fx.topo;
        let (s1, d, f, a, b) = (
            node(topo, "S1"),
            node(topo, "D"),
            node(topo, "F"),
            node(topo, "A"),
            node(topo, "B"),
        );
        // Pointer names D and F for epoch 3.
        {
            let mut comp = fx.analyzer.switch(s1).unwrap().borrow_mut();
            comp.pointers.update(d.addr(), 3);
            comp.pointers.update(f.addr(), 3);
        }
        // D holds a 9 KB flow record via S1; F a 5 KB one.
        fx.analyzer.host(d).unwrap().borrow_mut().store.ingest(
            FlowId(1),
            a,
            d,
            Protocol::Udp,
            Priority::LOW,
            9_000,
            &telem(&[(s1, 3)]),
            None,
        );
        fx.analyzer.host(f).unwrap().borrow_mut().store.ingest(
            FlowId(2),
            b,
            f,
            Protocol::Udp,
            Priority::LOW,
            5_000,
            &telem(&[(s1, 3)]),
            None,
        );
        let r = fx.analyzer.top_k(s1, 10, EpochRange { lo: 3, hi: 3 });
        assert_eq!(r.hosts_contacted, 2);
        assert_eq!(r.flows, vec![(FlowId(1), 9_000), (FlowId(2), 5_000)]);
        assert!(r.total_latency() > r.wave.total());
    }

    #[test]
    fn directory_roundtrip_is_total_over_hosts() {
        let fx = fixture();
        let dir = fx.analyzer.directory();
        let mut bits = crate::bitset::BitSet::new(dir.mphf().len());
        for &h in fx.topo.hosts() {
            bits.set(dir.mphf().index(&h.addr()).unwrap());
        }
        let decoded = dir.hosts_in(&bits);
        assert_eq!(decoded.len(), fx.topo.hosts().len());
    }

    #[test]
    #[should_panic(expected = "no SwitchPointer component")]
    fn hosts_for_unknown_switch_panics() {
        let fx = fixture();
        // A host id is not a switch.
        let a = node(&fx.topo, "A");
        fx.analyzer.hosts_for(a, EpochRange::exact(0));
    }
}
