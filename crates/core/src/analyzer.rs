//! The SwitchPointer analyzer (§4.3) and the four debugging applications of
//! §5.
//!
//! The analyzer coordinates with switch agents (pulling pointer sets — the
//! "directory service") and host agents (filter/aggregate queries over flow
//! records). Its latency is *modelled* by [`CostModel`] (connection
//! initiation per host, pointer-retrieval rounds, …) while its *answers*
//! are computed from the real data structures populated during simulation —
//! exactly the split that makes the reproduced latency shapes honest: who
//! gets contacted is real, how long a contact takes is calibrated.
//!
//! Implemented applications:
//! * [`Analyzer::diagnose_contention`] — §5.1 too much traffic
//!   (priority-based and microburst-based);
//! * [`Analyzer::diagnose_red_lights`] — §5.2 spatial correlation across
//!   switches;
//! * [`Analyzer::diagnose_cascade`] — §5.3 spatio-temporal recursion;
//! * [`Analyzer::diagnose_load_imbalance`] — §5.4 per-egress flow-size
//!   distributions;
//! * [`Analyzer::top_k`] — the §6.2 top-k query (benchmarked against
//!   PathDump in Fig. 12).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use mphf::Mphf;
use netsim::packet::{FlowId, NodeId, Priority};
use netsim::routing::RouteTable;
use netsim::time::SimTime;
use netsim::topology::Topology;
use telemetry::{EpochParams, EpochRange};

use crate::bitset::BitSet;
use crate::cost::{CostModel, LatencyBreakdown, QueryWaveCost};
use crate::host::{HostHandle, TriggerEvent};
use crate::switch::SwitchHandle;

/// Maps pointer-bit indices back to hosts (the analyzer built the MPHF, so
/// it owns the inverse mapping; §4.3 "constructs a minimal perfect hash
/// function ... distributes it to all the switches").
#[derive(Debug, Clone)]
pub struct HostDirectory {
    mphf: Arc<Mphf>,
    by_slot: Vec<Option<NodeId>>,
}

impl HostDirectory {
    pub fn new(mphf: Arc<Mphf>, hosts: &[NodeId]) -> Self {
        let mut by_slot = vec![None; mphf.len()];
        for &h in hosts {
            let idx = mphf
                .index(&h.addr())
                .expect("directory host missing from MPHF");
            by_slot[idx] = Some(h);
        }
        HostDirectory { mphf, by_slot }
    }

    /// The hash function (shared with all switches).
    pub fn mphf(&self) -> &Arc<Mphf> {
        &self.mphf
    }

    /// Decodes a pointer bit set into host ids (ascending).
    pub fn hosts_in(&self, bits: &BitSet) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = bits
            .iter_ones()
            .filter_map(|i| self.by_slot.get(i).copied().flatten())
            .collect();
        out.sort();
        out
    }
}

/// A contending flow identified during diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Culprit {
    pub flow: FlowId,
    pub src: NodeId,
    pub dst: NodeId,
    /// Host whose store produced the record.
    pub host: NodeId,
    pub priority: Priority,
    pub bytes: u64,
    /// Epochs (at the diagnosed switch) shared with the victim.
    pub common_epochs: Vec<u64>,
}

/// Outcome of a contention diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Higher-priority flows starved the victim (§2.1 priority contention).
    PriorityContention,
    /// Equal-priority burst overflowed the queue (§2.1 microburst).
    Microburst,
    /// No contending flow found in the window.
    NoCulprit,
}

/// Result of [`Analyzer::diagnose_contention`].
#[derive(Debug, Clone)]
pub struct ContentionDiagnosis {
    pub victim: FlowId,
    /// The switch the diagnosis settled on.
    pub switch: NodeId,
    /// Epoch window diagnosed.
    pub epochs: EpochRange,
    pub culprits: Vec<Culprit>,
    pub hosts_contacted: usize,
    pub verdict: Verdict,
    pub breakdown: LatencyBreakdown,
}

/// Result of [`Analyzer::diagnose_red_lights`].
#[derive(Debug, Clone)]
pub struct RedLightsDiagnosis {
    pub victim: FlowId,
    /// Culprits found at each switch of the victim's path.
    pub per_switch: Vec<(NodeId, Vec<Culprit>)>,
    /// Switches where contention was confirmed (≥1 culprit with a common
    /// epoch).
    pub implicated: Vec<NodeId>,
    pub hosts_contacted: usize,
    pub breakdown: LatencyBreakdown,
}

/// One stage of a cascade diagnosis: `victim` was delayed by `culprit` at
/// `switch`.
#[derive(Debug, Clone)]
pub struct CascadeStage {
    pub victim: FlowId,
    pub switch: NodeId,
    pub culprit: Culprit,
}

/// Result of [`Analyzer::diagnose_cascade`].
#[derive(Debug, Clone)]
pub struct CascadeDiagnosis {
    /// Delay chain, outermost victim first (C-E ← A-F ← B-D in Fig. 1c).
    pub stages: Vec<CascadeStage>,
    pub hosts_contacted: usize,
    pub breakdown: LatencyBreakdown,
}

/// Result of [`Analyzer::diagnose_load_imbalance`].
#[derive(Debug, Clone)]
pub struct LoadImbalanceDiagnosis {
    /// Flow sizes grouped by egress link VID.
    pub per_link: BTreeMap<u16, Vec<u64>>,
    /// If the distributions separate cleanly, the size threshold between
    /// the two busiest links.
    pub separation_bytes: Option<u64>,
    pub hosts_contacted: usize,
    pub breakdown: LatencyBreakdown,
}

/// Result of [`Analyzer::localize_silent_drop`].
#[derive(Debug, Clone)]
pub struct DropDiagnosis {
    pub flow: FlowId,
    /// Switches on the flow's forwarding path, in order.
    pub path: Vec<NodeId>,
    /// Per switch: did its pointer witness the destination in the window?
    pub per_switch: Vec<(NodeId, bool)>,
    /// (last switch that forwarded, first that did not) — the failure lies
    /// between them. `None` if the flow was seen everywhere (no drop on
    /// this path) or nowhere.
    pub suspected_segment: Option<(NodeId, NodeId)>,
    /// Modelled cost of the pointer pulls.
    pub pointer_retrieval: SimTime,
}

/// Result of [`Analyzer::top_k`].
#[derive(Debug, Clone)]
pub struct TopKResult {
    pub flows: Vec<(FlowId, u64)>,
    pub hosts_contacted: usize,
    /// Pointer retrieval latency (zero for the PathDump baseline).
    pub pointer_retrieval: SimTime,
    pub wave: QueryWaveCost,
}

impl TopKResult {
    pub fn total_latency(&self) -> SimTime {
        self.pointer_retrieval + self.wave.total()
    }
}

/// The analyzer.
pub struct Analyzer {
    topo: Topology,
    routes: RouteTable,
    params: EpochParams,
    switches: HashMap<NodeId, SwitchHandle>,
    hosts: HashMap<NodeId, HostHandle>,
    directory: HostDirectory,
    cost: CostModel,
}

impl Analyzer {
    pub fn new(
        topo: Topology,
        params: EpochParams,
        switches: HashMap<NodeId, SwitchHandle>,
        hosts: HashMap<NodeId, HostHandle>,
        directory: HostDirectory,
        cost: CostModel,
    ) -> Self {
        let routes = RouteTable::build(&topo);
        Analyzer {
            topo,
            routes,
            params,
            switches,
            hosts,
            directory,
            cost,
        }
    }

    /// The directory (bit → host decoding).
    pub fn directory(&self) -> &HostDirectory {
        &self.directory
    }

    /// Pulls the pointer union for `range` from `switch` and decodes it.
    pub fn hosts_for(&self, switch: NodeId, range: EpochRange) -> Vec<NodeId> {
        let handle = self
            .switches
            .get(&switch)
            .unwrap_or_else(|| panic!("no SwitchPointer component on {switch}"));
        let bits = handle.borrow().pointers.pointer_union(range.lo, range.hi);
        self.directory.hosts_in(&bits)
    }

    /// Search-radius reduction (§4.3): keep only hosts whose traffic can
    /// have shared the victim's egress port at `switch`. The victim's next
    /// hop determines the port; a pointer host is relevant iff some
    /// equal-cost route from `switch` to it uses the same port.
    pub fn reduce_search_radius(
        &self,
        switch: NodeId,
        victim_dst: NodeId,
        victim_flow: FlowId,
        hosts: Vec<NodeId>,
    ) -> Vec<NodeId> {
        let Some(victim_port) = self.routes.egress(switch, victim_dst, victim_flow) else {
            return hosts;
        };
        hosts
            .into_iter()
            .filter(|&h| self.routes.ports(switch, h).contains(&victim_port))
            .collect()
    }

    /// The epoch window to diagnose around a trigger, with ±⌈ε/α⌉ slack for
    /// clock asynchrony. Covers the dropped window and the one before it.
    pub fn epoch_window(&self, trigger: &TriggerEvent, trigger_window: SimTime) -> EpochRange {
        let slack = self
            .params
            .epsilon
            .as_ns()
            .div_ceil(self.params.alpha.as_ns());
        let hi = self.params.epoch_of(trigger.at) + slack;
        let lo = self
            .params
            .epoch_of(trigger.at.saturating_sub(trigger_window * 2))
            .saturating_sub(slack);
        EpochRange { lo, hi }
    }

    // ------------------------------------------------------------------
    // Shared query machinery
    // ------------------------------------------------------------------

    /// Queries `hosts` for flows matching `(switch, range)`, excluding the
    /// victim flow. Returns culprits plus per-host record counts (for the
    /// cost model).
    fn query_hosts(
        &self,
        hosts: &[NodeId],
        switch: NodeId,
        range: EpochRange,
        victim: FlowId,
    ) -> (Vec<Culprit>, Vec<usize>) {
        let mut culprits = Vec::new();
        let mut record_counts = Vec::with_capacity(hosts.len());
        for &h in hosts {
            let Some(handle) = self.hosts.get(&h) else {
                record_counts.push(0);
                continue;
            };
            let comp = handle.borrow();
            record_counts.push(comp.store.len());
            for rec in comp.store.flows_matching(switch, range) {
                if rec.flow == victim {
                    continue;
                }
                let common: Vec<u64> = rec.epochs_at[&switch]
                    .range(range.lo..=range.hi)
                    .copied()
                    .collect();
                culprits.push(Culprit {
                    flow: rec.flow,
                    src: rec.src,
                    dst: rec.dst,
                    host: h,
                    priority: rec.priority,
                    bytes: rec.bytes,
                    common_epochs: common,
                });
            }
        }
        culprits.sort_by_key(|c| (std::cmp::Reverse(c.priority), std::cmp::Reverse(c.bytes)));
        (culprits, record_counts)
    }

    fn victim_info(&self, victim_dst: NodeId, victim: FlowId) -> (TriggerEvent, Vec<NodeId>) {
        let host = self.hosts[&victim_dst].borrow();
        let trigger = *host
            .first_trigger_for(victim)
            .expect("victim host raised no trigger for the flow");
        drop(host);
        (trigger, self.victim_path(victim_dst, victim))
    }

    fn victim_path(&self, victim_dst: NodeId, victim: FlowId) -> Vec<NodeId> {
        self.hosts[&victim_dst]
            .borrow()
            .store
            .record(victim)
            .expect("victim host has no record for the flow")
            .path
            .clone()
    }

    // ------------------------------------------------------------------
    // §5.1 Too much traffic
    // ------------------------------------------------------------------

    /// Diagnoses priority/microburst contention for a victim flow whose
    /// destination raised a trigger. Follows the §5.1 procedure: alert →
    /// pointer retrieval (one switch) → host queries → verdict.
    pub fn diagnose_contention(
        &self,
        victim: FlowId,
        victim_dst: NodeId,
        trigger_window: SimTime,
    ) -> ContentionDiagnosis {
        let (trigger, _) = self.victim_info(victim_dst, victim);
        self.diagnose_contention_at(victim, victim_dst, trigger_window, &trigger)
    }

    /// Like [`Analyzer::diagnose_contention`] but for a specific trigger
    /// (a flow may raise several over its lifetime; under background load
    /// the operator picks the one tied to the incident under
    /// investigation).
    pub fn diagnose_contention_at(
        &self,
        victim: FlowId,
        victim_dst: NodeId,
        trigger_window: SimTime,
        trigger: &TriggerEvent,
    ) -> ContentionDiagnosis {
        let path = self.victim_path(victim_dst, victim);
        let range = self.epoch_window(trigger, trigger_window);

        // Pick the contended switch: walk the path and take the first
        // switch with a non-empty reduced host set beyond the victim's own
        // endpoints. (The alert's per-switch epoch data narrows this in the
        // real system; with the simulator's single bottleneck the first hit
        // is the bottleneck.)
        let mut chosen: Option<(NodeId, Vec<NodeId>)> = None;
        for &sw in &path {
            let mut hosts = self.hosts_for(sw, range);
            hosts.retain(|&h| h != victim_dst);
            let reduced = self.reduce_search_radius(sw, victim_dst, victim, hosts);
            if !reduced.is_empty() {
                chosen = Some((sw, reduced));
                break;
            }
        }
        let (switch, hosts) = chosen.unwrap_or_else(|| (path[0], Vec::new()));

        let (culprits, record_counts) = self.query_hosts(&hosts, switch, range, victim);
        let victim_prio = self.hosts[&victim_dst]
            .borrow()
            .store
            .record(victim)
            .unwrap()
            .priority;
        let verdict = if culprits
            .iter()
            .any(|c| c.priority > victim_prio && !c.common_epochs.is_empty())
        {
            Verdict::PriorityContention
        } else if culprits.iter().any(|c| !c.common_epochs.is_empty()) {
            Verdict::Microburst
        } else {
            Verdict::NoCulprit
        };

        let wave = self.cost.query_wave(hosts.len(), &record_counts);
        ContentionDiagnosis {
            victim,
            switch,
            epochs: range,
            culprits,
            hosts_contacted: hosts.len(),
            verdict,
            breakdown: LatencyBreakdown {
                detection: trigger_window,
                alert: self.cost.alert_rtt,
                pointer_retrieval: self.cost.pointer_retrieval(1),
                diagnosis: wave.total(),
                diagnosis_detail: wave,
            },
        }
    }

    // ------------------------------------------------------------------
    // §5.2 Too many red lights
    // ------------------------------------------------------------------

    /// Diagnoses accumulated contention across every switch of the victim's
    /// path (spatial correlation).
    pub fn diagnose_red_lights(
        &self,
        victim: FlowId,
        victim_dst: NodeId,
        trigger_window: SimTime,
    ) -> RedLightsDiagnosis {
        let (trigger, path) = self.victim_info(victim_dst, victim);
        let range = self.epoch_window(&trigger, trigger_window);

        // One retrieval round over all path switches (§5.2: "contacts all
        // of the switches and retrieves pointers ... in 10 ms").
        let mut union_hosts: BTreeSet<NodeId> = BTreeSet::new();
        let mut per_switch_hosts: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        for &sw in &path {
            let mut hosts = self.hosts_for(sw, range);
            hosts.retain(|&h| h != victim_dst);
            let reduced = self.reduce_search_radius(sw, victim_dst, victim, hosts);
            union_hosts.extend(reduced.iter().copied());
            per_switch_hosts.push((sw, reduced));
        }
        let all_hosts: Vec<NodeId> = union_hosts.into_iter().collect();

        // One query wave over the union of hosts; evaluate per switch.
        let mut per_switch = Vec::new();
        let mut implicated = Vec::new();
        let mut record_counts = vec![0usize; all_hosts.len()];
        for (i, &h) in all_hosts.iter().enumerate() {
            if let Some(handle) = self.hosts.get(&h) {
                record_counts[i] = handle.borrow().store.len();
            }
        }
        for (sw, hosts) in &per_switch_hosts {
            let (culprits, _) = self.query_hosts(hosts, *sw, range, victim);
            if culprits.iter().any(|c| !c.common_epochs.is_empty()) {
                implicated.push(*sw);
            }
            per_switch.push((*sw, culprits));
        }

        let wave = self.cost.query_wave(all_hosts.len(), &record_counts);
        RedLightsDiagnosis {
            victim,
            per_switch,
            implicated,
            hosts_contacted: all_hosts.len(),
            breakdown: LatencyBreakdown {
                detection: trigger_window,
                alert: self.cost.alert_rtt,
                pointer_retrieval: self.cost.pointer_retrieval(path.len()),
                diagnosis: wave.total(),
                diagnosis_detail: wave,
            },
        }
    }

    // ------------------------------------------------------------------
    // §5.3 Traffic cascades
    // ------------------------------------------------------------------

    /// Recursively chases the delay chain: who delayed the victim, then who
    /// delayed the delayer, up to `max_depth` stages (temporal + spatial
    /// correlation).
    pub fn diagnose_cascade(
        &self,
        victim: FlowId,
        victim_dst: NodeId,
        trigger_window: SimTime,
        max_depth: usize,
    ) -> CascadeDiagnosis {
        let (trigger, _) = self.victim_info(victim_dst, victim);
        let mut range = self.epoch_window(&trigger, trigger_window);

        let mut stages = Vec::new();
        let mut hosts_contacted = 0usize;
        let mut retrieval = SimTime::ZERO;
        let mut diagnosis = SimTime::ZERO;
        let mut detail = QueryWaveCost::default();

        let mut cur_victim = victim;
        let mut cur_dst = victim_dst;

        for _ in 0..max_depth {
            // The current victim's path, from its destination's record.
            let path = match self.hosts[&cur_dst].borrow().store.record(cur_victim) {
                Some(r) => r.path.clone(),
                None => break,
            };
            let cur_prio = self.hosts[&cur_dst]
                .borrow()
                .store
                .record(cur_victim)
                .unwrap()
                .priority;

            retrieval += self.cost.pointer_retrieval(path.len());

            // Find the strongest higher-priority culprit across the path.
            let mut best: Option<(NodeId, Culprit)> = None;
            let mut wave_hosts = 0usize;
            for &sw in &path {
                let mut hosts = self.hosts_for(sw, range);
                hosts.retain(|&h| h != cur_dst);
                let reduced = self.reduce_search_radius(sw, cur_dst, cur_victim, hosts);
                wave_hosts += reduced.len();
                let counts: Vec<usize> = reduced
                    .iter()
                    .map(|h| {
                        self.hosts
                            .get(h)
                            .map(|hh| hh.borrow().store.len())
                            .unwrap_or(0)
                    })
                    .collect();
                let wave = self.cost.query_wave(reduced.len(), &counts);
                diagnosis += wave.total();
                detail.connection_initiation += wave.connection_initiation;
                detail.request += wave.request;
                detail.query_execution += wave.query_execution;
                detail.response += wave.response;

                let (culprits, _) = self.query_hosts(&reduced, sw, range, cur_victim);
                for c in culprits {
                    let fresh = c.priority > cur_prio
                        && !c.common_epochs.is_empty()
                        && stages
                            .iter()
                            .all(|s: &CascadeStage| s.victim != c.flow && s.culprit.flow != c.flow);
                    let better = best
                        .as_ref()
                        .map(|(_, b)| (c.priority, c.bytes) > (b.priority, b.bytes))
                        .unwrap_or(true);
                    if fresh && better {
                        best = Some((sw, c));
                    }
                }
            }
            hosts_contacted += wave_hosts;

            match best {
                Some((sw, culprit)) => {
                    // Widen the window slightly for the next stage: the
                    // upstream cause precedes the symptom.
                    range = EpochRange {
                        lo: range.lo.saturating_sub(1),
                        hi: range.hi,
                    };
                    let next_victim = culprit.flow;
                    let next_dst = culprit.dst;
                    stages.push(CascadeStage {
                        victim: cur_victim,
                        switch: sw,
                        culprit,
                    });
                    cur_victim = next_victim;
                    cur_dst = next_dst;
                }
                None => break,
            }
        }

        CascadeDiagnosis {
            stages,
            hosts_contacted,
            breakdown: LatencyBreakdown {
                detection: trigger_window,
                alert: self.cost.alert_rtt,
                pointer_retrieval: retrieval,
                diagnosis,
                diagnosis_detail: detail,
            },
        }
    }

    // ------------------------------------------------------------------
    // §5.4 Load imbalance
    // ------------------------------------------------------------------

    /// Pulls pointers for `range` at `switch`, asks every pointed host for
    /// its per-egress flow sizes, and tests for a clean flow-size
    /// separation between egress links.
    pub fn diagnose_load_imbalance(
        &self,
        switch: NodeId,
        range: EpochRange,
    ) -> LoadImbalanceDiagnosis {
        let hosts = self.hosts_for(switch, range);
        let mut per_link: BTreeMap<u16, Vec<u64>> = BTreeMap::new();
        let mut record_counts = Vec::with_capacity(hosts.len());
        for &h in &hosts {
            let Some(handle) = self.hosts.get(&h) else {
                record_counts.push(0);
                continue;
            };
            let comp = handle.borrow();
            record_counts.push(comp.store.len());
            for (link, bytes) in comp.store.sizes_by_link(switch) {
                per_link.entry(link).or_default().push(bytes);
            }
        }
        for sizes in per_link.values_mut() {
            sizes.sort_unstable();
        }

        // Clean separation between the two busiest links: every flow on one
        // side smaller than every flow on the other.
        let mut links: Vec<(&u16, &Vec<u64>)> = per_link.iter().collect();
        links.sort_by_key(|(_, v)| std::cmp::Reverse(v.len()));
        let separation_bytes = if links.len() >= 2 {
            let (a, b) = (links[0].1, links[1].1);
            let (max_a, min_a) = (*a.last().unwrap(), a[0]);
            let (max_b, min_b) = (*b.last().unwrap(), b[0]);
            if max_a < min_b {
                Some(min_b)
            } else if max_b < min_a {
                Some(min_a)
            } else {
                None
            }
        } else {
            None
        };

        let wave = self.cost.query_wave(hosts.len(), &record_counts);
        LoadImbalanceDiagnosis {
            per_link,
            separation_bytes,
            hosts_contacted: hosts.len(),
            breakdown: LatencyBreakdown {
                detection: SimTime::ZERO, // detected from interface counters
                alert: self.cost.alert_rtt,
                pointer_retrieval: self.cost.pointer_retrieval(1),
                diagnosis: wave.total(),
                diagnosis_detail: wave,
            },
        }
    }

    // ------------------------------------------------------------------
    // §6.2 Top-k query
    // ------------------------------------------------------------------

    /// Top-k flows through `switch` over `range`. SwitchPointer contacts
    /// only hosts named by the pointer; the PathDump baseline (see the
    /// `pathdump` crate) must contact every server.
    pub fn top_k(&self, switch: NodeId, k: usize, range: EpochRange) -> TopKResult {
        let hosts = self.hosts_for(switch, range);
        let mut merged: Vec<(FlowId, u64)> = Vec::new();
        let mut record_counts = Vec::with_capacity(hosts.len());
        for &h in &hosts {
            let Some(handle) = self.hosts.get(&h) else {
                record_counts.push(0);
                continue;
            };
            let comp = handle.borrow();
            record_counts.push(comp.store.len());
            merged.extend(comp.store.top_k_through(switch, k));
        }
        merged.sort_by_key(|&(f, b)| (std::cmp::Reverse(b), f));
        merged.truncate(k);
        TopKResult {
            flows: merged,
            hosts_contacted: hosts.len(),
            pointer_retrieval: self.cost.pointer_retrieval(1),
            wave: self.cost.query_wave(hosts.len(), &record_counts),
        }
    }

    // ------------------------------------------------------------------
    // §2.4-class application: silent drop localization
    // ------------------------------------------------------------------

    /// Localizes where a flow's packets stopped flowing, using switch
    /// pointers as per-hop *presence* witnesses — a member of the "other
    /// use cases" class (§2.4; PathDump's blackhole localization gains
    /// per-epoch precision from the pointer directory).
    ///
    /// Walks the flow's forwarding path (the analyzer knows topology and
    /// flow rules, §4.3); a switch whose pointer lacks the destination for
    /// the post-onset epochs never forwarded the flow then. The failure
    /// lies on the segment between the last switch that did and the first
    /// that did not.
    pub fn localize_silent_drop(
        &self,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        range: EpochRange,
    ) -> DropDiagnosis {
        // Reconstruct the forwarding path by walking the route tables with
        // the flow's ECMP identity.
        let mut path = Vec::new();
        let mut cur = src;
        while cur != dst {
            let Some(port) = self.routes.egress(cur, dst, flow) else {
                break;
            };
            let (_, peer) = self.topo.ports(cur)[port as usize];
            if self.topo.is_switch(peer) {
                path.push(peer);
            }
            cur = peer;
            if path.len() > 32 {
                break; // defensive: malformed routing
            }
        }

        // Presence must be read at *exact* (level-1) epoch resolution:
        // coarser levels aggregate pre-onset epochs and would report the
        // destination everywhere (a by-design false positive that is fine
        // for search-radius queries but fatal here). This also means the
        // window should be recent — real-time diagnosis over live level-1
        // slots, as §4.1.1 prescribes.
        let mut per_switch = Vec::with_capacity(path.len());
        for &sw in &path {
            let present = match self.switches.get(&sw) {
                Some(handle) => {
                    let comp = handle.borrow();
                    range
                        .iter()
                        .any(|e| comp.pointers.contains_within(dst.addr(), e, 1) == Some(true))
                }
                None => false,
            };
            per_switch.push((sw, present));
        }

        let last_seen = per_switch
            .iter()
            .take_while(|&&(_, p)| p)
            .last()
            .map(|&(s, _)| s);
        let first_missing = per_switch
            .iter()
            .find(|&&(_, p)| !p)
            .map(|&(s, _)| s);
        let suspected_segment = match (last_seen, first_missing) {
            (Some(a), Some(b)) => Some((a, b)),
            (None, Some(b)) => Some((src, b)),
            _ => None,
        };
        let retrieval = self.cost.pointer_retrieval(per_switch.len());

        DropDiagnosis {
            flow,
            path,
            per_switch,
            suspected_segment,
            pointer_retrieval: retrieval,
        }
    }

    /// All hosts known to the analyzer (used by baselines and tests).
    pub fn all_hosts(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.hosts.keys().copied().collect();
        v.sort();
        v
    }

    /// Access to a host handle (tests, baselines).
    pub fn host(&self, h: NodeId) -> Option<&HostHandle> {
        self.hosts.get(&h)
    }

    /// Access to a switch handle (tests).
    pub fn switch(&self, s: NodeId) -> Option<&SwitchHandle> {
        self.switches.get(&s)
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        self.cost_ref()
    }

    fn cost_ref(&self) -> &CostModel {
        &self.cost
    }

    /// The topology the analyzer reasons over.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{HostComponent, TriggerConfig, TriggerEvent};
    use crate::pointer::PointerConfig;
    use crate::switch::SwitchComponent;
    use netsim::packet::Protocol;
    use netsim::topology::GBPS;
    use std::cell::RefCell;
    use std::rc::Rc;
    use telemetry::{DecodedTelemetry, EmbedMode, HopTelemetry, PathCodec, TelemetryDecoder};

    /// Hand-wires an analyzer over the 3-switch chain with no simulation:
    /// switch pointers and host stores are populated directly.
    struct Fixture {
        analyzer: Analyzer,
        topo: Topology,
    }

    fn fixture() -> Fixture {
        let topo = Topology::chain(3, 2, GBPS);
        let addrs: Vec<u64> = topo.hosts().iter().map(|h| h.addr()).collect();
        let mphf = Arc::new(Mphf::build(&addrs).unwrap());
        let params = EpochParams {
            alpha: netsim::time::SimTime::from_ms(1),
            epsilon: netsim::time::SimTime::from_ms(1),
            delta: netsim::time::SimTime::from_ms(2),
        };
        let codec = Rc::new(PathCodec::new(topo.clone()));
        let decoder = Rc::new(TelemetryDecoder::new(
            PathCodec::new(topo.clone()),
            params,
            EmbedMode::Commodity,
        ));
        let mut switches = HashMap::new();
        for &sw in topo.switches() {
            let comp = SwitchComponent::new(
                sw,
                params,
                EmbedMode::Commodity,
                PointerConfig {
                    n_hosts: addrs.len(),
                    alpha: 10,
                    k: 3,
                },
                mphf.clone(),
                codec.clone(),
            );
            switches.insert(sw, Rc::new(RefCell::new(comp)));
        }
        let mut hosts = HashMap::new();
        for &h in topo.hosts() {
            hosts.insert(
                h,
                Rc::new(RefCell::new(HostComponent::new(
                    h,
                    decoder.clone(),
                    TriggerConfig::default(),
                ))),
            );
        }
        let directory = HostDirectory::new(mphf, topo.hosts());
        let analyzer = Analyzer::new(
            topo.clone(),
            params,
            switches,
            hosts,
            directory,
            CostModel::paper_calibrated(),
        );
        Fixture { analyzer, topo }
    }

    fn node(topo: &Topology, name: &str) -> NodeId {
        topo.node_by_name(name).unwrap()
    }

    fn telem(hops: &[(NodeId, u64)]) -> DecodedTelemetry {
        DecodedTelemetry {
            hops: hops
                .iter()
                .map(|&(sw, e)| HopTelemetry {
                    switch: sw,
                    epochs: EpochRange::exact(e),
                })
                .collect(),
            tag_idx: 0,
        }
    }

    #[test]
    fn hosts_for_decodes_pointer_bits() {
        let fx = fixture();
        let topo = &fx.topo;
        let (s1, d, f) = (node(topo, "S1"), node(topo, "D"), node(topo, "F"));
        {
            let h = fx.analyzer.switch(s1).unwrap();
            let mut comp = h.borrow_mut();
            comp.pointers.update(d.addr(), 5);
            comp.pointers.update(f.addr(), 6);
        }
        assert_eq!(
            fx.analyzer.hosts_for(s1, EpochRange { lo: 5, hi: 5 }),
            vec![d]
        );
        let both = fx.analyzer.hosts_for(s1, EpochRange { lo: 5, hi: 6 });
        assert_eq!(both.len(), 2);
    }

    #[test]
    fn search_radius_reduction_keeps_same_egress_only() {
        let fx = fixture();
        let topo = &fx.topo;
        let (s2, a, b, e, f) = (
            node(topo, "S2"),
            node(topo, "A"),
            node(topo, "B"),
            node(topo, "E"),
            node(topo, "F"),
        );
        // Victim heads to F (egress S2->S3). E shares that egress; A and B
        // are behind S2->S1, the opposite direction.
        let kept = fx.analyzer.reduce_search_radius(
            s2,
            f,
            FlowId(0),
            vec![a, b, e],
        );
        assert_eq!(kept, vec![e]);
    }

    #[test]
    fn epoch_window_includes_slack() {
        let fx = fixture();
        let trig = TriggerEvent {
            at: netsim::time::SimTime::from_ms(21),
            flow: FlowId(0),
            prev_bytes: 100_000,
            cur_bytes: 0,
        };
        let w = fx
            .analyzer
            .epoch_window(&trig, netsim::time::SimTime::from_ms(1));
        // Trigger at epoch 21, window covers [19-slack .. 21+slack], slack=1.
        assert!(w.contains(19) && w.contains(21) && w.contains(22));
        assert!(w.lo <= 18);
    }

    #[test]
    fn top_k_merges_across_hosts() {
        let fx = fixture();
        let topo = &fx.topo;
        let (s1, d, f, a, b) = (
            node(topo, "S1"),
            node(topo, "D"),
            node(topo, "F"),
            node(topo, "A"),
            node(topo, "B"),
        );
        // Pointer names D and F for epoch 3.
        {
            let mut comp = fx.analyzer.switch(s1).unwrap().borrow_mut();
            comp.pointers.update(d.addr(), 3);
            comp.pointers.update(f.addr(), 3);
        }
        // D holds a 9 KB flow record via S1; F a 5 KB one.
        fx.analyzer.host(d).unwrap().borrow_mut().store.ingest(
            FlowId(1),
            a,
            d,
            Protocol::Udp,
            Priority::LOW,
            9_000,
            &telem(&[(s1, 3)]),
            None,
        );
        fx.analyzer.host(f).unwrap().borrow_mut().store.ingest(
            FlowId(2),
            b,
            f,
            Protocol::Udp,
            Priority::LOW,
            5_000,
            &telem(&[(s1, 3)]),
            None,
        );
        let r = fx.analyzer.top_k(s1, 10, EpochRange { lo: 3, hi: 3 });
        assert_eq!(r.hosts_contacted, 2);
        assert_eq!(r.flows, vec![(FlowId(1), 9_000), (FlowId(2), 5_000)]);
        assert!(r.total_latency() > r.wave.total());
    }

    #[test]
    fn directory_roundtrip_is_total_over_hosts() {
        let fx = fixture();
        let dir = fx.analyzer.directory();
        let mut bits = crate::bitset::BitSet::new(dir.mphf().len());
        for &h in fx.topo.hosts() {
            bits.set(dir.mphf().index(&h.addr()).unwrap());
        }
        let decoded = dir.hosts_in(&bits);
        assert_eq!(decoded.len(), fx.topo.hosts().len());
    }

    #[test]
    #[should_panic(expected = "no SwitchPointer component")]
    fn hosts_for_unknown_switch_panics() {
        let fx = fixture();
        // A host id is not a switch.
        let a = node(&fx.topo, "A");
        fx.analyzer.hosts_for(a, EpochRange::exact(0));
    }
}
