//! # switchpointer — Distributed Network Monitoring and Debugging
//!
//! A from-scratch Rust reproduction of **SwitchPointer** (Tammana, Agarwal
//! & Lee, NSDI 2018). SwitchPointer integrates end-host telemetry
//! collection with in-network visibility by turning switch memory into a
//! *directory service*: instead of storing telemetry, each switch stores
//! per-epoch **pointers** (bit sets over destination end-hosts) organised
//! in a hierarchical data structure, and embeds its identity + epoch into
//! packet headers. When an end-host triggers a spurious event, the analyzer
//! follows the pointers to exactly the hosts holding the relevant headers.
//!
//! ## Crate map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`pointer`] | §4.1.1-4.1.2 | hierarchical pointer structure, line-rate update, flush/recycling, memory & bandwidth accounting |
//! | [`bitset`] | §4.1.2 | the n-bit pointer sets |
//! | [`switch`] | §4.1 | the switch component (runs in the simulator's forwarding pipeline) |
//! | [`host`] | §4.2 | the end-host component: telemetry decoding, flow records, throughput trigger |
//! | [`hoststore`] | §4.2.2, §6 | the flow-record store, its filter/aggregate queries, and flow-id sharding |
//! | [`analyzer`] | §4.3, §5 | the analyzer and the four debugging applications |
//! | [`query`] | §4.3, §5 | the per-application query executors behind the `QueryRequest`/`QueryResponse` API, shared by the analyzer and the query plane |
//! | [`shard`] | §4.3 scale-out | the hash-partitioned directory: `DirectoryShard` slices, the `ShardedView` state router, the `ShardedAnalyzer` front-end, and the `ShardBackend`/`BackendRouter` abstraction routing over local *or* remote shard instances |
//! | [`retention`] | §4.2 "flushed to local storage" | the per-directory-shard GC pass: epoch-horizon + record-budget eviction of flow records, archived-pointer retirement, standing-query pins |
//! | [`cost`] | §5, §6.2 | calibrated RPC latency model (Fig. 7/8/12 shapes), batched-RPC and cache-hit terms |
//! | [`pipeline`] | §6.1 | the OVS-style forwarding pipeline of the Fig. 9 benchmark |
//! | [`testbed`] | — | one-call deployment over a simulated topology |
//!
//! Substrates live in sibling crates: `netsim` (the simulated datacenter),
//! `telemetry` (header embedding/decoding), `mphf` (minimal perfect
//! hashing), `pathdump` (the end-host-only baseline), `queryplane` (the
//! concurrent, sharded query service over this crate's executors, with
//! incrementally maintainable snapshots), `streamplane` (continuous
//! standing-query monitoring with result caching and an incident log),
//! and `wireplane` (the loopback RPC transport serving both planes to
//! remote clients over this crate's `BackendRouter`).
//!
//! ## Quickstart
//!
//! ```
//! use netsim::prelude::*;
//! use switchpointer::testbed::{Testbed, TestbedConfig};
//!
//! // Two hosts per switch on a 3-switch chain (the paper's Fig. 1 fixture),
//! // SwitchPointer deployed everywhere.
//! let topo = Topology::chain(3, 2, GBPS);
//! let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
//!
//! // A 2 ms UDP flow A -> F.
//! let (a, f) = (tb.node("A"), tb.node("F"));
//! let flow = tb.sim.add_udp_flow(UdpFlowSpec {
//!     src: a, dst: f, priority: Priority::LOW,
//!     start: SimTime::ZERO, duration: SimTime::from_ms(2),
//!     rate_bps: 100_000_000, payload_bytes: 1458,
//! });
//! tb.sim.run_until(SimTime::from_ms(5));
//!
//! // F's host component decoded the path from the packet tags...
//! let rec_path = tb.hosts[&f].borrow().store.record(flow).unwrap().path.clone();
//! assert_eq!(rec_path.len(), 3); // S1, S2, S3
//! // ...and S2's pointer names F as a destination in epoch 0.
//! let s2 = tb.node("S2");
//! assert!(tb.switches[&s2].borrow().pointers.contains(f.addr(), 0));
//! ```
//!
//! ## Concurrent querying
//!
//! For query *streams* — many tenants debugging the same incident window —
//! wrap the analyzer state in the `queryplane` crate's service front-end.
//! Responses stay bit-identical to the sequential analyzer's at any worker
//! count; repeated pointer retrievals hit an epoch-keyed LRU and
//! same-host fan-outs coalesce into batched RPCs:
//!
//! ```ignore
//! // (runs as a doctest in the `queryplane` crate, which depends on this one)
//! use queryplane::{QueryPlane, QueryPlaneConfig};
//! use switchpointer::query::QueryRequest;
//!
//! let analyzer = tb.analyzer();
//! let mut plane = QueryPlane::from_analyzer(&analyzer, QueryPlaneConfig::default());
//! let outcomes = plane.execute_batch(&[
//!     QueryRequest::TopK { switch: s2, k: 10, range: window },
//!     QueryRequest::Contention { victim, victim_dst, trigger_window },
//! ]);
//! println!("cache hit rate: {:.0}%", plane.stats().cache_hit_rate() * 100.0);
//! ```

pub mod analyzer;
pub mod bitset;
pub mod cost;
pub mod host;
pub mod hoststore;
pub mod pipeline;
pub mod pointer;
pub mod query;
pub mod retention;
pub mod shard;
pub mod switch;
pub mod testbed;

pub use analyzer::{Analyzer, ContentionDiagnosis, Culprit, HostDirectory, LiveView, Verdict};
pub use cost::{CostModel, LatencyBreakdown, QueryWaveCost};
pub use host::{
    AlertPayload, HostComponent, HostHandle, SwitchEpochs, SwitchPointerHostApp, TriggerConfig,
    TriggerEvent,
};
pub use hoststore::{FlowRecord, FlowStore};
pub use pointer::{PointerConfig, PointerConfigError, PointerHierarchy};
pub use query::{
    ExecutionTrace, PointerRound, QueryCtx, QueryExecutor, QueryRequest, QueryResponse, StateView,
};
pub use retention::{RetentionPolicy, SweepReport};
pub use shard::{
    host_shard_of, DirectoryShard, ShardFanout, ShardedAnalyzer, ShardedDirectory, ShardedView,
};
pub use switch::{SwitchComponent, SwitchHandle, SwitchPointerApp};
pub use testbed::{Testbed, TestbedConfig};
