//! The software forwarding pipeline of the Fig. 9 throughput experiment.
//!
//! The paper prototypes SwitchPointer inside Open vSwitch over DPDK and
//! measures forwarding throughput versus packet size with the pointer
//! update (k = 1 and k = 5) on the fast path. This module provides the
//! equivalent code path as a plain, benchmarkable object:
//!
//! * **baseline** — emulated OVS fast-path work: 5-tuple hash plus an
//!   exact-match-cache lookup/update;
//! * **SwitchPointer** — the same work plus one MPHF evaluation and k bit
//!   writes ([`PointerHierarchy::update_unchecked`]).
//!
//! Absolute packets-per-second on a modern core differ from the paper's
//! 3.1 GHz Xeon + DPDK figure (~7 Mpps), so the experiment harness reports
//! both raw measurements and a variant scaled to the paper's baseline rate
//! (relative overhead is the reproducible quantity; see EXPERIMENTS.md).

use std::sync::Arc;

use mphf::{mix64, Mphf};

use crate::pointer::{PointerConfig, PointerHierarchy};

/// A packet synthesized for pipeline benchmarking.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticPacket {
    /// Destination address (MPHF key).
    pub dst_addr: u64,
    /// Pre-folded 5-tuple (flow identity for the EMC).
    pub five_tuple: u64,
    /// Wire size in bytes (used for Gbps conversion, not processing cost).
    pub size_bytes: u32,
}

/// Number of exact-match-cache entries (OVS default: 8192).
const EMC_ENTRIES: usize = 8192;

#[derive(Debug, Clone, Copy)]
struct EmcEntry {
    key: u64,
    port: u16,
}

/// Extra dependent-work rounds emulating the parts of the OVS-DPDK fast
/// path this model does not implement (full miniflow extraction, megaflow
/// fallback, batching, action execution). Default calibrated so the
/// baseline costs on the order of the paper's measured ~143 ns/packet
/// (7 Mpps on a 3.1 GHz core); see EXPERIMENTS.md for the calibration
/// note. Set to 0 to measure the bare emulated path.
pub const DEFAULT_BASELINE_ROUNDS: u32 = 25;

/// A single-core software forwarding pipeline.
pub struct ForwardingPipeline {
    emc: Vec<EmcEntry>,
    pointers: Option<PointerHierarchy>,
    epoch: u64,
    baseline_rounds: u32,
    /// Packets processed.
    pub processed: u64,
    /// EMC misses (diagnostics).
    pub emc_misses: u64,
}

impl ForwardingPipeline {
    /// Vanilla-OVS baseline: no pointer maintenance.
    pub fn baseline() -> Self {
        ForwardingPipeline {
            emc: vec![EmcEntry { key: 0, port: 0 }; EMC_ENTRIES],
            pointers: None,
            epoch: 0,
            baseline_rounds: DEFAULT_BASELINE_ROUNDS,
            processed: 0,
            emc_misses: 0,
        }
    }

    /// SwitchPointer pipeline with a k-level pointer hierarchy.
    pub fn with_pointers(cfg: PointerConfig, mphf: Arc<Mphf>) -> Self {
        ForwardingPipeline {
            emc: vec![EmcEntry { key: 0, port: 0 }; EMC_ENTRIES],
            pointers: Some(PointerHierarchy::new(cfg, mphf)),
            epoch: 0,
            baseline_rounds: DEFAULT_BASELINE_ROUNDS,
            processed: 0,
            emc_misses: 0,
        }
    }

    /// Overrides the baseline-work calibration (0 = bare emulated path).
    pub fn with_baseline_rounds(mut self, rounds: u32) -> Self {
        self.baseline_rounds = rounds;
        self
    }

    /// Advances the epoch (the control-plane agent's register update).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Processes one packet; returns the chosen egress port.
    ///
    /// The baseline stage emulates the OVS-DPDK fast path: miniflow
    /// extraction (a chain of dependent hashes over the header fields — the
    /// real code walks and folds each protocol layer), the RSS/EMC hash,
    /// an exact-match-cache probe, and action application. It is a synthetic
    /// stand-in, but it puts a realistic amount of dependent work ahead of
    /// the pointer update so the *relative* overhead is meaningful.
    #[inline]
    pub fn process(&mut self, pkt: &SyntheticPacket) -> u16 {
        self.processed += 1;
        // Miniflow extraction: dependent folds over the parsed fields.
        let mut h = mix64(pkt.five_tuple);
        h = mix64(h ^ pkt.dst_addr);
        h = mix64(h ^ pkt.size_bytes as u64);
        h = mix64(h.rotate_left(32) ^ 0x6f4a_91ee);
        h = mix64(h ^ (pkt.five_tuple >> 7));
        // Calibrated stand-in for the rest of the OVS fast path (dependent
        // chain, so it cannot be vectorized away).
        for _ in 0..self.baseline_rounds {
            h = mix64(h);
        }
        // EMC probe.
        let idx = (h as usize) & (EMC_ENTRIES - 1);
        let entry = &mut self.emc[idx];
        if entry.key != pkt.five_tuple {
            self.emc_misses += 1;
            entry.key = pkt.five_tuple;
            entry.port = (h >> 48) as u16 & 0x3f;
        }
        // Action application (header rewrite checksum fold).
        let port = entry.port ^ ((mix64(h ^ entry.port as u64) >> 63) as u16);
        // SwitchPointer addition: one hash, k bit writes.
        if let Some(p) = self.pointers.as_mut() {
            p.update_unchecked(pkt.dst_addr, self.epoch);
        }
        port
    }

    /// The pointer hierarchy, if this pipeline maintains one.
    pub fn pointers(&self) -> Option<&PointerHierarchy> {
        self.pointers.as_ref()
    }
}

/// Generates the paper's Fig. 9 workload: `n` packets round-robining over
/// `n_dsts` unique destination IPs ("we generate 100K packets, each of
/// which has a unique destination IP ... we play those packets repeatedly").
pub fn unique_dst_workload(n: usize, n_dsts: usize, size_bytes: u32) -> Vec<SyntheticPacket> {
    (0..n)
        .map(|i| {
            let d = (i % n_dsts) as u64;
            SyntheticPacket {
                dst_addr: 0x0a00_0000 + d,
                five_tuple: mix64(d ^ 0x5_1234),
                size_bytes,
            }
        })
        .collect()
}

/// The destination addresses `unique_dst_workload` draws from (for building
/// the matching MPHF).
pub fn workload_addrs(n_dsts: usize) -> Vec<u64> {
    (0..n_dsts as u64).map(|d| 0x0a00_0000 + d).collect()
}

/// Converts a packet rate into achieved Gbps for a packet size, capped at
/// line rate. `wire_bytes` should include preamble + IFG for honesty.
pub fn achievable_gbps(pps: f64, wire_bytes: f64, line_rate_gbps: f64) -> f64 {
    (pps * wire_bytes * 8.0 / 1e9).min(line_rate_gbps)
}

/// Scales a measured (baseline_ns, variant_ns) pair onto the paper's
/// reported baseline packet rate, preserving relative overhead.
pub fn paper_scaled_pps(baseline_ns: f64, variant_ns: f64, paper_baseline_pps: f64) -> f64 {
    paper_baseline_pps * (baseline_ns / variant_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pointer_pipeline(k: usize) -> ForwardingPipeline {
        let addrs = workload_addrs(1024);
        let mphf = Arc::new(Mphf::build(&addrs).unwrap());
        ForwardingPipeline::with_pointers(
            PointerConfig {
                n_hosts: 1024,
                alpha: 10,
                k,
            },
            mphf,
        )
    }

    #[test]
    fn baseline_forwards_and_counts() {
        let mut p = ForwardingPipeline::baseline();
        let wl = unique_dst_workload(10_000, 100, 256);
        for pkt in &wl {
            p.process(pkt);
        }
        assert_eq!(p.processed, 10_000);
        // 100 flows mostly fit the EMC; a colliding pair ping-pongs its
        // bucket (just like real OVS), so allow a small miss rate.
        assert!(p.emc_misses < 1_000, "misses {}", p.emc_misses);
    }

    #[test]
    fn pointer_pipeline_records_destinations() {
        let mut p = pointer_pipeline(3);
        p.set_epoch(5);
        let wl = unique_dst_workload(2_048, 1024, 256);
        for pkt in &wl {
            p.process(pkt);
        }
        let hier = p.pointers().unwrap();
        assert_eq!(hier.updates, 2_048);
        // Every destination bit is set for epoch 5.
        for addr in workload_addrs(1024) {
            assert!(hier.contains(addr, 5), "missing {addr:#x}");
        }
    }

    #[test]
    fn egress_port_is_deterministic_per_flow() {
        let mut p = ForwardingPipeline::baseline();
        let pkt = SyntheticPacket {
            dst_addr: 0x0a00_0001,
            five_tuple: 42,
            size_bytes: 64,
        };
        let a = p.process(&pkt);
        let b = p.process(&pkt);
        assert_eq!(a, b);
    }

    #[test]
    fn gbps_conversion_caps_at_line_rate() {
        // 7 Mpps * 276 B = 15.5 Gbps, capped at 10.
        assert_eq!(achievable_gbps(7e6, 276.0, 10.0), 10.0);
        // 7 Mpps * 84 B (64B + overhead) = 4.7 Gbps, below cap.
        let g = achievable_gbps(7e6, 84.0, 10.0);
        assert!((g - 4.704).abs() < 1e-9);
    }

    #[test]
    fn paper_scaling_preserves_relative_overhead() {
        // Variant 25% slower than baseline => 7 Mpps -> 5.6 Mpps.
        let pps = paper_scaled_pps(100.0, 125.0, 7e6);
        assert!((pps - 5.6e6).abs() < 1.0);
    }

    #[test]
    fn k5_does_same_hash_count_as_k1() {
        // Structural check of the paper's core claim: updates are one hash
        // regardless of k — both pipelines make the same number of MPHF
        // evaluations (== packets), only bit writes differ.
        let mut p1 = pointer_pipeline(1);
        let mut p5 = pointer_pipeline(5);
        let wl = unique_dst_workload(1_000, 1024, 64);
        for pkt in &wl {
            p1.process(pkt);
            p5.process(pkt);
        }
        assert_eq!(p1.pointers().unwrap().updates, 1_000);
        assert_eq!(p5.pointers().unwrap().updates, 1_000);
    }
}
