//! Reusable per-application query executors behind a uniform
//! [`QueryRequest`] / [`QueryResponse`] API.
//!
//! The §5 debugging applications were originally methods on [`Analyzer`];
//! this module is the same logic hoisted over an abstract [`StateView`] so
//! two front-ends can share it bit-for-bit:
//!
//! * the sequential [`Analyzer`](crate::Analyzer), reading the live
//!   `Rc<RefCell<…>>` component handles wired into the simulator; and
//! * the concurrent `queryplane` crate, reading an immutable, thread-safe
//!   snapshot sharded by flow id.
//!
//! Every executor run also produces an [`ExecutionTrace`] — which pointer
//! sets were pulled (and what the sequential cost model charged for the
//! round) and which hosts each query wave contacted. The query plane's
//! batching and pointer-cache accounting replays these traces; the
//! *answers* never depend on them, which is what makes "same seed + same
//! queries ⇒ same verdicts, any worker count" hold by construction.

use std::collections::{BTreeMap, BTreeSet};

use netsim::packet::{FlowId, NodeId};
use netsim::routing::RouteTable;
use netsim::time::SimTime;
use netsim::topology::Topology;
use telemetry::{EpochParams, EpochRange};

use crate::analyzer::{
    CascadeDiagnosis, CascadeStage, ContentionDiagnosis, Culprit, DropDiagnosis, HostDirectory,
    LoadImbalanceDiagnosis, RedLightsDiagnosis, TopKResult, Verdict,
};
use crate::bitset::BitSet;
use crate::cost::{CostModel, LatencyBreakdown, QueryWaveCost};
use crate::host::TriggerEvent;
use crate::hoststore::FlowRecord;

/// One host's slice of a batched *filter* wave reply: its store size
/// (`None` for unknown hosts) and the records matching the wave's
/// `(switch, range)` key.
pub type FilterWaveReply = Vec<(Option<usize>, Vec<FlowRecord>)>;
/// One host's slice of a batched *top-k* wave reply.
pub type TopKWaveReply = Vec<(Option<usize>, Vec<(FlowId, u64)>)>;
/// One host's slice of a batched *link-sizes* wave reply.
pub type SizesWaveReply = Vec<(Option<usize>, Vec<(u16, u64)>)>;

/// Read-only access to deployment state (switch pointers + host stores),
/// returning owned data so implementations may sit over `Rc<RefCell<…>>`
/// handles or over immutable cross-thread snapshots alike.
pub trait StateView {
    /// Pointer-bit union for `range` at `switch`; `None` if the switch has
    /// no SwitchPointer component.
    fn pointer_union(&self, switch: NodeId, range: EpochRange) -> Option<BitSet>;

    /// Exact-resolution presence probe (max span 1 epoch) at `switch`;
    /// outer `None` if the switch has no component.
    fn pointer_contains_exact(&self, switch: NodeId, addr: u64, epoch: u64)
        -> Option<Option<bool>>;

    /// Number of flow records held by `host`; `None` for unknown hosts.
    fn store_len(&self, host: NodeId) -> Option<usize>;

    /// `host`'s record for `flow`, if any.
    fn record(&self, host: NodeId, flow: FlowId) -> Option<FlowRecord>;

    /// *Filter query* at `host`: records that traversed `switch` during
    /// `range` (deterministic order: ascending flow id).
    fn flows_matching(&self, host: NodeId, switch: NodeId, range: EpochRange) -> Vec<FlowRecord>;

    /// *Aggregate query* at `host`: top-k flows through `switch` by bytes.
    fn top_k_through(&self, host: NodeId, switch: NodeId, k: usize) -> Vec<(FlowId, u64)>;

    /// *Aggregate query* at `host`: (link VID, bytes) pairs through `switch`.
    fn sizes_by_link(&self, host: NodeId, switch: NodeId) -> Vec<(u16, u64)>;

    /// First trigger `host` raised for `flow`.
    fn first_trigger_for(&self, host: NodeId, flow: FlowId) -> Option<TriggerEvent>;

    // ------------------------------------------------------------------
    // Batched wave forms. One call covers a whole query wave, so a view
    // backed by remote shard servers (`wireplane`) can coalesce the
    // fan-out into one wire round-trip per shard. The defaults loop the
    // per-host reads above, so every in-process view answers
    // bit-identically whether or not it overrides them.
    // ------------------------------------------------------------------

    /// Store sizes for a set of hosts (`None` per unknown host).
    fn store_len_wave(&self, hosts: &[NodeId]) -> Vec<Option<usize>> {
        hosts.iter().map(|&h| self.store_len(h)).collect()
    }

    /// *Filter* wave: per host, its store size and the records matching
    /// `(switch, range)`. Unknown hosts report `(None, [])` and their
    /// stores are never scanned — exactly the sequential per-host loop.
    fn filter_wave(&self, hosts: &[NodeId], switch: NodeId, range: EpochRange) -> FilterWaveReply {
        hosts
            .iter()
            .map(|&h| match self.store_len(h) {
                None => (None, Vec::new()),
                Some(len) => (Some(len), self.flows_matching(h, switch, range)),
            })
            .collect()
    }

    /// *Aggregate* wave: per host, its store size and top-k flows through
    /// `switch`.
    fn top_k_wave(&self, hosts: &[NodeId], switch: NodeId, k: usize) -> TopKWaveReply {
        hosts
            .iter()
            .map(|&h| match self.store_len(h) {
                None => (None, Vec::new()),
                Some(len) => (Some(len), self.top_k_through(h, switch, k)),
            })
            .collect()
    }

    /// *Aggregate* wave: per host, its store size and (link VID, bytes)
    /// pairs through `switch`.
    fn sizes_wave(&self, hosts: &[NodeId], switch: NodeId) -> SizesWaveReply {
        hosts
            .iter()
            .map(|&h| match self.store_len(h) {
                None => (None, Vec::new()),
                Some(len) => (Some(len), self.sizes_by_link(h, switch)),
            })
            .collect()
    }
}

/// One debugging query, ready to schedule. `Hash`/`Eq` make the request
/// itself the key of whole-result caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryRequest {
    /// §5.1 — who contended with `victim` at its bottleneck switch?
    Contention {
        victim: FlowId,
        victim_dst: NodeId,
        trigger_window: SimTime,
    },
    /// §5.2 — accumulated contention across every switch of the path.
    RedLights {
        victim: FlowId,
        victim_dst: NodeId,
        trigger_window: SimTime,
    },
    /// §5.3 — recursive delay chain, up to `max_depth` stages.
    Cascade {
        victim: FlowId,
        victim_dst: NodeId,
        trigger_window: SimTime,
        max_depth: usize,
    },
    /// §5.4 — flow-size distributions per egress link at `switch`.
    LoadImbalance { switch: NodeId, range: EpochRange },
    /// §6.2 — top-k flows through `switch` over `range`.
    TopK {
        switch: NodeId,
        k: usize,
        range: EpochRange,
    },
    /// §2.4-class — where did `flow`'s packets stop flowing?
    SilentDrop {
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        range: EpochRange,
    },
}

/// The stable query-class names, in [`QueryRequest::class_index`] order.
/// Metric names (`queryplane.exec_ns.<class>`), span labels and the
/// bench JSON's per-class percentile section all key off these.
pub const QUERY_CLASS_NAMES: [&str; 6] = [
    "contention",
    "red_lights",
    "cascade",
    "load_imbalance",
    "top_k",
    "silent_drop",
];

impl QueryRequest {
    /// This request's position in [`QUERY_CLASS_NAMES`].
    pub fn class_index(&self) -> usize {
        match self {
            QueryRequest::Contention { .. } => 0,
            QueryRequest::RedLights { .. } => 1,
            QueryRequest::Cascade { .. } => 2,
            QueryRequest::LoadImbalance { .. } => 3,
            QueryRequest::TopK { .. } => 4,
            QueryRequest::SilentDrop { .. } => 5,
        }
    }

    /// The stable class name observability keys off (one per variant).
    pub fn class_name(&self) -> &'static str {
        QUERY_CLASS_NAMES[self.class_index()]
    }
}

/// The matching result for each [`QueryRequest`] variant.
#[derive(Debug, Clone)]
pub enum QueryResponse {
    Contention(ContentionDiagnosis),
    RedLights(RedLightsDiagnosis),
    Cascade(CascadeDiagnosis),
    LoadImbalance(LoadImbalanceDiagnosis),
    TopK(TopKResult),
    SilentDrop(DropDiagnosis),
}

impl QueryResponse {
    /// This response's position in [`QUERY_CLASS_NAMES`] (matches the
    /// originating request's [`QueryRequest::class_index`]).
    pub fn class_index(&self) -> usize {
        match self {
            QueryResponse::Contention(_) => 0,
            QueryResponse::RedLights(_) => 1,
            QueryResponse::Cascade(_) => 2,
            QueryResponse::LoadImbalance(_) => 3,
            QueryResponse::TopK(_) => 4,
            QueryResponse::SilentDrop(_) => 5,
        }
    }

    /// The stable class name observability keys off.
    pub fn class_name(&self) -> &'static str {
        QUERY_CLASS_NAMES[self.class_index()]
    }

    /// The modelled end-to-end latency of this query when executed alone
    /// (no batching, no pointer cache) — the sequential baseline.
    pub fn sequential_latency(&self) -> SimTime {
        match self {
            QueryResponse::Contention(d) => d.breakdown.total(),
            QueryResponse::RedLights(d) => d.breakdown.total(),
            QueryResponse::Cascade(d) => d.breakdown.total(),
            QueryResponse::LoadImbalance(d) => d.breakdown.total(),
            QueryResponse::TopK(r) => r.total_latency(),
            QueryResponse::SilentDrop(d) => d.pointer_retrieval,
        }
    }

    /// How many hosts the query contacted.
    pub fn hosts_contacted(&self) -> usize {
        match self {
            QueryResponse::Contention(d) => d.hosts_contacted,
            QueryResponse::RedLights(d) => d.hosts_contacted,
            QueryResponse::Cascade(d) => d.hosts_contacted,
            QueryResponse::LoadImbalance(d) => d.hosts_contacted,
            QueryResponse::TopK(r) => r.hosts_contacted,
            QueryResponse::SilentDrop(_) => 0,
        }
    }
}

/// One pointer-retrieval round: the (switch, epoch range) keys consulted
/// and what the sequential cost model charged for the round.
#[derive(Debug, Clone)]
pub struct PointerRound {
    pub keys: Vec<(NodeId, EpochRange)>,
    pub modelled: SimTime,
}

/// The exact state a query's answer depended on: every switch whose
/// pointer sets were read and every host whose store or trigger log was
/// consulted. A result cached for the query stays valid precisely until a
/// snapshot delta touches one of these — the stream plane's invalidation
/// rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceDeps {
    pub switches: BTreeSet<NodeId>,
    pub hosts: BTreeSet<NodeId>,
}

impl TraceDeps {
    /// Does any of `switches`/`hosts` intersect this dependency set?
    pub fn intersects(&self, switches: &[NodeId], hosts: &[NodeId]) -> bool {
        switches.iter().any(|s| self.switches.contains(s))
            || hosts.iter().any(|h| self.hosts.contains(h))
    }
}

/// What a query touched while executing: replayed by the query plane for
/// pointer-cache and batched-fan-out accounting.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    /// Pointer-retrieval rounds, in execution order.
    pub pointer_rounds: Vec<PointerRound>,
    /// Host query waves: each wave lists (host, records scanned there).
    pub waves: Vec<Vec<(NodeId, usize)>>,
    /// Every state read the answer depended on (result-cache invalidation).
    pub deps: TraceDeps,
}

impl ExecutionTrace {
    fn push_round(&mut self, keys: Vec<(NodeId, EpochRange)>, modelled: SimTime) {
        for &(sw, _) in &keys {
            self.deps.switches.insert(sw);
        }
        self.pointer_rounds.push(PointerRound { keys, modelled });
    }

    fn push_wave(&mut self, wave: Vec<(NodeId, usize)>) {
        for &(h, _) in &wave {
            self.deps.hosts.insert(h);
        }
        self.waves.push(wave);
    }

    fn dep_host(&mut self, host: NodeId) {
        self.deps.hosts.insert(host);
    }

    /// Total sequential charge for all pointer rounds.
    pub fn pointer_total(&self) -> SimTime {
        self.pointer_rounds
            .iter()
            .fold(SimTime::ZERO, |acc, r| acc + r.modelled)
    }
}

/// Shared immutable context of an executor: what the analyzer knows about
/// the deployment (topology, routes, epoch timing, directory, costs).
#[derive(Clone, Copy)]
pub struct QueryCtx<'a> {
    pub topo: &'a Topology,
    pub routes: &'a RouteTable,
    pub params: EpochParams,
    pub directory: &'a HostDirectory,
    pub cost: &'a CostModel,
}

/// The per-application query algorithms of §5, runnable over any
/// [`StateView`].
pub struct QueryExecutor<'a, V: StateView> {
    ctx: QueryCtx<'a>,
    view: &'a V,
    trace: ExecutionTrace,
}

impl<'a, V: StateView> QueryExecutor<'a, V> {
    pub fn new(ctx: QueryCtx<'a>, view: &'a V) -> Self {
        QueryExecutor {
            ctx,
            view,
            trace: ExecutionTrace::default(),
        }
    }

    /// Runs `req` and returns just the response.
    pub fn execute(self, req: &QueryRequest) -> QueryResponse {
        self.execute_traced(req).0
    }

    /// Runs `req` and additionally returns the execution trace.
    pub fn execute_traced(mut self, req: &QueryRequest) -> (QueryResponse, ExecutionTrace) {
        let resp = match *req {
            QueryRequest::Contention {
                victim,
                victim_dst,
                trigger_window,
            } => QueryResponse::Contention(self.diagnose_contention(
                victim,
                victim_dst,
                trigger_window,
            )),
            QueryRequest::RedLights {
                victim,
                victim_dst,
                trigger_window,
            } => QueryResponse::RedLights(self.diagnose_red_lights(
                victim,
                victim_dst,
                trigger_window,
            )),
            QueryRequest::Cascade {
                victim,
                victim_dst,
                trigger_window,
                max_depth,
            } => QueryResponse::Cascade(self.diagnose_cascade(
                victim,
                victim_dst,
                trigger_window,
                max_depth,
            )),
            QueryRequest::LoadImbalance { switch, range } => {
                QueryResponse::LoadImbalance(self.diagnose_load_imbalance(switch, range))
            }
            QueryRequest::TopK { switch, k, range } => {
                QueryResponse::TopK(self.top_k(switch, k, range))
            }
            QueryRequest::SilentDrop {
                flow,
                src,
                dst,
                range,
            } => QueryResponse::SilentDrop(self.localize_silent_drop(flow, src, dst, range)),
        };
        (resp, self.trace)
    }

    // ------------------------------------------------------------------
    // Shared machinery (the pre-refactor Analyzer internals)
    // ------------------------------------------------------------------

    /// Pulls the pointer union for `range` from `switch` and decodes it.
    pub fn hosts_for(&self, switch: NodeId, range: EpochRange) -> Vec<NodeId> {
        let bits = self
            .view
            .pointer_union(switch, range)
            .unwrap_or_else(|| panic!("no SwitchPointer component on {switch}"));
        self.ctx.directory.hosts_in(&bits)
    }

    /// Search-radius reduction (§4.3): keep only hosts whose traffic can
    /// have shared the victim's egress port at `switch`.
    pub fn reduce_search_radius(
        &self,
        switch: NodeId,
        victim_dst: NodeId,
        victim_flow: FlowId,
        hosts: Vec<NodeId>,
    ) -> Vec<NodeId> {
        let Some(victim_port) = self.ctx.routes.egress(switch, victim_dst, victim_flow) else {
            return hosts;
        };
        hosts
            .into_iter()
            .filter(|&h| self.ctx.routes.ports(switch, h).contains(&victim_port))
            .collect()
    }

    /// The epoch window to diagnose around a trigger, with ±⌈ε/α⌉ slack
    /// for clock asynchrony.
    pub fn epoch_window(&self, trigger: &TriggerEvent, trigger_window: SimTime) -> EpochRange {
        let p = self.ctx.params;
        let slack = p.epsilon.as_ns().div_ceil(p.alpha.as_ns());
        let hi = p.epoch_of(trigger.at) + slack;
        let lo = p
            .epoch_of(trigger.at.saturating_sub(trigger_window * 2))
            .saturating_sub(slack);
        EpochRange { lo, hi }
    }

    /// Queries `hosts` for flows matching `(switch, range)`, excluding the
    /// victim flow. Returns culprits plus per-host record counts. One
    /// [`StateView::filter_wave`] call covers the whole wave, so a
    /// remote-backed view pays one round trip per shard, not per host.
    fn query_hosts(
        &self,
        hosts: &[NodeId],
        switch: NodeId,
        range: EpochRange,
        victim: FlowId,
    ) -> (Vec<Culprit>, Vec<usize>) {
        let mut culprits = Vec::new();
        let mut record_counts = Vec::with_capacity(hosts.len());
        for (&h, (len, matching)) in hosts
            .iter()
            .zip(self.view.filter_wave(hosts, switch, range))
        {
            let Some(len) = len else {
                record_counts.push(0);
                continue;
            };
            record_counts.push(len);
            for rec in matching {
                if rec.flow == victim {
                    continue;
                }
                let common: Vec<u64> = rec.epochs_at[&switch]
                    .range(range.lo..=range.hi)
                    .copied()
                    .collect();
                culprits.push(Culprit {
                    flow: rec.flow,
                    src: rec.src,
                    dst: rec.dst,
                    host: h,
                    priority: rec.priority,
                    bytes: rec.bytes,
                    common_epochs: common,
                });
            }
        }
        culprits.sort_by_key(|c| (std::cmp::Reverse(c.priority), std::cmp::Reverse(c.bytes)));
        (culprits, record_counts)
    }

    fn victim_trigger(&mut self, victim_dst: NodeId, victim: FlowId) -> TriggerEvent {
        self.trace.dep_host(victim_dst);
        self.view
            .first_trigger_for(victim_dst, victim)
            .expect("victim host raised no trigger for the flow")
    }

    fn victim_path(&mut self, victim_dst: NodeId, victim: FlowId) -> Vec<NodeId> {
        self.trace.dep_host(victim_dst);
        self.view
            .record(victim_dst, victim)
            .expect("victim host has no record for the flow")
            .path
    }

    // ------------------------------------------------------------------
    // §5.1 Too much traffic
    // ------------------------------------------------------------------

    pub fn diagnose_contention(
        &mut self,
        victim: FlowId,
        victim_dst: NodeId,
        trigger_window: SimTime,
    ) -> ContentionDiagnosis {
        let trigger = self.victim_trigger(victim_dst, victim);
        self.diagnose_contention_at(victim, victim_dst, trigger_window, &trigger)
    }

    pub fn diagnose_contention_at(
        &mut self,
        victim: FlowId,
        victim_dst: NodeId,
        trigger_window: SimTime,
        trigger: &TriggerEvent,
    ) -> ContentionDiagnosis {
        // One record fetch serves both the path walk and the later
        // priority comparison (StateView returns owned clones).
        self.trace.dep_host(victim_dst);
        let victim_rec = self
            .view
            .record(victim_dst, victim)
            .expect("victim host has no record for the flow");
        let path = victim_rec.path.clone();
        let victim_prio = victim_rec.priority;
        let range = self.epoch_window(trigger, trigger_window);

        // Pick the contended switch: walk the path and take the first
        // switch with a non-empty reduced host set beyond the victim's own
        // endpoints.
        let mut consulted: Vec<(NodeId, EpochRange)> = Vec::new();
        let mut chosen: Option<(NodeId, Vec<NodeId>)> = None;
        for &sw in &path {
            consulted.push((sw, range));
            let mut hosts = self.hosts_for(sw, range);
            hosts.retain(|&h| h != victim_dst);
            let reduced = self.reduce_search_radius(sw, victim_dst, victim, hosts);
            if !reduced.is_empty() {
                chosen = Some((sw, reduced));
                break;
            }
        }
        let (switch, hosts) = chosen.unwrap_or_else(|| (path[0], Vec::new()));
        self.trace
            .push_round(consulted, self.ctx.cost.pointer_retrieval(1));

        let (culprits, record_counts) = self.query_hosts(&hosts, switch, range, victim);
        let verdict = if culprits
            .iter()
            .any(|c| c.priority > victim_prio && !c.common_epochs.is_empty())
        {
            Verdict::PriorityContention
        } else if culprits.iter().any(|c| !c.common_epochs.is_empty()) {
            Verdict::Microburst
        } else {
            Verdict::NoCulprit
        };

        self.trace.push_wave(
            hosts
                .iter()
                .copied()
                .zip(record_counts.iter().copied())
                .collect(),
        );
        let wave = self.ctx.cost.query_wave(hosts.len(), &record_counts);
        ContentionDiagnosis {
            victim,
            switch,
            epochs: range,
            culprits,
            hosts_contacted: hosts.len(),
            verdict,
            breakdown: LatencyBreakdown {
                detection: trigger_window,
                alert: self.ctx.cost.alert_rtt,
                pointer_retrieval: self.ctx.cost.pointer_retrieval(1),
                diagnosis: wave.total(),
                diagnosis_detail: wave,
            },
        }
    }

    // ------------------------------------------------------------------
    // §5.2 Too many red lights
    // ------------------------------------------------------------------

    pub fn diagnose_red_lights(
        &mut self,
        victim: FlowId,
        victim_dst: NodeId,
        trigger_window: SimTime,
    ) -> RedLightsDiagnosis {
        let trigger = self.victim_trigger(victim_dst, victim);
        let path = self.victim_path(victim_dst, victim);
        let range = self.epoch_window(&trigger, trigger_window);

        // One retrieval round over all path switches.
        let mut union_hosts: BTreeSet<NodeId> = BTreeSet::new();
        let mut per_switch_hosts: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        for &sw in &path {
            let mut hosts = self.hosts_for(sw, range);
            hosts.retain(|&h| h != victim_dst);
            let reduced = self.reduce_search_radius(sw, victim_dst, victim, hosts);
            union_hosts.extend(reduced.iter().copied());
            per_switch_hosts.push((sw, reduced));
        }
        self.trace.push_round(
            path.iter().map(|&sw| (sw, range)).collect(),
            self.ctx.cost.pointer_retrieval(path.len()),
        );
        let all_hosts: Vec<NodeId> = union_hosts.into_iter().collect();

        // One query wave over the union of hosts; evaluate per switch.
        let mut per_switch = Vec::new();
        let mut implicated = Vec::new();
        let mut record_counts = vec![0usize; all_hosts.len()];
        for (i, len) in self.view.store_len_wave(&all_hosts).into_iter().enumerate() {
            if let Some(len) = len {
                record_counts[i] = len;
            }
        }
        for (sw, hosts) in &per_switch_hosts {
            let (culprits, _) = self.query_hosts(hosts, *sw, range, victim);
            if culprits.iter().any(|c| !c.common_epochs.is_empty()) {
                implicated.push(*sw);
            }
            per_switch.push((*sw, culprits));
        }

        self.trace.push_wave(
            all_hosts
                .iter()
                .copied()
                .zip(record_counts.iter().copied())
                .collect(),
        );
        let wave = self.ctx.cost.query_wave(all_hosts.len(), &record_counts);
        RedLightsDiagnosis {
            victim,
            per_switch,
            implicated,
            hosts_contacted: all_hosts.len(),
            breakdown: LatencyBreakdown {
                detection: trigger_window,
                alert: self.ctx.cost.alert_rtt,
                pointer_retrieval: self.ctx.cost.pointer_retrieval(path.len()),
                diagnosis: wave.total(),
                diagnosis_detail: wave,
            },
        }
    }

    // ------------------------------------------------------------------
    // §5.3 Traffic cascades
    // ------------------------------------------------------------------

    pub fn diagnose_cascade(
        &mut self,
        victim: FlowId,
        victim_dst: NodeId,
        trigger_window: SimTime,
        max_depth: usize,
    ) -> CascadeDiagnosis {
        let trigger = self.victim_trigger(victim_dst, victim);
        let mut range = self.epoch_window(&trigger, trigger_window);

        let mut stages = Vec::new();
        let mut hosts_contacted = 0usize;
        let mut retrieval = SimTime::ZERO;
        let mut diagnosis = SimTime::ZERO;
        let mut detail = QueryWaveCost::default();

        let mut cur_victim = victim;
        let mut cur_dst = victim_dst;

        for _ in 0..max_depth {
            self.trace.dep_host(cur_dst);
            let Some(rec) = self.view.record(cur_dst, cur_victim) else {
                break;
            };
            let path = rec.path.clone();
            let cur_prio = rec.priority;

            retrieval += self.ctx.cost.pointer_retrieval(path.len());
            self.trace.push_round(
                path.iter().map(|&sw| (sw, range)).collect(),
                self.ctx.cost.pointer_retrieval(path.len()),
            );

            // Find the strongest higher-priority culprit across the path.
            let mut best: Option<(NodeId, Culprit)> = None;
            let mut wave_hosts = 0usize;
            for &sw in &path {
                let mut hosts = self.hosts_for(sw, range);
                hosts.retain(|&h| h != cur_dst);
                let reduced = self.reduce_search_radius(sw, cur_dst, cur_victim, hosts);
                wave_hosts += reduced.len();
                let counts: Vec<usize> = self
                    .view
                    .store_len_wave(&reduced)
                    .into_iter()
                    .map(|len| len.unwrap_or(0))
                    .collect();
                self.trace.push_wave(
                    reduced
                        .iter()
                        .copied()
                        .zip(counts.iter().copied())
                        .collect(),
                );
                let wave = self.ctx.cost.query_wave(reduced.len(), &counts);
                diagnosis += wave.total();
                detail.connection_initiation += wave.connection_initiation;
                detail.request += wave.request;
                detail.query_execution += wave.query_execution;
                detail.response += wave.response;

                let (culprits, _) = self.query_hosts(&reduced, sw, range, cur_victim);
                for c in culprits {
                    let fresh = c.priority > cur_prio
                        && !c.common_epochs.is_empty()
                        && stages
                            .iter()
                            .all(|s: &CascadeStage| s.victim != c.flow && s.culprit.flow != c.flow);
                    let better = best
                        .as_ref()
                        .map(|(_, b)| (c.priority, c.bytes) > (b.priority, b.bytes))
                        .unwrap_or(true);
                    if fresh && better {
                        best = Some((sw, c));
                    }
                }
            }
            hosts_contacted += wave_hosts;

            match best {
                Some((sw, culprit)) => {
                    // Widen the window slightly for the next stage: the
                    // upstream cause precedes the symptom.
                    range = EpochRange {
                        lo: range.lo.saturating_sub(1),
                        hi: range.hi,
                    };
                    let next_victim = culprit.flow;
                    let next_dst = culprit.dst;
                    stages.push(CascadeStage {
                        victim: cur_victim,
                        switch: sw,
                        culprit,
                    });
                    cur_victim = next_victim;
                    cur_dst = next_dst;
                }
                None => break,
            }
        }

        CascadeDiagnosis {
            stages,
            hosts_contacted,
            breakdown: LatencyBreakdown {
                detection: trigger_window,
                alert: self.ctx.cost.alert_rtt,
                pointer_retrieval: retrieval,
                diagnosis,
                diagnosis_detail: detail,
            },
        }
    }

    // ------------------------------------------------------------------
    // §5.4 Load imbalance
    // ------------------------------------------------------------------

    pub fn diagnose_load_imbalance(
        &mut self,
        switch: NodeId,
        range: EpochRange,
    ) -> LoadImbalanceDiagnosis {
        let hosts = self.hosts_for(switch, range);
        self.trace
            .push_round(vec![(switch, range)], self.ctx.cost.pointer_retrieval(1));
        let mut per_link: BTreeMap<u16, Vec<u64>> = BTreeMap::new();
        let mut record_counts = Vec::with_capacity(hosts.len());
        for (len, sizes) in self.view.sizes_wave(&hosts, switch) {
            let Some(len) = len else {
                record_counts.push(0);
                continue;
            };
            record_counts.push(len);
            for (link, bytes) in sizes {
                per_link.entry(link).or_default().push(bytes);
            }
        }
        for sizes in per_link.values_mut() {
            sizes.sort_unstable();
        }

        // Clean separation between the two busiest links: every flow on one
        // side smaller than every flow on the other.
        let mut links: Vec<(&u16, &Vec<u64>)> = per_link.iter().collect();
        links.sort_by_key(|(_, v)| std::cmp::Reverse(v.len()));
        let separation_bytes = if links.len() >= 2 {
            let (a, b) = (links[0].1, links[1].1);
            let (max_a, min_a) = (*a.last().unwrap(), a[0]);
            let (max_b, min_b) = (*b.last().unwrap(), b[0]);
            if max_a < min_b {
                Some(min_b)
            } else if max_b < min_a {
                Some(min_a)
            } else {
                None
            }
        } else {
            None
        };

        self.trace.push_wave(
            hosts
                .iter()
                .copied()
                .zip(record_counts.iter().copied())
                .collect(),
        );
        let wave = self.ctx.cost.query_wave(hosts.len(), &record_counts);
        LoadImbalanceDiagnosis {
            per_link,
            separation_bytes,
            hosts_contacted: hosts.len(),
            breakdown: LatencyBreakdown {
                detection: SimTime::ZERO, // detected from interface counters
                alert: self.ctx.cost.alert_rtt,
                pointer_retrieval: self.ctx.cost.pointer_retrieval(1),
                diagnosis: wave.total(),
                diagnosis_detail: wave,
            },
        }
    }

    // ------------------------------------------------------------------
    // §6.2 Top-k query
    // ------------------------------------------------------------------

    pub fn top_k(&mut self, switch: NodeId, k: usize, range: EpochRange) -> TopKResult {
        let hosts = self.hosts_for(switch, range);
        self.trace
            .push_round(vec![(switch, range)], self.ctx.cost.pointer_retrieval(1));
        let mut merged: Vec<(FlowId, u64)> = Vec::new();
        let mut record_counts = Vec::with_capacity(hosts.len());
        for (len, flows) in self.view.top_k_wave(&hosts, switch, k) {
            let Some(len) = len else {
                record_counts.push(0);
                continue;
            };
            record_counts.push(len);
            merged.extend(flows);
        }
        merged.sort_by_key(|&(f, b)| (std::cmp::Reverse(b), f));
        merged.truncate(k);
        self.trace.push_wave(
            hosts
                .iter()
                .copied()
                .zip(record_counts.iter().copied())
                .collect(),
        );
        TopKResult {
            flows: merged,
            hosts_contacted: hosts.len(),
            pointer_retrieval: self.ctx.cost.pointer_retrieval(1),
            wave: self.ctx.cost.query_wave(hosts.len(), &record_counts),
        }
    }

    // ------------------------------------------------------------------
    // §2.4-class application: silent drop localization
    // ------------------------------------------------------------------

    pub fn localize_silent_drop(
        &mut self,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        range: EpochRange,
    ) -> DropDiagnosis {
        // Reconstruct the forwarding path by walking the route tables with
        // the flow's ECMP identity.
        let mut path = Vec::new();
        let mut cur = src;
        while cur != dst {
            let Some(port) = self.ctx.routes.egress(cur, dst, flow) else {
                break;
            };
            let (_, peer) = self.ctx.topo.ports(cur)[port as usize];
            if self.ctx.topo.is_switch(peer) {
                path.push(peer);
            }
            cur = peer;
            if path.len() > 32 {
                break; // defensive: malformed routing
            }
        }

        // Presence must be read at *exact* (level-1) epoch resolution:
        // coarser levels aggregate pre-onset epochs and would report the
        // destination everywhere.
        let mut per_switch = Vec::with_capacity(path.len());
        for &sw in &path {
            let present = range
                .iter()
                .any(|e| self.view.pointer_contains_exact(sw, dst.addr(), e) == Some(Some(true)));
            per_switch.push((sw, present));
        }

        let last_seen = per_switch
            .iter()
            .take_while(|&&(_, p)| p)
            .last()
            .map(|&(s, _)| s);
        let first_missing = per_switch.iter().find(|&&(_, p)| !p).map(|&(s, _)| s);
        let suspected_segment = match (last_seen, first_missing) {
            (Some(a), Some(b)) => Some((a, b)),
            (None, Some(b)) => Some((src, b)),
            _ => None,
        };
        let retrieval = self.ctx.cost.pointer_retrieval(per_switch.len());
        self.trace
            .push_round(path.iter().map(|&sw| (sw, range)).collect(), retrieval);

        DropDiagnosis {
            flow,
            path,
            per_switch,
            suspected_segment,
            pointer_retrieval: retrieval,
        }
    }
}
