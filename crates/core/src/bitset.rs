//! A fixed-size bit array — the paper's "set of pointers".
//!
//! Each slot of the hierarchical data structure is one of these: `n` bits,
//! one per end-host, indexed by the minimal perfect hash of the destination
//! address (§4.1.2: "expresses a 4-byte IP address with 1 bit").

/// Fixed-capacity bit array.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BitSet {
    nbits: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// All-zero bit set of `nbits` bits.
    pub fn new(nbits: usize) -> Self {
        BitSet {
            nbits,
            words: vec![0; nbits.div_ceil(64)],
        }
    }

    /// Capacity in bits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.nbits, "bit {i} out of range {}", self.nbits);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Tests bit `i`.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        debug_assert!(i < self.nbits);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Clears all bits (slot recycling).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.nbits, other.nbits, "bit set size mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Popcount of `self ∧ other` without materializing the intersection
    /// (per-shard decode-work accounting on the query hot path).
    pub fn count_and(&self, other: &BitSet) -> usize {
        assert_eq!(self.nbits, other.nbits, "bit set size mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// The intersection `self ∧ other` as a new set (directory-shard
    /// masking: restrict a pointer set to the slots one shard owns).
    pub fn intersect(&self, other: &BitSet) -> BitSet {
        assert_eq!(self.nbits, other.nbits, "bit set size mismatch");
        BitSet {
            nbits: self.nbits,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// True if every bit of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.nbits, other.nbits, "bit set size mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let tz = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + tz)
            })
        })
    }

    /// Storage footprint in bytes (the S term of the paper's memory and
    /// bandwidth accounting).
    pub fn storage_bytes(&self) -> usize {
        self.nbits.div_ceil(8)
    }

    /// The backing words (64 bits each, low bit = lowest index) — the
    /// wire codec serializes these directly.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bit set from its capacity and backing words (the wire
    /// codec's inverse of [`BitSet::words`]). `words` beyond the capacity
    /// are truncated; missing words are zero-filled, so any (nbits,
    /// words) pair yields a well-formed set.
    pub fn from_words(nbits: usize, words: &[u64]) -> Self {
        let n_words = nbits.div_ceil(64);
        Self::from_word_vec(nbits, words[..words.len().min(n_words)].to_vec())
    }

    /// [`BitSet::from_words`], taking ownership of the backing vec so no
    /// second copy is made — the wire decoder builds the words in place
    /// and hands them over, halving its peak allocation.
    pub fn from_word_vec(nbits: usize, mut words: Vec<u64>) -> Self {
        let n_words = nbits.div_ceil(64);
        words.resize(n_words, 0);
        // Mask stray bits above the capacity in the last word so equality
        // with a natively built set holds.
        if n_words > 0 && !nbits.is_multiple_of(64) {
            words[n_words - 1] &= (1u64 << (nbits % 64)) - 1;
        }
        BitSet { nbits, words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_clear() {
        let mut b = BitSet::new(130);
        assert!(b.is_empty());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.test(0) && b.test(63) && b.test(64) && b.test(129));
        assert!(!b.test(1) && !b.test(128));
        assert_eq!(b.count(), 4);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = BitSet::new(200);
        for i in [3, 64, 65, 199] {
            b.set(i);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 64, 65, 199]);
    }

    #[test]
    fn union_and_subset() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.set(1);
        a.set(50);
        b.set(50);
        b.set(99);
        assert!(!a.is_subset_of(&b));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 3);
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
    }

    #[test]
    fn storage_accounting() {
        assert_eq!(BitSet::new(100_000).storage_bytes(), 12_500); // paper: 12.5 KB
        assert_eq!(BitSet::new(1_000_000).storage_bytes(), 125_000); // 125 KB
        assert_eq!(BitSet::new(7).storage_bytes(), 1);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn union_size_mismatch_panics() {
        let mut a = BitSet::new(10);
        a.union_with(&BitSet::new(11));
    }
}
