//! The sharded analyzer directory: partitioning the MPHF/host directory
//! across N analyzer instances.
//!
//! A single [`Analyzer`] owns the whole bit → host directory, so every
//! pointer decode and every host fan-out funnels through one coordinator.
//! This module hash-partitions the directory with the same stable
//! splitmix64 assignment the host stores use for flow records
//! ([`mphf::stable_shard`]): shard `s` owns exactly the hosts whose
//! address hashes to `s`, the MPHF slots those hosts occupy, and the
//! decode work for pointer bits landing in those slots.
//!
//! * [`DirectoryShard`] — one instance's slice: owned hosts, the slot mask
//!   restricting a pointer set to them, a *local* per-shard MPHF (minimal
//!   over the owned addresses) sizing the shard's own metadata.
//! * [`ShardedDirectory`] — the full partition plus the slot → owner map.
//! * [`ShardedView`] — a [`StateView`] router over any underlying view:
//!   pointer unions are decoded per shard (masked slices) and reassembled
//!   by a deterministic OR/merge; host reads route to the owning shard.
//!   Because the shard masks partition the directory's slot range, the
//!   reassembled state is **bit-identical** to the unsharded view's — the
//!   property test pins verdict equality at any shard count.
//! * [`ShardedAnalyzer`] — the thin router front-end over a live
//!   [`Analyzer`]: fans a [`QueryRequest`]'s state reads out to the owning
//!   shards, merges deterministically, and reports the per-shard fan-out
//!   ([`ShardFanout`]) the cost model turns into a modelled decode time
//!   ([`CostModel::sharded_decode`]): shards decode concurrently, the
//!   router pays a serial cross-shard merge.
//!
//! As everywhere in this repo: *answers are real, latency is modelled*.
//! Sharding never changes a verdict; it changes who decodes what, which
//! the fan-out counters record and the cost model prices.

use std::sync::Arc;

use mphf::{stable_shard, Mphf, ShardedMphf};
use netsim::packet::{FlowId, NodeId};
use obsplane::Counter;
use telemetry::EpochRange;

use crate::analyzer::Analyzer;
use crate::bitset::BitSet;
use crate::cost::CostModel;
use crate::host::TriggerEvent;
use crate::hoststore::FlowRecord;
use crate::query::{
    ExecutionTrace, FilterWaveReply, QueryExecutor, QueryRequest, QueryResponse, SizesWaveReply,
    StateView, TopKWaveReply,
};

/// The directory shard owning `host`: the same stable splitmix64
/// assignment flow records use, applied to the host address. Pure
/// function of the host and the shard count — every layer (directory,
/// snapshot deltas, result caches) agrees on ownership.
#[inline]
pub fn host_shard_of(host: NodeId, n_shards: usize) -> usize {
    stable_shard(host.addr(), n_shards)
}

/// One analyzer instance's slice of the directory. Everything here
/// scales with the *owned* host slice, except the n-bit slot mask — the
/// partition mechanism itself (one bit per directory slot).
#[derive(Debug, Clone)]
pub struct DirectoryShard {
    shard: usize,
    /// Hosts this shard owns (ascending).
    hosts: Vec<NodeId>,
    /// Global-MPHF slots of the owned hosts: the mask restricting a
    /// pointer set to this shard's decode responsibility.
    slot_mask: BitSet,
    /// (global slot, owned host) pairs, ascending by slot — the shard's
    /// bit → host decode table, sized by the owned slice.
    owned_slots: Vec<(usize, NodeId)>,
    /// Per-shard MPHF over just the owned addresses — the shard's local
    /// index; its metadata is what this instance must actually hold.
    local: Option<Mphf>,
}

impl DirectoryShard {
    /// This shard's index.
    pub fn id(&self) -> usize {
        self.shard
    }

    /// The hosts this shard owns (ascending).
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Does this shard own `host`?
    pub fn owns(&self, host: NodeId) -> bool {
        self.hosts.binary_search(&host).is_ok()
    }

    /// `bits` restricted to the slots this shard owns — the slice of a
    /// pointer set this instance decodes.
    pub fn mask(&self, bits: &BitSet) -> BitSet {
        bits.intersect(&self.slot_mask)
    }

    /// How many bits of `bits` this shard decodes — `mask(bits).count()`
    /// without materializing the slice (the hot-path accounting form).
    pub fn count_owned(&self, bits: &BitSet) -> usize {
        bits.count_and(&self.slot_mask)
    }

    /// Decodes this shard's slice of `bits` into owned host ids
    /// (ascending) — the per-shard half of a fan-out. Walks the owned
    /// slot table (O(owned), not O(directory)).
    pub fn decode(&self, bits: &BitSet) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .owned_slots
            .iter()
            .filter(|&&(slot, _)| bits.test(slot))
            .map(|&(_, h)| h)
            .collect();
        out.sort();
        out
    }

    /// Metadata this instance holds: its local MPHF over owned addresses.
    pub fn metadata_bytes(&self) -> usize {
        self.local.as_ref().map(|m| m.metadata_bytes()).unwrap_or(0)
    }
}

/// The full hash-partitioned directory plus the slot → owner map.
#[derive(Debug, Clone)]
pub struct ShardedDirectory {
    mphf: Arc<Mphf>,
    shards: Vec<DirectoryShard>,
    /// Global-MPHF slot → owning shard.
    owner_by_slot: Vec<usize>,
}

impl ShardedDirectory {
    /// Partitions `hosts` (all of which must be in `mphf`'s key set) into
    /// `n_shards` directory shards by stable address hash.
    pub fn new(mphf: Arc<Mphf>, hosts: &[NodeId], n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        let addrs: Vec<u64> = hosts.iter().map(|h| h.addr()).collect();
        // Surface builder failures loudly: a directory over zero hosts is
        // legal (every shard just owns nothing), but any real build error
        // must not silently zero the per-shard metadata accounting.
        let local = if addrs.is_empty() {
            None
        } else {
            Some(
                ShardedMphf::build(&addrs, n_shards)
                    .expect("per-shard MPHF over the directory host set"),
            )
        };
        let mut shards: Vec<DirectoryShard> = (0..n_shards)
            .map(|s| DirectoryShard {
                shard: s,
                hosts: Vec::new(),
                slot_mask: BitSet::new(mphf.len()),
                owned_slots: Vec::new(),
                local: local.as_ref().and_then(|l| l.shard(s).cloned()),
            })
            .collect();
        let mut owner_by_slot = vec![0usize; mphf.len()];
        for &h in hosts {
            let slot = mphf
                .index(&h.addr())
                .expect("directory host missing from MPHF");
            let s = host_shard_of(h, n_shards);
            shards[s].hosts.push(h);
            shards[s].slot_mask.set(slot);
            shards[s].owned_slots.push((slot, h));
            owner_by_slot[slot] = s;
        }
        for shard in &mut shards {
            shard.hosts.sort();
            shard.owned_slots.sort();
        }
        ShardedDirectory {
            mphf,
            shards,
            owner_by_slot,
        }
    }

    /// Number of directory shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard slices.
    pub fn shards(&self) -> &[DirectoryShard] {
        &self.shards
    }

    /// The shared global hash function.
    pub fn mphf(&self) -> &Arc<Mphf> {
        &self.mphf
    }

    /// The shard owning `host`'s store and directory entry.
    pub fn owner_of(&self, host: NodeId) -> usize {
        host_shard_of(host, self.shards.len())
    }

    /// The shard owning the slot `addr` hashes to, if `addr` is in the
    /// directory's key set.
    pub fn owner_of_addr(&self, addr: u64) -> Option<usize> {
        self.mphf.index(&addr).map(|slot| self.owner_by_slot[slot])
    }

    /// Full decode via per-shard fan-out: each shard decodes its masked
    /// slice, the router merges the sorted slices. Bit-identical to
    /// [`crate::analyzer::HostDirectory::hosts_in`] because the shard
    /// masks partition the slot range.
    pub fn hosts_in(&self, bits: &BitSet) -> Vec<NodeId> {
        let mut merged: Vec<NodeId> = self.shards.iter().flat_map(|s| s.decode(bits)).collect();
        merged.sort();
        merged
    }

    /// Total per-shard metadata (local MPHFs) — what the sharded
    /// deployment holds across instances.
    pub fn metadata_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.metadata_bytes()).sum()
    }
}

/// Per-query shard fan-out accounting: who decoded and answered what.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardFanout {
    /// Pointer bits decoded per shard (the parallelizable work).
    pub decode_bits: Vec<u64>,
    /// Host-store reads routed to each shard.
    pub host_reads: Vec<u64>,
    /// Cross-shard merges the router performed (one per reassembled
    /// pointer union when N > 1).
    pub merges: u64,
    /// Host ids flowing through those merges (the serial merge work).
    pub merged_bits: u64,
}

impl ShardFanout {
    /// Zeroed counters for `n_shards` shards.
    pub fn new(n_shards: usize) -> Self {
        ShardFanout {
            decode_bits: vec![0; n_shards],
            host_reads: vec![0; n_shards],
            merges: 0,
            merged_bits: 0,
        }
    }

    /// Folds another query's fan-out into this accumulator.
    pub fn absorb(&mut self, other: &ShardFanout) {
        if self.decode_bits.len() < other.decode_bits.len() {
            self.decode_bits.resize(other.decode_bits.len(), 0);
            self.host_reads.resize(other.host_reads.len(), 0);
        }
        for (a, b) in self.decode_bits.iter_mut().zip(&other.decode_bits) {
            *a += b;
        }
        for (a, b) in self.host_reads.iter_mut().zip(&other.host_reads) {
            *a += b;
        }
        self.merges += other.merges;
        self.merged_bits += other.merged_bits;
    }

    /// Shards that did any work for this query.
    pub fn shards_touched(&self) -> usize {
        self.decode_bits
            .iter()
            .zip(&self.host_reads)
            .filter(|&(&d, &h)| d > 0 || h > 0)
            .count()
    }

    /// Modelled decode wall time under `cost`: concurrent per-shard
    /// decode (max term) plus the serial cross-shard merge over the host
    /// ids that actually flowed through union reassembly.
    pub fn modelled_decode(&self, cost: &CostModel) -> netsim::time::SimTime {
        cost.sharded_decode(&self.decode_bits, self.merged_bits)
    }
}

/// A [`StateView`] router over any underlying view: pointer sets are
/// decoded per owning shard and reassembled deterministically; host reads
/// route to the owning shard. Counters are [`obsplane::Counter`]s so the
/// router stays `Sync` over `Sync` views (the query plane's worker pool
/// relies on it); [`ShardedView::fanout`] assembles the [`ShardFanout`]
/// thin view from them on demand.
pub struct ShardedView<'a, V: StateView> {
    inner: &'a V,
    dir: &'a ShardedDirectory,
    decode_bits: Vec<Counter>,
    host_reads: Vec<Counter>,
    merges: Counter,
    merged_bits: Counter,
}

impl<'a, V: StateView> ShardedView<'a, V> {
    pub fn new(inner: &'a V, dir: &'a ShardedDirectory) -> Self {
        let n = dir.n_shards();
        ShardedView {
            inner,
            dir,
            decode_bits: (0..n).map(|_| Counter::new()).collect(),
            host_reads: (0..n).map(|_| Counter::new()).collect(),
            merges: Counter::new(),
            merged_bits: Counter::new(),
        }
    }

    /// Snapshot of the fan-out counters.
    pub fn fanout(&self) -> ShardFanout {
        ShardFanout {
            decode_bits: self.decode_bits.iter().map(|a| a.get()).collect(),
            host_reads: self.host_reads.iter().map(|a| a.get()).collect(),
            merges: self.merges.get(),
            merged_bits: self.merged_bits.get(),
        }
    }

    /// Snapshot of the fan-out counters, zeroing them in the same pass.
    /// This is the scratch-reuse contract of the work-stealing query
    /// plane: one router is built per worker per chunk and drained
    /// between queries, so per-query fan-out still comes out while the
    /// counter vectors are allocated once per chunk instead of once per
    /// query.
    pub fn take_fanout(&self) -> ShardFanout {
        ShardFanout {
            decode_bits: self.decode_bits.iter().map(|a| a.take()).collect(),
            host_reads: self.host_reads.iter().map(|a| a.take()).collect(),
            merges: self.merges.take(),
            merged_bits: self.merged_bits.take(),
        }
    }

    fn note_host_read(&self, host: NodeId) {
        self.host_reads[self.dir.owner_of(host)].inc();
    }
}

impl<V: StateView> StateView for ShardedView<'_, V> {
    fn pointer_union(&self, switch: NodeId, range: EpochRange) -> Option<BitSet> {
        let full = self.inner.pointer_union(switch, range)?;
        if self.dir.n_shards() == 1 {
            self.decode_bits[0].add(full.count() as u64);
            return Some(full);
        }
        // Fan the decode out: every shard takes the slice of `full` under
        // its slot mask. The masks partition the directory's slot range,
        // so reassembling (ORing) the slices provably reproduces `full`
        // byte-for-byte — verdicts cannot depend on N, and the hot path
        // therefore only *counts* each shard's slice (no per-shard
        // allocation) and returns `full` as the reassembled union. The
        // partition-equality itself is pinned by the DirectoryShard
        // tests (`shards_partition_hosts_and_slots`) and checked cheaply
        // here: the per-shard counts must sum to the whole union.
        let mut total = 0u64;
        for shard in self.dir.shards() {
            let ones = shard.count_owned(&full) as u64;
            if ones > 0 {
                self.decode_bits[shard.id()].add(ones);
                total += ones;
            }
        }
        self.merges.inc();
        self.merged_bits.add(total);
        debug_assert_eq!(
            total,
            full.count() as u64,
            "shard slot masks must partition the directory range"
        );
        Some(full)
    }

    fn pointer_contains_exact(
        &self,
        switch: NodeId,
        addr: u64,
        epoch: u64,
    ) -> Option<Option<bool>> {
        // The shard owning the probed address's slot answers the probe.
        if let Some(s) = self.dir.owner_of_addr(addr) {
            self.decode_bits[s].inc();
        }
        self.inner.pointer_contains_exact(switch, addr, epoch)
    }

    fn store_len(&self, host: NodeId) -> Option<usize> {
        self.note_host_read(host);
        self.inner.store_len(host)
    }

    fn record(&self, host: NodeId, flow: FlowId) -> Option<FlowRecord> {
        self.note_host_read(host);
        self.inner.record(host, flow)
    }

    fn flows_matching(&self, host: NodeId, switch: NodeId, range: EpochRange) -> Vec<FlowRecord> {
        self.note_host_read(host);
        self.inner.flows_matching(host, switch, range)
    }

    fn top_k_through(&self, host: NodeId, switch: NodeId, k: usize) -> Vec<(FlowId, u64)> {
        self.note_host_read(host);
        self.inner.top_k_through(host, switch, k)
    }

    fn sizes_by_link(&self, host: NodeId, switch: NodeId) -> Vec<(u16, u64)> {
        self.note_host_read(host);
        self.inner.sizes_by_link(host, switch)
    }

    fn first_trigger_for(&self, host: NodeId, flow: FlowId) -> Option<TriggerEvent> {
        self.note_host_read(host);
        self.inner.first_trigger_for(host, flow)
    }
}

// ----------------------------------------------------------------------
// Shard backends: one serving surface per directory shard, local or
// remote.
// ----------------------------------------------------------------------

/// One directory shard's serving surface. [`ShardedView`] routes over
/// in-process state it can reach by reference; this trait is the same
/// contract with the *reach* abstracted away, so a router can run over
/// shard instances living behind a wire (`wireplane`'s shard servers)
/// exactly as it runs over local slices — the verdict-equality argument
/// is shared.
///
/// The wave methods mirror [`StateView`]'s batched forms: one call per
/// query wave per shard, which is what lets a remote backend carry a
/// whole fan-out in a single round trip.
pub trait ShardBackend {
    /// The directory shard this backend serves.
    fn shard_id(&self) -> usize;

    /// This shard's masked slice of the pointer union for `range` at
    /// `switch` (`None` if the switch has no component). Slices across
    /// the shards partition the full union bit-for-bit.
    fn union_slice(&self, switch: NodeId, range: EpochRange) -> Option<BitSet>;

    /// Exact-resolution presence probe (answered by the shard owning the
    /// probed address's slot).
    fn probe_exact(&self, switch: NodeId, addr: u64, epoch: u64) -> Option<Option<bool>>;

    /// Point read: store size of one owned host.
    fn store_len(&self, host: NodeId) -> Option<usize>;

    /// Point read: one owned host's record for `flow`.
    fn record(&self, host: NodeId, flow: FlowId) -> Option<FlowRecord>;

    /// Point read: first trigger an owned host raised for `flow`.
    fn first_trigger_for(&self, host: NodeId, flow: FlowId) -> Option<TriggerEvent>;

    /// Batched store sizes for owned hosts.
    fn store_len_wave(&self, hosts: &[NodeId]) -> Vec<Option<usize>>;

    /// Batched filter wave over owned hosts.
    fn filter_wave(&self, hosts: &[NodeId], switch: NodeId, range: EpochRange) -> FilterWaveReply;

    /// Batched top-k wave over owned hosts.
    fn top_k_wave(&self, hosts: &[NodeId], switch: NodeId, k: usize) -> TopKWaveReply;

    /// Batched link-sizes wave over owned hosts.
    fn sizes_wave(&self, hosts: &[NodeId], switch: NodeId) -> SizesWaveReply;
}

/// The in-process [`ShardBackend`]: one shard's slice of a shared
/// [`StateView`]. What a wire shard server computes behind its socket,
/// computed by reference — the parity fixture for the remote transport.
pub struct LocalBackend<'a, V: StateView> {
    shard: &'a DirectoryShard,
    view: &'a V,
}

impl<'a, V: StateView> LocalBackend<'a, V> {
    pub fn new(shard: &'a DirectoryShard, view: &'a V) -> Self {
        LocalBackend { shard, view }
    }
}

impl<V: StateView> ShardBackend for LocalBackend<'_, V> {
    fn shard_id(&self) -> usize {
        self.shard.id()
    }

    fn union_slice(&self, switch: NodeId, range: EpochRange) -> Option<BitSet> {
        self.view
            .pointer_union(switch, range)
            .map(|u| self.shard.mask(&u))
    }

    fn probe_exact(&self, switch: NodeId, addr: u64, epoch: u64) -> Option<Option<bool>> {
        self.view.pointer_contains_exact(switch, addr, epoch)
    }

    fn store_len(&self, host: NodeId) -> Option<usize> {
        self.view.store_len(host)
    }

    fn record(&self, host: NodeId, flow: FlowId) -> Option<FlowRecord> {
        self.view.record(host, flow)
    }

    fn first_trigger_for(&self, host: NodeId, flow: FlowId) -> Option<TriggerEvent> {
        self.view.first_trigger_for(host, flow)
    }

    fn store_len_wave(&self, hosts: &[NodeId]) -> Vec<Option<usize>> {
        self.view.store_len_wave(hosts)
    }

    fn filter_wave(&self, hosts: &[NodeId], switch: NodeId, range: EpochRange) -> FilterWaveReply {
        self.view.filter_wave(hosts, switch, range)
    }

    fn top_k_wave(&self, hosts: &[NodeId], switch: NodeId, k: usize) -> TopKWaveReply {
        self.view.top_k_wave(hosts, switch, k)
    }

    fn sizes_wave(&self, hosts: &[NodeId], switch: NodeId) -> SizesWaveReply {
        self.view.sizes_wave(hosts, switch)
    }
}

/// Cumulative routing counters a [`BackendRouter`] keeps on top of the
/// per-shard [`ShardFanout`]: how many backend calls it issued (each a
/// wire RPC for a remote backend) and how many *rounds* of latency those
/// cost (a fan-out to several shards counts one round — the requests
/// overlap).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterCounters {
    pub fanout: ShardFanout,
    /// Backend calls issued (≡ RPCs for a remote backend).
    pub rpcs: u64,
    /// The subset of `rpcs` issued for host-wave fan-outs — the term
    /// per-shard coalescing shrinks (one per shard per wave, vs one per
    /// host per wave without coalescing).
    pub wave_rpcs: u64,
    /// Wave fan-outs routed. Under a deployment that issues the
    /// per-shard requests concurrently, each fan-out is one round trip
    /// of latency; this router issues them sequentially (pipelined on
    /// the per-shard connections), so as a *latency* statement the
    /// count is the model's concurrent-fan-out interpretation — the
    /// same answers-real / latency-modelled split as everywhere else.
    pub wave_rounds: u64,
    /// Routed operations: one per union reassembly, wave fan-out or
    /// point read, however many shards it fanned out to (the round-trip
    /// count under the concurrent-fan-out interpretation above).
    pub rounds: u64,
}

/// A [`StateView`] router over per-shard backends, local or remote.
/// Pointer unions are reassembled by ORing the shards' disjoint masked
/// slices (the slot masks partition the directory range, so the union is
/// bit-identical to the flat view's); host reads route to the owning
/// shard; wave reads coalesce per shard — one backend call, and for a
/// remote backend one wire round trip, per shard per wave.
///
/// With `coalesce` off, wave reads degrade to one backend call per host:
/// the naive per-host RPC regime the paper's Fig. 12 measures, kept as a
/// measurable counterfactual for the batching win.
pub struct BackendRouter<'a, B: ShardBackend> {
    backends: &'a [B],
    dir: &'a ShardedDirectory,
    coalesce: bool,
    decode_bits: Vec<Counter>,
    host_reads: Vec<Counter>,
    merges: Counter,
    merged_bits: Counter,
    rpcs: Counter,
    wave_rpcs: Counter,
    wave_rounds: Counter,
    rounds: Counter,
}

impl<'a, B: ShardBackend> BackendRouter<'a, B> {
    /// A router over `backends` (one per shard of `dir`, in shard order).
    pub fn new(backends: &'a [B], dir: &'a ShardedDirectory) -> Self {
        assert_eq!(
            backends.len(),
            dir.n_shards(),
            "one backend per directory shard"
        );
        for (i, b) in backends.iter().enumerate() {
            assert_eq!(b.shard_id(), i, "backends must be in shard order");
        }
        let n = dir.n_shards();
        BackendRouter {
            backends,
            dir,
            coalesce: true,
            decode_bits: (0..n).map(|_| Counter::new()).collect(),
            host_reads: (0..n).map(|_| Counter::new()).collect(),
            merges: Counter::new(),
            merged_bits: Counter::new(),
            rpcs: Counter::new(),
            wave_rpcs: Counter::new(),
            wave_rounds: Counter::new(),
            rounds: Counter::new(),
        }
    }

    /// Disables per-shard wave coalescing: every host in a wave costs its
    /// own backend call (the naive per-host RPC counterfactual). Answers
    /// are identical either way — only the call pattern changes.
    pub fn without_coalescing(mut self) -> Self {
        self.coalesce = false;
        self
    }

    /// Snapshot of the routing counters.
    pub fn counters(&self) -> RouterCounters {
        RouterCounters {
            fanout: ShardFanout {
                decode_bits: self.decode_bits.iter().map(|a| a.get()).collect(),
                host_reads: self.host_reads.iter().map(|a| a.get()).collect(),
                merges: self.merges.get(),
                merged_bits: self.merged_bits.get(),
            },
            rpcs: self.rpcs.get(),
            wave_rpcs: self.wave_rpcs.get(),
            wave_rounds: self.wave_rounds.get(),
            rounds: self.rounds.get(),
        }
    }

    fn owner(&self, host: NodeId) -> usize {
        self.dir.owner_of(host)
    }

    fn note_point_read(&self, shard: usize) {
        self.host_reads[shard].inc();
        self.rpcs.inc();
        self.rounds.inc();
    }

    /// Routes one wave: groups `hosts` by owning shard (input order kept
    /// within each group), issues one backend call per involved shard
    /// (or per host without coalescing), and scatters the replies back
    /// into input order.
    fn route_wave<T>(
        &self,
        hosts: &[NodeId],
        call: impl Fn(&B, &[NodeId]) -> Vec<T>,
        empty: impl Fn() -> T,
    ) -> Vec<T> {
        if hosts.is_empty() {
            return Vec::new();
        }
        self.rounds.inc();
        self.wave_rounds.inc();
        let mut by_shard: Vec<(Vec<usize>, Vec<NodeId>)> =
            vec![(Vec::new(), Vec::new()); self.backends.len()];
        for (i, &h) in hosts.iter().enumerate() {
            let s = self.owner(h);
            by_shard[s].0.push(i);
            by_shard[s].1.push(h);
        }
        let mut out: Vec<Option<T>> = (0..hosts.len()).map(|_| None).collect();
        for (s, (idxs, shard_hosts)) in by_shard.into_iter().enumerate() {
            if shard_hosts.is_empty() {
                continue;
            }
            self.host_reads[s].add(shard_hosts.len() as u64);
            if self.coalesce {
                self.rpcs.inc();
                self.wave_rpcs.inc();
                let replies = call(&self.backends[s], &shard_hosts);
                debug_assert_eq!(replies.len(), shard_hosts.len());
                for (i, reply) in idxs.into_iter().zip(replies) {
                    out[i] = Some(reply);
                }
            } else {
                for (i, h) in idxs.into_iter().zip(shard_hosts) {
                    self.rpcs.inc();
                    self.wave_rpcs.inc();
                    let mut replies = call(&self.backends[s], std::slice::from_ref(&h));
                    out[i] = replies.pop();
                }
            }
        }
        out.into_iter().map(|r| r.unwrap_or_else(&empty)).collect()
    }
}

impl<B: ShardBackend> StateView for BackendRouter<'_, B> {
    fn pointer_union(&self, switch: NodeId, range: EpochRange) -> Option<BitSet> {
        // Every shard contributes its masked slice; ORing the disjoint
        // slices reproduces the flat union byte-for-byte (the slot masks
        // partition the directory range — pinned by the DirectoryShard
        // partition tests). Counted as one round: a deployment issues
        // the slice requests concurrently (here they are pipelined
        // sequentially — see `RouterCounters::wave_rounds`).
        self.rounds.inc();
        let mut acc: Option<BitSet> = None;
        let mut total = 0u64;
        for b in self.backends {
            self.rpcs.inc();
            let Some(slice) = b.union_slice(switch, range) else {
                continue;
            };
            let ones = slice.count() as u64;
            if ones > 0 {
                self.decode_bits[b.shard_id()].add(ones);
                total += ones;
            }
            match &mut acc {
                None => acc = Some(slice),
                Some(a) => a.union_with(&slice),
            }
        }
        if self.backends.len() > 1 && acc.is_some() {
            self.merges.inc();
            self.merged_bits.add(total);
        }
        acc
    }

    fn pointer_contains_exact(
        &self,
        switch: NodeId,
        addr: u64,
        epoch: u64,
    ) -> Option<Option<bool>> {
        // The shard owning the probed address's slot answers; addresses
        // outside the directory fall to shard 0 (any shard can answer —
        // the probe reads pointer state, not host stores).
        let s = self.dir.owner_of_addr(addr).unwrap_or(0);
        self.decode_bits[s].inc();
        self.rpcs.inc();
        self.rounds.inc();
        self.backends[s].probe_exact(switch, addr, epoch)
    }

    fn store_len(&self, host: NodeId) -> Option<usize> {
        let s = self.owner(host);
        self.note_point_read(s);
        self.backends[s].store_len(host)
    }

    fn record(&self, host: NodeId, flow: FlowId) -> Option<FlowRecord> {
        let s = self.owner(host);
        self.note_point_read(s);
        self.backends[s].record(host, flow)
    }

    fn flows_matching(&self, host: NodeId, switch: NodeId, range: EpochRange) -> Vec<FlowRecord> {
        let s = self.owner(host);
        self.note_point_read(s);
        self.backends[s]
            .filter_wave(std::slice::from_ref(&host), switch, range)
            .pop()
            .map(|(_, recs)| recs)
            .unwrap_or_default()
    }

    fn top_k_through(&self, host: NodeId, switch: NodeId, k: usize) -> Vec<(FlowId, u64)> {
        let s = self.owner(host);
        self.note_point_read(s);
        self.backends[s]
            .top_k_wave(std::slice::from_ref(&host), switch, k)
            .pop()
            .map(|(_, flows)| flows)
            .unwrap_or_default()
    }

    fn sizes_by_link(&self, host: NodeId, switch: NodeId) -> Vec<(u16, u64)> {
        let s = self.owner(host);
        self.note_point_read(s);
        self.backends[s]
            .sizes_wave(std::slice::from_ref(&host), switch)
            .pop()
            .map(|(_, sizes)| sizes)
            .unwrap_or_default()
    }

    fn first_trigger_for(&self, host: NodeId, flow: FlowId) -> Option<TriggerEvent> {
        let s = self.owner(host);
        self.note_point_read(s);
        self.backends[s].first_trigger_for(host, flow)
    }

    fn store_len_wave(&self, hosts: &[NodeId]) -> Vec<Option<usize>> {
        self.route_wave(hosts, |b, hs| b.store_len_wave(hs), || None)
    }

    fn filter_wave(&self, hosts: &[NodeId], switch: NodeId, range: EpochRange) -> FilterWaveReply {
        self.route_wave(
            hosts,
            |b, hs| b.filter_wave(hs, switch, range),
            || (None, Vec::new()),
        )
    }

    fn top_k_wave(&self, hosts: &[NodeId], switch: NodeId, k: usize) -> TopKWaveReply {
        self.route_wave(
            hosts,
            |b, hs| b.top_k_wave(hs, switch, k),
            || (None, Vec::new()),
        )
    }

    fn sizes_wave(&self, hosts: &[NodeId], switch: NodeId) -> SizesWaveReply {
        self.route_wave(
            hosts,
            |b, hs| b.sizes_wave(hs, switch),
            || (None, Vec::new()),
        )
    }
}

/// The thin router front-end over a live [`Analyzer`]: executes any
/// [`QueryRequest`] through a [`ShardedView`] of the live state, so the
/// verdict is bit-identical to the unsharded analyzer's at any shard
/// count, while the per-shard fan-out is recorded and priced.
pub struct ShardedAnalyzer<'a> {
    analyzer: &'a Analyzer,
    dir: ShardedDirectory,
}

impl<'a> ShardedAnalyzer<'a> {
    /// Partitions `analyzer`'s directory into `n_shards` instances.
    pub fn new(analyzer: &'a Analyzer, n_shards: usize) -> Self {
        let dir = ShardedDirectory::new(
            analyzer.directory().mphf().clone(),
            &analyzer.all_hosts(),
            n_shards,
        );
        ShardedAnalyzer { analyzer, dir }
    }

    /// Number of directory shards.
    pub fn n_shards(&self) -> usize {
        self.dir.n_shards()
    }

    /// The partitioned directory.
    pub fn directory(&self) -> &ShardedDirectory {
        &self.dir
    }

    /// Runs `req` through the shard router. Bit-identical to
    /// [`Analyzer::execute`].
    pub fn execute(&self, req: &QueryRequest) -> QueryResponse {
        self.execute_traced(req).0
    }

    /// Runs `req` and additionally returns the execution trace and the
    /// per-shard fan-out accounting.
    pub fn execute_traced(
        &self,
        req: &QueryRequest,
    ) -> (QueryResponse, ExecutionTrace, ShardFanout) {
        let live = self.analyzer.live_view();
        let view = ShardedView::new(&live, &self.dir);
        let (resp, trace) = QueryExecutor::new(self.analyzer.ctx(), &view).execute_traced(req);
        let fanout = view.fanout();
        (resp, trace, fanout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::HostDirectory;

    fn directory(n_hosts: u32) -> (Arc<Mphf>, Vec<NodeId>) {
        let hosts: Vec<NodeId> = (0..n_hosts).map(NodeId).collect();
        let addrs: Vec<u64> = hosts.iter().map(|h| h.addr()).collect();
        (Arc::new(Mphf::build(&addrs).unwrap()), hosts)
    }

    #[test]
    fn shards_partition_hosts_and_slots() {
        let (mphf, hosts) = directory(64);
        for n in [1usize, 2, 4, 8] {
            let dir = ShardedDirectory::new(mphf.clone(), &hosts, n);
            let mut seen: Vec<NodeId> = Vec::new();
            let mut mask_union = BitSet::new(mphf.len());
            for shard in dir.shards() {
                for &h in shard.hosts() {
                    assert_eq!(dir.owner_of(h), shard.id());
                    assert!(shard.owns(h));
                    seen.push(h);
                }
                assert!(
                    shard.slot_mask.intersect(&mask_union).is_empty(),
                    "shard slot masks must be disjoint"
                );
                mask_union.union_with(&shard.slot_mask);
            }
            seen.sort();
            assert_eq!(seen, hosts, "shards must partition the host set ({n})");
            assert_eq!(
                mask_union.count(),
                mphf.len(),
                "slot masks must cover the whole directory range"
            );
        }
    }

    #[test]
    fn sharded_decode_equals_unsharded_directory() {
        let (mphf, hosts) = directory(48);
        let flat = HostDirectory::new(mphf.clone(), &hosts);
        let mut bits = BitSet::new(mphf.len());
        for &h in hosts.iter().step_by(3) {
            bits.set(mphf.index(&h.addr()).unwrap());
        }
        let expected = flat.hosts_in(&bits);
        for n in [1usize, 2, 4, 8, 5] {
            let dir = ShardedDirectory::new(mphf.clone(), &hosts, n);
            assert_eq!(
                dir.hosts_in(&bits),
                expected,
                "per-shard decode + merge diverged at {n} shards"
            );
            // Per-shard decodes are disjoint and union to the full set.
            let total: usize = dir.shards().iter().map(|s| s.decode(&bits).len()).sum();
            assert_eq!(total, expected.len());
        }
    }

    #[test]
    fn per_shard_metadata_tracks_owned_slice() {
        let (mphf, hosts) = directory(256);
        let dir = ShardedDirectory::new(mphf.clone(), &hosts, 4);
        for shard in dir.shards() {
            assert!(
                !shard.hosts().is_empty(),
                "256 hosts over 4 shards: none should be empty"
            );
            assert!(shard.metadata_bytes() > 0);
            assert!(
                shard.metadata_bytes() < mphf.metadata_bytes(),
                "a shard's local MPHF must be smaller than the global one"
            );
        }
    }

    #[test]
    fn sharded_decode_cost_drops_with_parallel_shards() {
        let cost = CostModel::paper_calibrated();
        // 64 decoded bits spread 16/16/16/16 vs one shard doing all 64.
        let four = cost.sharded_decode(&[16, 16, 16, 16], 64);
        let one = cost.sharded_decode(&[64], 0);
        assert!(
            four < one,
            "balanced 4-shard decode ({four}) must model faster than 1-shard ({one})"
        );
        // Degenerate imbalance gets no benefit (all work on one shard,
        // plus the merge tax).
        assert!(cost.sharded_decode(&[64, 0, 0, 0], 64) >= one);
        // Single-address probes route to one shard and never merge:
        // sharding neither helps nor hurts them.
        assert_eq!(cost.sharded_decode(&[64, 0, 0, 0], 0), one);
        assert_eq!(cost.sharded_decode(&[], 0), netsim::time::SimTime::ZERO);
        assert_eq!(cost.sharded_decode(&[0, 0], 0), netsim::time::SimTime::ZERO);
    }
}
