//! The SwitchPointer end-host component (§4.2).
//!
//! Extends the PathDump end-host design: every delivered packet's telemetry
//! is decoded ([`telemetry::TelemetryDecoder`]) and folded into the
//! [`FlowStore`]; a trigger engine samples per-flow throughput every
//! millisecond and raises an alert when throughput drops by more than half
//! (the §5.1 heuristic: "measures throughput every 1 ms interval and
//! generates an alert ... if throughput drop is more than 50%").

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use netsim::apps::{AppCtx, HostApp};
use netsim::packet::{FlowId, NodeId, Packet};
use netsim::time::SimTime;
use telemetry::TelemetryDecoder;

use crate::hoststore::FlowStore;

/// Trigger-engine tuning.
#[derive(Debug, Clone, Copy)]
pub struct TriggerConfig {
    /// Throughput sampling interval (paper: 1 ms).
    pub window: SimTime,
    /// Fire when current window bytes < (1 - drop_fraction) × previous.
    pub drop_fraction: f64,
    /// Ignore windows whose predecessor carried less than this many bytes
    /// (suppresses noise from idle or just-started flows).
    pub min_window_bytes: u64,
}

impl Default for TriggerConfig {
    fn default() -> Self {
        TriggerConfig {
            window: SimTime::from_ms(1),
            drop_fraction: 0.5,
            min_window_bytes: 20_000, // ~0.16 Gbps in a 1 ms window
        }
    }
}

/// A raised spurious-event alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerEvent {
    /// When the trigger engine noticed the drop (end of the bad window).
    pub at: SimTime,
    /// The suffering flow.
    pub flow: FlowId,
    /// Bytes in the window before the drop.
    pub prev_bytes: u64,
    /// Bytes in the dropped window.
    pub cur_bytes: u64,
}

/// Shared, queryable state of one SwitchPointer host.
pub struct HostComponent {
    /// The host this component runs on.
    pub host: NodeId,
    /// Decoded flow records (what the analyzer queries).
    pub store: FlowStore,
    /// Alerts raised so far, in time order (oldest may have been trimmed
    /// by retention sweeps). Private so every mutation goes through a
    /// path that bumps `trigger_version` — snapshot baselines depend on
    /// it; read via [`HostComponent::triggers`].
    triggers: Vec<TriggerEvent>,
    /// Monotone version of the trigger log: bumps on every raised alert
    /// *and* on every retention trim. Snapshot baselines compare it
    /// rather than the log length, so a trim-then-raise coincidence can
    /// never alias an unchanged log.
    trigger_version: u64,
    /// Packets whose telemetry failed to decode.
    pub decode_failures: u64,
    /// Ignore pure ACKs when building flow records (they still count for
    /// switch pointers — this only reduces record noise at the host).
    pub skip_pure_acks: bool,
    decoder: Rc<TelemetryDecoder>,
    trigger_cfg: TriggerConfig,
    /// Per-flow bytes observed in the current sampling window.
    window_bytes: HashMap<FlowId, u64>,
    /// Per-flow bytes in the previous window.
    prev_bytes: HashMap<FlowId, u64>,
}

impl HostComponent {
    pub fn new(host: NodeId, decoder: Rc<TelemetryDecoder>, trigger_cfg: TriggerConfig) -> Self {
        HostComponent {
            host,
            store: FlowStore::new(),
            triggers: Vec::new(),
            trigger_version: 0,
            decode_failures: 0,
            skip_pure_acks: true,
            decoder,
            trigger_cfg,
            window_bytes: HashMap::new(),
            prev_bytes: HashMap::new(),
        }
    }

    fn ingest(&mut self, ctx: &AppCtx, pkt: &Packet) {
        if self.skip_pure_acks && pkt.is_pure_ack() {
            return;
        }
        *self.window_bytes.entry(pkt.flow).or_insert(0) += pkt.payload as u64;
        match self.decoder.decode(pkt, ctx.local_time) {
            Ok(telem) => {
                let link_vid = telemetry::wire::read_commodity(pkt).map(|(l, _)| l);
                self.store.ingest(
                    pkt.flow,
                    pkt.src,
                    pkt.dst,
                    pkt.protocol,
                    pkt.priority,
                    pkt.payload,
                    &telem,
                    link_vid,
                );
            }
            Err(_) => self.decode_failures += 1,
        }
    }

    fn evaluate_triggers(&mut self, now: SimTime) {
        for (&flow, &prev) in &self.prev_bytes {
            if prev < self.trigger_cfg.min_window_bytes {
                continue;
            }
            let cur = self.window_bytes.get(&flow).copied().unwrap_or(0);
            if (cur as f64) < (1.0 - self.trigger_cfg.drop_fraction) * prev as f64 {
                self.trigger_version += 1;
                self.triggers.push(TriggerEvent {
                    at: now,
                    flow,
                    prev_bytes: prev,
                    cur_bytes: cur,
                });
            }
        }
        self.prev_bytes = std::mem::take(&mut self.window_bytes);
    }

    /// First trigger raised for `flow`, if any (post-trim: the first
    /// still-retained one).
    pub fn first_trigger_for(&self, flow: FlowId) -> Option<&TriggerEvent> {
        self.triggers.iter().find(|t| t.flow == flow)
    }

    /// The trigger log: alerts raised so far and not yet trimmed, in time
    /// order.
    pub fn triggers(&self) -> &[TriggerEvent] {
        &self.triggers
    }

    /// The monotone trigger-log version (bumps on raise and on trim).
    pub fn trigger_version(&self) -> u64 {
        self.trigger_version
    }

    /// Retention: drops trigger-log entries raised before `cutoff` (local
    /// time). The log is appended in time order, so this is a prefix
    /// drop; a standing watch whose pin floors the sweep at or below its
    /// trigger's epoch keeps that trigger. Returns how many were trimmed
    /// (0 ⇒ no state change, no version bump).
    pub fn trim_triggers_before(&mut self, cutoff: SimTime) -> usize {
        let n = self.triggers.iter().take_while(|t| t.at < cutoff).count();
        if n > 0 {
            self.triggers.drain(..n);
            self.trigger_version += 1;
        }
        n
    }

    /// Builds the alert message for a triggered flow — the §5.1 payload:
    /// "a series of <switchID, a list of epochIDs, a list of byte counts
    /// per epoch> tuples that tell the analyzer when and where packets of
    /// the TCP flow visit".
    pub fn alert_payload(&self, trigger: &TriggerEvent) -> Option<AlertPayload> {
        let rec = self.store.record(trigger.flow)?;
        let per_switch = rec
            .path
            .iter()
            .map(|&sw| {
                let epochs: Vec<u64> = rec
                    .epochs_at
                    .get(&sw)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                // Byte counts are exact only at the tagging switch; other
                // hops inherit the same series (the flow's bytes are the
                // flow's bytes — what varies is the epoch attribution).
                let bytes: Vec<(u64, u64)> =
                    rec.bytes_per_epoch.iter().map(|(&e, &b)| (e, b)).collect();
                SwitchEpochs {
                    switch: sw,
                    epochs,
                    bytes_per_epoch: bytes,
                }
            })
            .collect();
        Some(AlertPayload {
            flow: trigger.flow,
            host: self.host,
            at: trigger.at,
            prev_bytes: trigger.prev_bytes,
            cur_bytes: trigger.cur_bytes,
            per_switch,
        })
    }
}

/// One `<switchID, epochIDs, per-epoch byte counts>` tuple of an alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchEpochs {
    pub switch: NodeId,
    /// Epochs during which this switch may have processed the flow.
    pub epochs: Vec<u64>,
    /// (epoch, payload bytes) pairs, exact at the tagging switch.
    pub bytes_per_epoch: Vec<(u64, u64)>,
}

/// The alert a host sends the analyzer when its trigger fires (§5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertPayload {
    pub flow: FlowId,
    /// Reporting host (the flow's destination).
    pub host: NodeId,
    pub at: SimTime,
    pub prev_bytes: u64,
    pub cur_bytes: u64,
    /// When and where the flow's packets travelled.
    pub per_switch: Vec<SwitchEpochs>,
}

/// Shared handle the analyzer keeps.
pub type HostHandle = Rc<RefCell<HostComponent>>;

/// The simulator-facing adapter.
pub struct SwitchPointerHostApp {
    state: HostHandle,
    window: SimTime,
}

impl SwitchPointerHostApp {
    /// Wraps shared host state as an installable app; returns (app, handle).
    pub fn new(component: HostComponent) -> (Self, HostHandle) {
        let window = component.trigger_cfg.window;
        let state = Rc::new(RefCell::new(component));
        (
            SwitchPointerHostApp {
                state: state.clone(),
                window,
            },
            state,
        )
    }
}

impl HostApp for SwitchPointerHostApp {
    fn on_packet(&mut self, ctx: &mut AppCtx, pkt: &Packet) {
        self.state.borrow_mut().ingest(ctx, pkt);
    }

    fn on_install(&mut self, ctx: &mut AppCtx) {
        ctx.schedule_timer(ctx.now + self.window, 0);
    }

    fn on_timer(&mut self, ctx: &mut AppCtx, _token: u64) {
        self.state.borrow_mut().evaluate_triggers(ctx.now);
        ctx.schedule_timer(ctx.now + self.window, 0);
    }
}

/// Installs the SwitchPointer host component on every host of a simulator.
pub fn install_on_all_hosts(
    sim: &mut netsim::engine::Simulator,
    decoder: Rc<TelemetryDecoder>,
    trigger_cfg: TriggerConfig,
) -> HashMap<NodeId, HostHandle> {
    let hosts: Vec<NodeId> = sim.topo().hosts().to_vec();
    let mut handles = HashMap::new();
    for h in hosts {
        let comp = HostComponent::new(h, decoder.clone(), trigger_cfg);
        let (app, handle) = SwitchPointerHostApp::new(comp);
        sim.set_host_app(h, Box::new(app));
        handles.insert(h, handle);
    }
    handles
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{Priority, Protocol, TcpHeader};
    use telemetry::{EmbedMode, EpochParams, PathCodec};

    fn decoder_for(topo: &netsim::topology::Topology) -> Rc<TelemetryDecoder> {
        Rc::new(TelemetryDecoder::new(
            PathCodec::new(topo.clone()),
            EpochParams {
                alpha: SimTime::from_ms(1),
                epsilon: SimTime::from_ms(1),
                delta: SimTime::from_ms(2),
            },
            EmbedMode::Commodity,
        ))
    }

    fn mk_component() -> (HostComponent, netsim::topology::Topology) {
        let topo = netsim::topology::Topology::chain(2, 1, netsim::topology::GBPS);
        let b = topo.node_by_name("B").unwrap();
        (
            HostComponent::new(b, decoder_for(&topo), TriggerConfig::default()),
            topo,
        )
    }

    fn data_pkt(topo: &netsim::topology::Topology, payload: u32, tagged: bool) -> Packet {
        let a = topo.node_by_name("A").unwrap();
        let b = topo.node_by_name("B").unwrap();
        let s1 = topo.node_by_name("S1").unwrap();
        let s2 = topo.node_by_name("S2").unwrap();
        let mut p = Packet {
            id: 0,
            flow: FlowId(1),
            src: a,
            dst: b,
            protocol: Protocol::Udp,
            priority: Priority::LOW,
            payload,
            tcp: None,
            tags: Vec::new(),
            sent_at: SimTime::ZERO,
        };
        if tagged {
            let link = topo
                .ports(s1)
                .iter()
                .find(|&&(_, peer)| peer == s2)
                .map(|&(l, _)| l)
                .unwrap();
            telemetry::wire::embed_commodity(&mut p, link.0, 3);
        }
        p
    }

    fn ctx(host: NodeId, ms: u64) -> AppCtx {
        AppCtx::new(SimTime::from_ms(ms), SimTime::from_ms(ms), host)
    }

    #[test]
    fn tagged_packets_build_records() {
        let (mut c, topo) = mk_component();
        let host = c.host;
        c.ingest(&ctx(host, 3), &data_pkt(&topo, 1000, true));
        c.ingest(&ctx(host, 3), &data_pkt(&topo, 500, true));
        assert_eq!(c.store.len(), 1);
        let r = c.store.record(FlowId(1)).unwrap();
        assert_eq!(r.bytes, 1500);
        assert_eq!(r.path.len(), 2);
        assert_eq!(c.decode_failures, 0);
    }

    #[test]
    fn untagged_packets_count_as_decode_failures() {
        let (mut c, topo) = mk_component();
        let host = c.host;
        c.ingest(&ctx(host, 0), &data_pkt(&topo, 1000, false));
        assert_eq!(c.store.len(), 0);
        assert_eq!(c.decode_failures, 1);
    }

    #[test]
    fn pure_acks_skipped_by_default() {
        let (mut c, topo) = mk_component();
        let host = c.host;
        let mut p = data_pkt(&topo, 0, true);
        p.protocol = Protocol::Tcp;
        p.tcp = Some(TcpHeader {
            seq: 0,
            ack: 100,
            is_ack: true,
            ce: false,
        });
        c.ingest(&ctx(host, 0), &p);
        assert_eq!(c.store.len(), 0);
        assert_eq!(c.decode_failures, 0);
    }

    #[test]
    fn throughput_drop_raises_trigger() {
        let (mut c, topo) = mk_component();
        let host = c.host;
        // Window 1: 100 KB.
        for _ in 0..100 {
            c.ingest(&ctx(host, 0), &data_pkt(&topo, 1000, true));
        }
        c.evaluate_triggers(SimTime::from_ms(1));
        assert!(c.triggers.is_empty(), "first window cannot trigger");
        // Window 2: 10 KB — a 90% drop.
        for _ in 0..10 {
            c.ingest(&ctx(host, 1), &data_pkt(&topo, 1000, true));
        }
        c.evaluate_triggers(SimTime::from_ms(2));
        assert_eq!(c.triggers.len(), 1);
        let t = c.triggers[0];
        assert_eq!(t.flow, FlowId(1));
        assert_eq!(t.at, SimTime::from_ms(2));
        assert_eq!(t.prev_bytes, 100_000);
        assert_eq!(t.cur_bytes, 10_000);
    }

    #[test]
    fn mild_drop_below_threshold_does_not_trigger() {
        let (mut c, topo) = mk_component();
        let host = c.host;
        for _ in 0..100 {
            c.ingest(&ctx(host, 0), &data_pkt(&topo, 1000, true));
        }
        c.evaluate_triggers(SimTime::from_ms(1));
        // 60% of previous: above the 50%-drop threshold.
        for _ in 0..60 {
            c.ingest(&ctx(host, 1), &data_pkt(&topo, 1000, true));
        }
        c.evaluate_triggers(SimTime::from_ms(2));
        assert!(c.triggers.is_empty());
    }

    #[test]
    fn quiet_flows_do_not_trigger() {
        let (mut c, topo) = mk_component();
        let host = c.host;
        // Tiny previous window (below min_window_bytes): a stop is not a
        // reportable drop.
        c.ingest(&ctx(host, 0), &data_pkt(&topo, 500, true));
        c.evaluate_triggers(SimTime::from_ms(1));
        c.evaluate_triggers(SimTime::from_ms(2));
        assert!(c.triggers.is_empty());
    }

    #[test]
    fn alert_payload_carries_switch_epoch_bytes() {
        let (mut c, topo) = mk_component();
        let host = c.host;
        for _ in 0..100 {
            c.ingest(&ctx(host, 3), &data_pkt(&topo, 1000, true));
        }
        c.evaluate_triggers(SimTime::from_ms(4));
        c.evaluate_triggers(SimTime::from_ms(5)); // starved window -> trigger
        let trig = *c.first_trigger_for(FlowId(1)).expect("trigger");
        let alert = c.alert_payload(&trig).expect("payload");
        assert_eq!(alert.flow, FlowId(1));
        assert_eq!(alert.host, host);
        assert_eq!(alert.per_switch.len(), 2, "S1 and S2 on the path");
        // The tagging switch's per-epoch byte series sums to the ingested
        // payload bytes.
        let total: u64 = alert.per_switch[0]
            .bytes_per_epoch
            .iter()
            .map(|&(_, b)| b)
            .sum();
        assert_eq!(total, 100_000);
        // Tagged epoch 3 must appear in every hop's epoch list.
        for sw in &alert.per_switch {
            assert!(sw.epochs.contains(&3), "{sw:?}");
        }
    }

    #[test]
    fn alert_payload_none_without_record() {
        let (c, _) = mk_component();
        let trig = TriggerEvent {
            at: SimTime::from_ms(1),
            flow: FlowId(99),
            prev_bytes: 1,
            cur_bytes: 0,
        };
        assert!(c.alert_payload(&trig).is_none());
    }

    #[test]
    fn full_starvation_triggers() {
        let (mut c, topo) = mk_component();
        let host = c.host;
        for _ in 0..100 {
            c.ingest(&ctx(host, 0), &data_pkt(&topo, 1000, true));
        }
        c.evaluate_triggers(SimTime::from_ms(1));
        // Nothing arrives in window 2.
        c.evaluate_triggers(SimTime::from_ms(2));
        assert_eq!(c.triggers.len(), 1);
        assert_eq!(c.triggers[0].cur_bytes, 0);
    }
}
