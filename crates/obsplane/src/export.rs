//! Atomic artifact export.
//!
//! Bench and experiment JSONs are *trajectories* — downstream tooling
//! diffs them across runs — so an interrupted writer must never leave
//! a truncated file behind. [`write_atomic`] stages the bytes in a
//! sibling temp file and renames it into place; on POSIX the rename is
//! atomic, so readers observe either the old artifact or the complete
//! new one, never a prefix.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Writes `contents` to `path` atomically: stage to `<path>.tmp` in the
/// same directory (so the rename cannot cross filesystems), flush, then
/// rename over the destination.
pub fn write_atomic(path: impl AsRef<Path>, contents: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Leave no stray staging file on failure.
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join("obsplane_export_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        write_atomic(&path, b"{\"v\":1}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":1}");
        write_atomic(&path, b"{\"v\":2}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":2}");
        // No staging residue.
        assert!(!dir.join("artifact.json.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
