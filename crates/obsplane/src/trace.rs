//! A lightweight span/event tracer keyed by (query class, epoch, shard).
//!
//! Spans are cheap enough to leave on: starting one snapshots a
//! monotonic clock, and dropping the guard appends a fixed-size
//! [`SpanEvent`] to a bounded ring (oldest evicted first, with an
//! eviction counter so loss is visible). The ring is for *postmortem
//! inspection* — "what were the last N queries and how long did each
//! take, on which shard, against which epoch horizon" — while the
//! aggregate distributions live in the registry's histograms.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default ring capacity (events retained).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// One completed span: a (class, epoch, shard)-keyed duration, with
/// its start offset from the tracer's origin for ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static label, e.g. a query class name.
    pub class: &'static str,
    /// Epoch the work was keyed to (a snapshot horizon, window id, …).
    pub epoch: u64,
    /// Shard the work ran against (or `u32::MAX` for unsharded work).
    pub shard: u32,
    /// Start time, nanoseconds since the tracer was created.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// A bounded, concurrent span recorder. Embedded in every
/// [`MetricsRegistry`](crate::MetricsRegistry).
#[derive(Debug)]
pub struct Tracer {
    origin: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<SpanEvent>>,
    dropped: AtomicU64,
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            origin: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Starts a span; the returned guard records on drop.
    pub fn span(&self, class: &'static str, epoch: u64, shard: u32) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            class,
            epoch,
            shard,
            started: Instant::now(),
        }
    }

    /// Appends a completed event directly (what the guard does).
    pub fn record(&self, class: &'static str, epoch: u64, shard: u32, started: Instant) {
        let now = Instant::now();
        let ev = SpanEvent {
            class,
            epoch,
            shard,
            start_ns: saturating_ns(started.duration_since(self.origin)),
            dur_ns: saturating_ns(now.duration_since(started)),
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.ring.lock().unwrap().iter().copied().collect()
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

fn saturating_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// RAII guard: records the span into the tracer when dropped.
#[must_use = "a span records when the guard drops"]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    class: &'static str,
    epoch: u64,
    shard: u32,
    started: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer
            .record(self.class, self.epoch, self.shard, self.started);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_in_order() {
        let t = Tracer::new();
        {
            let _a = t.span("alpha", 1, 0);
        }
        {
            let _b = t.span("beta", 2, 3);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].class, "alpha");
        assert_eq!(evs[1].class, "beta");
        assert_eq!(evs[1].epoch, 2);
        assert_eq!(evs[1].shard, 3);
        assert!(evs[0].start_ns <= evs[1].start_ns);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_bounds_and_counts_evictions() {
        let t = Tracer::with_capacity(2);
        for i in 0..5 {
            t.record("x", i, 0, Instant::now());
        }
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].epoch, 3);
        assert_eq!(evs[1].epoch, 4);
        assert_eq!(t.dropped(), 3);
    }
}
