//! Causal span tracing keyed by (trace, span, parent) with a
//! tail-latency flight recorder.
//!
//! Spans are cheap enough to leave on: starting one snapshots a
//! monotonic clock, and finishing it publishes a fixed-size
//! [`SpanEvent`] into a sharded, lock-free ring (oldest evicted first,
//! with eviction/loss counters so silent span loss is impossible). The
//! ring answers *postmortem* questions — "what ran lately, how long did
//! each stage take, on which shard" — while aggregate distributions
//! live in the registry's histograms.
//!
//! Beyond the flat ring of earlier revisions, the tracer carries a
//! **causal layer**:
//!
//! * [`TraceContext`] — a 64-bit trace id plus the parent span id,
//!   minted at a request's entry point ([`Tracer::mint_trace`], seeded
//!   splitmix64, deterministic under test) and propagated across
//!   threads via a thread-local ([`current`] / [`with_context`]) and
//!   across processes inside the wire envelopes.
//! * **Head sampling** — [`Tracer::set_sample_rate`] keeps 1-in-N
//!   traces (0 disables minting entirely). Context still propagates
//!   for unsampled traces so downstream exemplar pinning works.
//! * **Tail-latency exemplars** — any traced span (tree) whose
//!   duration exceeds a rolling threshold (8× an EWMA of all span
//!   durations, after a warmup) is pinned into a bounded
//!   slowest-kept store, so slow-query evidence survives both ring
//!   eviction and 1-in-1024 sampling.
//!
//! The ring itself is a set of per-thread-affine buckets, each a
//! seqlock ring: writers claim a slot by ticket and never block — a
//! writer that loses the claim race counts the span as lost instead of
//! spinning — and readers discard slots whose sequence moved under
//! them. Scrapes therefore cost the readers, never the hot path.

use std::cell::{Cell, UnsafeCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default ring capacity (events retained).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Ring capacity per seqlock bucket; tracers smaller than this use a
/// single bucket so eviction order stays exact.
const BUCKET_CAPACITY: usize = 1024;

/// Traces retained in the exemplar store (slowest kept).
const EXEMPLAR_TRACES: usize = 32;

/// Spans retained per pinned trace.
const EXEMPLAR_SPANS: usize = 64;

/// Spans that must be recorded before the rolling slow threshold arms.
const EXEMPLAR_WARMUP: u64 = 64;

/// Default seed for span/trace id minting. Fixed so id sequences are
/// deterministic under test; servers perturb it per process via
/// [`Tracer::set_id_seed`] so ids never collide across processes.
const DEFAULT_ID_SEED: u64 = 0x53_57_50_54; // "SWPT"

const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The per-request causal identity carried along the wire: which trace
/// a piece of work belongs to and which span caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id, nonzero. Zero means "untraced" everywhere else.
    pub trace_id: u64,
    /// The causing span — children record it as their `parent_id`.
    pub span_id: u64,
    /// Head-sampling verdict. Unsampled contexts still propagate so
    /// exemplar pinning can fire downstream.
    pub sampled: bool,
}

impl TraceContext {
    /// The context a child span should propagate: same trace, this
    /// span as the parent.
    pub fn child(&self, span_id: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id,
            sampled: self.sampled,
        }
    }
}

/// One completed span: a (class, epoch, shard)-keyed duration plus its
/// causal identity. `trace_id == 0` marks a legacy untraced span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static label, e.g. a query class name.
    pub class: &'static str,
    /// Pipeline stage this span measures ("query", "enqueue", "wire",
    /// "serve", "exec", "apply", or "span" for legacy records).
    pub stage: &'static str,
    /// Epoch the work was keyed to (a snapshot horizon, window id, …).
    pub epoch: u64,
    /// Shard the work ran against (or `u32::MAX` for unsharded work).
    pub shard: u32,
    /// Start time, nanoseconds since the tracer was created. Only
    /// comparable within one process.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Trace this span belongs to; 0 = untraced.
    pub trace_id: u64,
    /// This span's id (unique per tracer).
    pub span_id: u64,
    /// The causing span's id; 0 = root.
    pub parent_id: u64,
    /// Work-stealing annotation: chunks of this span's work that ran
    /// on a thief worker rather than the one they were queued to.
    pub steals: u32,
}

/// One slot of a seqlock ring. `seq` counts `2*lap` when the slot
/// holds lap `lap-1`'s published value (or is fresh for lap 0), and
/// `2*lap + 1` while the lap-`lap` writer is mid-write.
struct Slot {
    seq: AtomicU64,
    ev: UnsafeCell<SpanEvent>,
}

// SAFETY: `ev` is only written by the thread that won the seq CAS for
// its lap and only read back under a double-checked seq validation;
// torn reads are detected by the second check and discarded unused.
unsafe impl Sync for Slot {}

const EMPTY_EVENT: SpanEvent = SpanEvent {
    class: "",
    stage: "",
    epoch: 0,
    shard: 0,
    start_ns: 0,
    dur_ns: 0,
    trace_id: 0,
    span_id: 0,
    parent_id: 0,
    steals: 0,
};

/// One writer-affine seqlock ring.
struct Bucket {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Bucket {
    fn new(capacity: usize) -> Bucket {
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                ev: UnsafeCell::new(EMPTY_EVENT),
            })
            .collect();
        Bucket {
            head: AtomicU64::new(0),
            slots,
        }
    }

    /// Publishes one event. Returns `(evicted, lost)`: whether an older
    /// event was overwritten, and whether *this* event was dropped
    /// because a straggling writer still held the slot (writers never
    /// block or spin).
    fn push(&self, ev: SpanEvent) -> (bool, bool) {
        let cap = self.slots.len() as u64;
        let t = self.head.fetch_add(1, Ordering::Relaxed);
        let lap = t / cap;
        let slot = &self.slots[(t % cap) as usize];
        let claimed = slot
            .seq
            .compare_exchange(2 * lap, 2 * lap + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if !claimed {
            return (t >= cap, true);
        }
        // SAFETY: the CAS above made this thread the unique lap-`lap`
        // writer for the slot; readers validate seq around their copy.
        unsafe { std::ptr::write_volatile(slot.ev.get(), ev) };
        slot.seq.store(2 * lap + 2, Ordering::Release);
        (t >= cap, false)
    }

    /// Copies out the retained window in ticket order. Slots that a
    /// writer moved mid-copy are skipped — they are counted as
    /// evictions by the writer that claimed them.
    fn snapshot(&self, out: &mut Vec<(u64, SpanEvent)>) {
        let cap = self.slots.len() as u64;
        let head = self.head.load(Ordering::Acquire);
        for t in head.saturating_sub(cap)..head {
            let lap = t / cap;
            let want = 2 * lap + 2;
            let slot = &self.slots[(t % cap) as usize];
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            // SAFETY: the copy may race a writer; the re-check below
            // discards the copy if the slot changed underneath it.
            let ev = unsafe { std::ptr::read_volatile(slot.ev.get()) };
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            out.push((t, ev));
        }
    }
}

/// Pinned evidence for one slow trace.
struct ExemplarTrace {
    max_dur_ns: u64,
    spans: Vec<SpanEvent>,
}

/// A bounded, concurrent span recorder with causal context and a
/// tail-latency flight recorder. Embedded in every
/// [`MetricsRegistry`](crate::MetricsRegistry).
pub struct Tracer {
    origin: Instant,
    capacity: usize,
    buckets: Box<[Bucket]>,
    /// Spans submitted (whether retained or not).
    recorded: AtomicU64,
    /// Spans evicted by ring wraparound.
    evicted: AtomicU64,
    /// Spans dropped because the writer lost the slot claim race.
    lost: AtomicU64,
    /// EWMA of span durations (ns), α = 1/16; feeds the slow threshold.
    mean_ns: AtomicU64,
    /// Head-sampling rate: keep 1-in-N traces; 0 disables minting.
    sample_rate: AtomicU64,
    /// splitmix64 state for trace/span id minting.
    id_seed: AtomicU64,
    id_ctr: AtomicU64,
    /// Times a slow trace was pinned (or re-pinned with more spans).
    pinned: AtomicU64,
    exemplars: Mutex<BTreeMap<u64, ExemplarTrace>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.capacity)
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    pub fn with_capacity(capacity: usize) -> Tracer {
        let capacity = capacity.max(1);
        // Small rings keep a single bucket so eviction order is exact;
        // large rings shard into `BUCKET_CAPACITY`-slot seqlock rings.
        let nbuckets = (capacity / BUCKET_CAPACITY).clamp(1, 8);
        let per = capacity.div_ceil(nbuckets);
        let buckets = (0..nbuckets).map(|_| Bucket::new(per)).collect();
        Tracer {
            origin: Instant::now(),
            capacity,
            buckets,
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            mean_ns: AtomicU64::new(0),
            sample_rate: AtomicU64::new(1),
            id_seed: AtomicU64::new(DEFAULT_ID_SEED),
            id_ctr: AtomicU64::new(0),
            pinned: AtomicU64::new(0),
            exemplars: Mutex::new(BTreeMap::new()),
        }
    }

    /// Reseeds id minting. Servers perturb the default per process so
    /// span ids never collide across a cluster; tests pin it for
    /// deterministic id sequences.
    pub fn set_id_seed(&self, seed: u64) {
        self.id_seed.store(seed, Ordering::Relaxed);
    }

    /// Sets head sampling to keep 1-in-`rate` traces. `0` disables
    /// trace minting entirely; `1` (the default) samples everything.
    pub fn set_sample_rate(&self, rate: u32) {
        self.sample_rate.store(u64::from(rate), Ordering::Relaxed);
    }

    /// Current head-sampling rate.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate.load(Ordering::Relaxed) as u32
    }

    /// Mints the next span id: splitmix64 over a seeded counter, so
    /// sequences are deterministic given the seed and call order.
    pub fn next_span_id(&self) -> u64 {
        let n = self.id_ctr.fetch_add(1, Ordering::Relaxed);
        splitmix64(
            self.id_seed
                .load(Ordering::Relaxed)
                .wrapping_add(n.wrapping_mul(SPLITMIX_GAMMA)),
        )
    }

    /// Mints a fresh root trace context, or `None` when tracing is
    /// disabled (`sample_rate == 0`). The context is returned even for
    /// unsampled traces — it must still propagate so downstream
    /// exemplar pinning can fire.
    pub fn mint_trace(&self) -> Option<TraceContext> {
        let rate = self.sample_rate.load(Ordering::Relaxed);
        if rate == 0 {
            return None;
        }
        let id = self.next_span_id().max(1);
        Some(TraceContext {
            trace_id: id,
            span_id: self.next_span_id(),
            sampled: rate == 1 || id.is_multiple_of(rate),
        })
    }

    /// Nanoseconds from the tracer's origin to `at` (zero if earlier).
    pub fn offset_ns(&self, at: Instant) -> u64 {
        saturating_ns(at.duration_since(self.origin))
    }

    /// Starts a span; the returned guard records on drop.
    pub fn span(&self, class: &'static str, epoch: u64, shard: u32) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            class,
            epoch,
            shard,
            started: Instant::now(),
        }
    }

    /// Appends a completed event directly (what the guard does). When a
    /// thread-local [`TraceContext`] is active the span joins that
    /// trace as a child; otherwise it records untraced, always
    /// retained regardless of sampling.
    pub fn record(&self, class: &'static str, epoch: u64, shard: u32, started: Instant) {
        let now = Instant::now();
        let ctx = current();
        let ev = SpanEvent {
            class,
            stage: if ctx.is_some() { "exec" } else { "span" },
            epoch,
            shard,
            start_ns: self.offset_ns(started),
            dur_ns: saturating_ns(now.duration_since(started)),
            trace_id: ctx.map_or(0, |c| c.trace_id),
            span_id: self.next_span_id(),
            parent_id: ctx.map_or(0, |c| c.span_id),
            steals: u32::from(chunk_stolen()),
        };
        self.submit_all(&[ev], ctx.is_none_or(|c| c.sampled));
    }

    /// Publishes one completed span. `sampled` gates ring retention
    /// only; the rolling-threshold exemplar check always runs.
    pub fn submit(&self, ev: SpanEvent, sampled: bool) {
        self.submit_all(&[ev], sampled);
    }

    /// Publishes a group of spans from one trace as a unit: if the
    /// slowest of them crosses the rolling threshold the *whole group*
    /// is pinned, so a slow query's local span tree survives intact
    /// even when head sampling discarded it from the ring.
    pub fn submit_all(&self, events: &[SpanEvent], sampled: bool) {
        if events.is_empty() {
            return;
        }
        let threshold = self.slow_threshold_ns();
        let bucket = &self.buckets[thread_slot() % self.buckets.len()];
        let mut max_dur = 0u64;
        let mut trace_id = 0u64;
        for ev in events {
            self.recorded.fetch_add(1, Ordering::Relaxed);
            self.update_mean(ev.dur_ns);
            if sampled {
                let (evicted, lost) = bucket.push(*ev);
                if evicted {
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
                if lost {
                    self.lost.fetch_add(1, Ordering::Relaxed);
                }
            }
            max_dur = max_dur.max(ev.dur_ns);
            if ev.trace_id != 0 {
                trace_id = ev.trace_id;
            }
        }
        if trace_id != 0 && max_dur >= threshold {
            self.pin_exemplar(trace_id, events, max_dur);
        }
    }

    /// The current slow-span threshold: 8× the EWMA mean duration once
    /// warmed up, `u64::MAX` before that.
    pub fn slow_threshold_ns(&self) -> u64 {
        if self.recorded.load(Ordering::Relaxed) < EXEMPLAR_WARMUP {
            return u64::MAX;
        }
        self.mean_ns
            .load(Ordering::Relaxed)
            .saturating_mul(8)
            .max(1)
    }

    fn update_mean(&self, dur_ns: u64) {
        // Lossy under races on purpose: an EWMA feeding a coarse 8×
        // threshold does not need atomicity.
        let m = self.mean_ns.load(Ordering::Relaxed);
        let next = if m == 0 {
            dur_ns
        } else {
            m.saturating_mul(15) / 16 + dur_ns / 16
        };
        self.mean_ns.store(next.max(1), Ordering::Relaxed);
    }

    fn pin_exemplar(&self, trace_id: u64, events: &[SpanEvent], max_dur: u64) {
        let mut st = self.exemplars.lock().unwrap();
        let entry = st.entry(trace_id).or_insert_with(|| ExemplarTrace {
            max_dur_ns: 0,
            spans: Vec::new(),
        });
        entry.max_dur_ns = entry.max_dur_ns.max(max_dur);
        for ev in events {
            if entry.spans.len() < EXEMPLAR_SPANS && !entry.spans.contains(ev) {
                entry.spans.push(*ev);
            }
        }
        // Keep the slowest traces: evict the fastest pinned trace.
        while st.len() > EXEMPLAR_TRACES {
            let victim = st
                .iter()
                .min_by_key(|(id, t)| (t.max_dur_ns, **id))
                .map(|(id, _)| *id)
                .expect("non-empty checked by len");
            st.remove(&victim);
        }
        self.pinned.fetch_add(1, Ordering::Relaxed);
    }

    /// The retained ring events, oldest first (ties broken by
    /// publication order within a writer bucket).
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut keyed: Vec<(u64, SpanEvent)> = Vec::new();
        for b in self.buckets.iter() {
            b.snapshot(&mut keyed);
        }
        keyed.sort_by_key(|(t, ev)| (ev.start_ns, *t, ev.span_id));
        keyed.into_iter().map(|(_, ev)| ev).collect()
    }

    /// Every span pinned in the exemplar store, grouped by trace id,
    /// oldest span first within a trace.
    pub fn exemplar_events(&self) -> Vec<SpanEvent> {
        let st = self.exemplars.lock().unwrap();
        let mut out: Vec<SpanEvent> = Vec::new();
        for t in st.values() {
            out.extend(t.spans.iter().copied());
        }
        out.sort_by_key(|ev| (ev.trace_id, ev.start_ns, ev.span_id));
        out
    }

    /// Trace ids currently pinned as slow-query exemplars.
    pub fn exemplar_trace_ids(&self) -> Vec<u64> {
        self.exemplars.lock().unwrap().keys().copied().collect()
    }

    /// Times a slow trace was pinned into the exemplar store.
    pub fn exemplars_pinned(&self) -> u64 {
        self.pinned.load(Ordering::Relaxed)
    }

    /// Spans submitted so far, retained or not. Quiesced and
    /// uncontended, `recorded() == events().len() + dropped()` — the
    /// accounting identity that makes silent span loss test-visible.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events dropped so far: ring evictions plus claim-race losses.
    pub fn dropped(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed) + self.lost.load(Ordering::Relaxed)
    }

    /// Claim-race losses alone (a subset of [`dropped`](Self::dropped)).
    pub fn lost(&self) -> u64 {
        self.lost.load(Ordering::Relaxed)
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

fn saturating_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(SPLITMIX_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable small index for the calling thread, used for bucket affinity.
fn thread_slot() -> usize {
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let v = NEXT.fetch_add(1, Ordering::Relaxed);
        s.set(v);
        v
    })
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
    static CHUNK_STOLEN: Cell<bool> = const { Cell::new(false) };
}

/// The calling thread's active trace context, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| c.get())
}

/// Runs `f` with `ctx` as the thread's active trace context, restoring
/// the previous context afterwards (unwind-safe).
pub fn with_context<T>(ctx: Option<TraceContext>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<TraceContext>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(CURRENT.with(|c| c.replace(ctx)));
    f()
}

/// Marks whether the chunk currently executing on this thread was
/// work-stolen; picked up as a span annotation by [`Tracer::record`].
pub fn set_chunk_stolen(stolen: bool) {
    CHUNK_STOLEN.with(|c| c.set(stolen));
}

/// Whether the chunk currently executing on this thread was stolen.
pub fn chunk_stolen() -> bool {
    CHUNK_STOLEN.with(|c| c.get())
}

/// RAII guard: records the span into the tracer when dropped.
#[must_use = "a span records when the guard drops"]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    class: &'static str,
    epoch: u64,
    shard: u32,
    started: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer
            .record(self.class, self.epoch, self.shard, self.started);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_in_order() {
        let t = Tracer::new();
        {
            let _a = t.span("alpha", 1, 0);
        }
        {
            let _b = t.span("beta", 2, 3);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].class, "alpha");
        assert_eq!(evs[1].class, "beta");
        assert_eq!(evs[1].epoch, 2);
        assert_eq!(evs[1].shard, 3);
        assert!(evs[0].start_ns <= evs[1].start_ns);
        assert_eq!(t.dropped(), 0);
        // Untraced spans carry a zero trace id but still mint span ids.
        assert_eq!(evs[0].trace_id, 0);
        assert_ne!(evs[0].span_id, evs[1].span_id);
    }

    #[test]
    fn ring_bounds_and_counts_evictions() {
        let t = Tracer::with_capacity(2);
        for i in 0..5 {
            t.record("x", i, 0, Instant::now());
        }
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].epoch, 3);
        assert_eq!(evs[1].epoch, 4);
        assert_eq!(t.dropped(), 3);
        // The overflow accounting identity: nothing vanished silently.
        assert_eq!(t.recorded(), evs.len() as u64 + t.dropped());
    }

    #[test]
    fn concurrent_writers_lose_no_spans_below_capacity() {
        let t = std::sync::Arc::new(Tracer::with_capacity(4096));
        let threads: Vec<_> = (0..8)
            .map(|w| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        t.record("load", u64::from(w) * 1000 + i, w, Instant::now());
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        // Below capacity every writer gets its own lap-0 slot: no
        // eviction, no claim races, and the identity must hold exactly.
        assert_eq!(t.recorded(), 800);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.events().len(), 800);
    }

    #[test]
    fn concurrent_overflow_is_counted_never_silent() {
        let t = std::sync::Arc::new(Tracer::with_capacity(64));
        let threads: Vec<_> = (0..4)
            .map(|w| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        t.record("load", i, w, Instant::now());
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.recorded(), 2000);
        // Every missing span is accounted for: evictions plus claim
        // losses (a claim loss strands at most one extra older span).
        let retained = t.events().len() as u64;
        assert!(retained <= 64);
        assert!(t.recorded() <= retained + t.dropped() + t.lost());
    }

    #[test]
    fn minting_is_deterministic_and_sampling_gates_the_ring() {
        let a = Tracer::new();
        let b = Tracer::new();
        let ids_a: Vec<_> = (0..4).map(|_| a.next_span_id()).collect();
        let ids_b: Vec<_> = (0..4).map(|_| b.next_span_id()).collect();
        assert_eq!(ids_a, ids_b, "fixed seed must give fixed id streams");
        b.set_id_seed(1234);
        assert_ne!(a.next_span_id(), b.next_span_id());

        let t = Tracer::new();
        t.set_sample_rate(0);
        assert!(t.mint_trace().is_none());
        t.set_sample_rate(1);
        let ctx = t.mint_trace().expect("rate 1 mints");
        assert!(ctx.sampled && ctx.trace_id != 0);
        t.set_sample_rate(u32::MAX);
        // Unsampled contexts still propagate…
        let unsampled = t.mint_trace().expect("context propagates unsampled");
        // (astronomically unlikely to hit the 1-in-2^32 sample)
        assert!(!unsampled.sampled);
        // …but their spans stay out of the ring.
        let before = t.events().len();
        let ev = SpanEvent {
            class: "q",
            stage: "exec",
            epoch: 0,
            shard: 0,
            start_ns: 1,
            dur_ns: 10,
            trace_id: unsampled.trace_id,
            span_id: t.next_span_id(),
            parent_id: unsampled.span_id,
            steals: 0,
        };
        t.submit(ev, unsampled.sampled);
        assert_eq!(t.events().len(), before);
    }

    #[test]
    fn slow_traces_pin_whole_groups_even_unsampled() {
        let t = Tracer::new();
        // Warm the EWMA with fast spans so the threshold arms low.
        for i in 0..EXEMPLAR_WARMUP {
            t.submit(
                SpanEvent {
                    class: "fast",
                    stage: "exec",
                    epoch: i,
                    shard: 0,
                    start_ns: i,
                    dur_ns: 100,
                    trace_id: 0,
                    span_id: t.next_span_id(),
                    parent_id: 0,
                    steals: 0,
                },
                true,
            );
        }
        let threshold = t.slow_threshold_ns();
        assert!(threshold < 10_000, "threshold should be ~8x the mean");
        // An unsampled slow trace: a fast child rides along with the
        // slow root, and both get pinned.
        let root = SpanEvent {
            class: "q",
            stage: "query",
            epoch: 9,
            shard: 0,
            start_ns: 1000,
            dur_ns: threshold * 2,
            trace_id: 77,
            span_id: 1,
            parent_id: 0,
            steals: 0,
        };
        let child = SpanEvent {
            class: "q",
            stage: "enqueue",
            epoch: 9,
            shard: 0,
            start_ns: 1000,
            dur_ns: 5,
            trace_id: 77,
            span_id: 2,
            parent_id: 1,
            steals: 0,
        };
        let ring_before = t.events().len();
        t.submit_all(&[child, root], false);
        assert_eq!(t.events().len(), ring_before, "unsampled: ring untouched");
        assert_eq!(t.exemplar_trace_ids(), vec![77]);
        assert_eq!(t.exemplars_pinned(), 1);
        let pinned = t.exemplar_events();
        assert_eq!(pinned.len(), 2, "the whole group pins, not just the root");
        assert!(pinned.iter().any(|e| e.stage == "enqueue"));
    }

    #[test]
    fn exemplar_store_keeps_the_slowest_traces() {
        let t = Tracer::new();
        for i in 0..EXEMPLAR_WARMUP {
            t.record("warm", i, 0, Instant::now());
        }
        let base = t.slow_threshold_ns();
        assert_ne!(base, u64::MAX);
        for i in 0..(EXEMPLAR_TRACES as u64 + 8) {
            let ev = SpanEvent {
                class: "q",
                stage: "query",
                epoch: i,
                shard: 0,
                start_ns: i,
                // Each pin raises the EWMA (and so the threshold), so
                // chase the live threshold: strictly increasing
                // durations that always cross it — the last 32 slowest.
                dur_ns: t.slow_threshold_ns().saturating_mul(2),
                trace_id: 1000 + i,
                span_id: t.next_span_id(),
                parent_id: 0,
                steals: 0,
            };
            t.submit(ev, true);
        }
        let ids = t.exemplar_trace_ids();
        assert_eq!(ids.len(), EXEMPLAR_TRACES);
        assert!(
            ids.iter().all(|&id| id >= 1008),
            "fastest pinned traces evicted first: {ids:?}"
        );
    }

    #[test]
    fn thread_context_propagates_and_restores() {
        assert_eq!(current(), None);
        let ctx = TraceContext {
            trace_id: 9,
            span_id: 4,
            sampled: true,
        };
        let seen = with_context(Some(ctx), || {
            let inner = current().expect("context visible inside closure");
            let child_ctx = inner.child(11);
            assert_eq!(child_ctx.trace_id, 9);
            assert_eq!(child_ctx.span_id, 11);
            inner
        });
        assert_eq!(seen, ctx);
        assert_eq!(current(), None, "context restored after the closure");

        // record() inside a context attaches trace identity.
        let t = Tracer::new();
        with_context(Some(ctx), || {
            set_chunk_stolen(true);
            t.record("traced", 5, 2, Instant::now());
            set_chunk_stolen(false);
        });
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].trace_id, 9);
        assert_eq!(evs[0].parent_id, 4);
        assert_eq!(evs[0].stage, "exec");
        assert_eq!(evs[0].steals, 1);
    }
}
