//! HDR-style log-bucketed histograms over `u64` samples.
//!
//! ## Bucketing scheme
//!
//! A histogram is parameterised by `grid_bits` *g* (sub-bucket
//! precision). Values below `2^(g+1)` are stored **exactly**: bucket
//! index = value. Above that, a value with binary exponent `e`
//! (`e = 63 - leading_zeros`, so `e ≥ g+1`) lands in one of `2^g`
//! sub-buckets for that exponent, keyed by the top `g` mantissa bits.
//! Each sub-bucket spans `2^(e-g)` consecutive values, so the relative
//! width of any bucket is at most `2^-g` of the values it holds.
//!
//! Quantile extraction returns the **upper edge** of the bucket holding
//! the target rank, which gives a one-sided error bound: for any
//! recorded distribution,
//!
//! ```text
//! true_quantile <= estimate <= true_quantile * (1 + 2^-grid_bits)
//! ```
//!
//! (exact below `2^(g+1)`). The property tests in
//! `tests/obsplane_props.rs` pin this bound against a sorted oracle.
//!
//! Recording is a single `fetch_add` on an atomic bucket (plus atomic
//! count/sum/max upkeep) — `&self`, wait-free, safe to share across
//! worker threads. [`Histogram::snapshot`] reads the buckets without
//! stopping writers; a snapshot taken concurrently with recording sees
//! a monotone prefix (never a torn or lost count once writers quiesce).

use std::sync::atomic::{AtomicU64, Ordering};

/// Default sub-bucket precision: relative quantile error ≤ 2^-6 ≈ 1.6 %.
pub const DEFAULT_GRID_BITS: u32 = 6;

#[inline]
fn bucket_count(grid_bits: u32) -> usize {
    // Exact region: 2^(g+1) buckets. Log region: exponents g+1 ..= 63,
    // each with 2^g sub-buckets. Total = 2^g * (65 - g).
    (1usize << grid_bits) * (65 - grid_bits as usize)
}

#[inline]
fn bucket_index(grid_bits: u32, v: u64) -> usize {
    let exact = 1u64 << (grid_bits + 1);
    if v < exact {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // e >= grid_bits + 1
        let sub = (v >> (e - grid_bits)) as usize - (1usize << grid_bits);
        exact as usize + (e - grid_bits - 1) as usize * (1usize << grid_bits) + sub
    }
}

/// The largest value mapping to bucket `i` (the quantile estimate the
/// snapshot reports for ranks landing in that bucket).
#[inline]
fn bucket_upper(grid_bits: u32, i: usize) -> u64 {
    let exact = 1usize << (grid_bits + 1);
    if i < exact {
        i as u64
    } else {
        let row = (i - exact) / (1usize << grid_bits);
        let sub = (i - exact) % (1usize << grid_bits);
        let e = row as u32 + grid_bits + 1;
        // lower + (width - 1), staged so the top bucket (upper edge
        // u64::MAX) does not overflow.
        let shift = e - grid_bits;
        let lower = ((1u64 << grid_bits) + sub as u64) << shift;
        lower + ((1u64 << shift) - 1)
    }
}

/// A concurrent log-bucketed histogram of `u64` samples (typically
/// nanoseconds). Shared by reference: recording is `&self`.
#[derive(Debug)]
pub struct Histogram {
    grid_bits: u32,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A histogram with the default precision ([`DEFAULT_GRID_BITS`]).
    pub fn new() -> Histogram {
        Histogram::with_grid_bits(DEFAULT_GRID_BITS)
    }

    /// A histogram with `grid_bits` sub-bucket precision (relative
    /// quantile error ≤ `2^-grid_bits`). Clamped to `1..=10`.
    pub fn with_grid_bits(grid_bits: u32) -> Histogram {
        let grid_bits = grid_bits.clamp(1, 10);
        let mut buckets = Vec::with_capacity(bucket_count(grid_bits));
        buckets.resize_with(bucket_count(grid_bits), || AtomicU64::new(0));
        Histogram {
            grid_bits,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The configured sub-bucket precision.
    pub fn grid_bits(&self) -> u32 {
        self.grid_bits
    }

    /// Records one sample. Wait-free; `&self`.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(self.grid_bits, v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a `Duration` as whole nanoseconds (saturating).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Captures a mergeable point-in-time view. Does not block writers;
    /// the per-bucket counts are a consistent-enough monotone read (the
    /// reported `count` is recomputed from the buckets so it always
    /// equals their sum).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = Vec::new();
        let mut total = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                counts.push((i as u32, n));
                total += n;
            }
        }
        HistogramSnapshot {
            grid_bits: self.grid_bits,
            counts,
            count: total,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// An immutable, mergeable view of a [`Histogram`]: sparse
/// `(bucket index, count)` pairs sorted by index, plus count/sum/max.
/// This is the unit that crosses the wire in `Frame::StatsScrapeRep`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Sub-bucket precision of the source histogram.
    pub grid_bits: u32,
    /// Sparse non-zero buckets, ascending by index.
    pub counts: Vec<(u32, u64)>,
    /// Total samples (always the sum of `counts`).
    pub count: u64,
    /// Sum of all recorded values (mean = `sum / count`).
    pub sum: u64,
    /// Exact maximum recorded value (not bucket-rounded).
    pub max: u64,
}

impl HistogramSnapshot {
    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The estimated `q`-quantile (`0.0 ..= 1.0`) as the upper edge of
    /// the bucket holding the target rank — so the estimate is ≥ the
    /// true quantile and within a `2^-grid_bits` relative factor above
    /// it. Returns 0 for an empty snapshot. The exact `max` is reported
    /// for `q = 1.0` (tighter than the top bucket's edge).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q.max(0.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, n) in &self.counts {
            cum += n;
            if cum >= rank {
                return bucket_upper(self.grid_bits, i as usize).min(self.max);
            }
        }
        self.max
    }

    /// The `{p50, p95, p99, max}` summary the bench JSON publishes.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            count: self.count,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }

    /// Folds `other` into `self`. Merging is associative and
    /// commutative, and merging N snapshots equals recording all their
    /// samples into one histogram (pinned by `tests/obsplane_props.rs`).
    ///
    /// # Panics
    ///
    /// When the two snapshots disagree on `grid_bits` (their buckets
    /// are not alignable) — a registry-naming bug, not a data state.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.grid_bits, other.grid_bits,
            "cannot merge histograms with different grid_bits"
        );
        let mut merged = Vec::with_capacity(self.counts.len() + other.counts.len());
        let (mut a, mut b) = (
            self.counts.iter().peekable(),
            other.counts.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, nb));
                        b.next();
                    } else {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.counts = merged;
        self.count += other.count;
        // Wrapping, exactly like the histogram's atomic accumulation —
        // saturation would break merge associativity once a sum pegged.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// A `{count, p50, p95, p99, max}` latency summary (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Percentiles {
    pub count: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_exact() {
        let h = Histogram::with_grid_bits(4);
        for v in 0..32 {
            h.record(v);
        }
        let s = h.snapshot();
        for v in 0..32u64 {
            let q = (v + 1) as f64 / 32.0;
            assert_eq!(s.quantile(q), v);
        }
    }

    #[test]
    fn bucket_roundtrip_bounds() {
        for g in 1..=8u32 {
            for &v in &[0u64, 1, 5, 127, 128, 1000, 65_535, 1 << 30, u64::MAX] {
                let i = bucket_index(g, v);
                let hi = bucket_upper(g, i);
                assert!(hi >= v, "g={g} v={v}: upper {hi} < value");
                // Upper edge within 2^-g relative error.
                assert!(hi - v <= v >> g, "g={g} v={v} hi={hi}");
                // Upper edge maps back to the same bucket.
                assert_eq!(bucket_index(g, hi), i, "g={g} v={v}");
            }
        }
    }

    #[test]
    fn max_is_exact() {
        let h = Histogram::new();
        h.record(1_000_003);
        h.record(17);
        let s = h.snapshot();
        assert_eq!(s.max, 1_000_003);
        assert_eq!(s.quantile(1.0), 1_000_003);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = Histogram::new();
        h.record(42);
        let mut a = h.snapshot();
        let before = a.clone();
        a.merge(&HistogramSnapshot::default());
        assert_eq!(a, before);
        let mut b = HistogramSnapshot::default();
        b.merge(&before);
        assert_eq!(b, before);
    }
}
