//! The metric registry: named counters, gauges and histograms with
//! register-or-get handles and mergeable whole-registry snapshots.
//!
//! Handles are `Arc`s resolved **once** (at plane construction) and
//! then bumped lock-free on the hot path; the registry's interior lock
//! is only taken to register a new name or to snapshot. Names are flat
//! dotted strings (`"queryplane.exec_ns.top_k"`), ordered — and
//! therefore diffed and wire-encoded — by `BTreeMap`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::trace::Tracer;

/// A monotone atomic counter. Shared by `Arc`; all ops are `&self`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Current value, resetting the counter to zero in the same atomic
    /// step. This is what lets a long-lived accumulator (the query
    /// plane's per-worker fan-out scratch) be drained per query without
    /// reallocating the counters.
    #[inline]
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A signed instantaneous gauge (queue depths, connection counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One process-local registry of named metrics plus an embedded span
/// [`Tracer`]. Each plane owns (or shares) one behind an `Arc`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    hists: RwLock<BTreeMap<String, Arc<Histogram>>>,
    tracer: Tracer,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register-or-get the counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            return Arc::clone(c);
        }
        let mut w = self.counters.write().unwrap();
        Arc::clone(
            w.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Register-or-get the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().unwrap().get(name) {
            return Arc::clone(g);
        }
        let mut w = self.gauges.write().unwrap();
        Arc::clone(
            w.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Register-or-get the histogram called `name` (default precision).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.hists.read().unwrap().get(name) {
            return Arc::clone(h);
        }
        let mut w = self.hists.write().unwrap();
        Arc::clone(
            w.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// The embedded span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Captures every registered metric into one mergeable, orderable,
    /// wire-encodable value.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let hists = self
            .hists
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            hists,
        }
    }
}

/// A point-in-time view of a whole [`MetricsRegistry`]. This is the
/// payload of a `StatsScrape` reply; [`RegistrySnapshot::merge`] folds
/// per-shard scrapes into cluster totals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub hists: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// The named counter's value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram's snapshot, if recorded.
    pub fn hist(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.hists.get(name)
    }

    /// Folds `other` into `self`: counters add, gauges add (a summed
    /// gauge reads as a cluster total), histograms bucket-merge.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_or_get_returns_same_instance() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(r.snapshot().counter("x"), 4);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_hists() {
        let r1 = MetricsRegistry::new();
        let r2 = MetricsRegistry::new();
        r1.counter("c").add(2);
        r2.counter("c").add(5);
        r1.histogram("h").record(10);
        r2.histogram("h").record(20);
        r2.gauge("g").set(-3);
        let mut m = r1.snapshot();
        m.merge(&r2.snapshot());
        assert_eq!(m.counter("c"), 7);
        assert_eq!(m.gauges["g"], -3);
        assert_eq!(m.hist("h").unwrap().count, 2);
        assert_eq!(m.hist("h").unwrap().max, 20);
    }
}
