//! # obsplane — the observability plane
//!
//! One std-only metrics layer shared by every plane in the workspace,
//! replacing the ad-hoc counter structs (`ShardFanout`,
//! `RouterCounters`, `QueryPlaneStats`, `StreamStats`) that each crate
//! grew independently. Three primitives:
//!
//! * **[`Counter`] / [`Gauge`]** — relaxed atomics behind `Arc`
//!   handles; the planes resolve handles once at construction and bump
//!   them lock-free on the hot path. The legacy stats structs survive
//!   as *thin views* assembled from these on demand.
//! * **[`Histogram`]** — HDR-style log-bucketed latency histograms
//!   (`grid_bits` sub-bucket precision, relative quantile error
//!   ≤ `2^-grid_bits`) with mergeable [`HistogramSnapshot`]s and
//!   p50/p95/p99/max extraction. Query execution, window close,
//!   delta apply, incident lag and wire encode/decode/RTT all record
//!   here.
//! * **[`Tracer`]** — a sharded lock-free ring of completed spans with
//!   causal identity ([`TraceContext`]: 64-bit trace ids + parent span
//!   ids), head sampling, and a tail-latency flight recorder that pins
//!   slow-query span trees as exemplars. See `DESIGN.md` §18.
//!
//! A [`MetricsRegistry`] binds names to metrics and snapshots the lot
//! into a [`RegistrySnapshot`] — the mergeable, wire-encodable unit
//! `wireplane` ships in `Frame::StatsScrapeRep` so
//! `WireClient::scrape_stats()` can pull a live cluster's histograms.
//! [`export::write_atomic`] rounds the crate out: temp-file + rename
//! writes for bench/experiment JSON artifacts.
//!
//! See `DESIGN.md` §14 for the bucketing scheme, span model and scrape
//! frame layout.

pub mod export;
pub mod hist;
pub mod registry;
pub mod trace;

pub use export::write_atomic;
pub use hist::{Histogram, HistogramSnapshot, Percentiles, DEFAULT_GRID_BITS};
pub use registry::{Counter, Gauge, MetricsRegistry, RegistrySnapshot};
pub use trace::{
    chunk_stolen, current, set_chunk_stolen, with_context, SpanEvent, SpanGuard, TraceContext,
    Tracer, DEFAULT_TRACE_CAPACITY,
};
