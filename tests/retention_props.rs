//! The retention subsystem's contract:
//!
//! (a) **GC stays delta-expressible.** Any interleaving of simulation
//!     advance, retention sweep (`switchpointer::retention::sweep` — store
//!     eviction + archived-pointer retirement, per directory shard) and
//!     `Snapshot::apply_delta` yields a snapshot equal (full frozen-state
//!     equality) to a fresh `Snapshot::capture` of the truncated live
//!     state at the same instant — at 1/2/4/8 directory shards.
//! (b) **The budget is a bound.** With no pins, a budgeted sweep leaves at
//!     most `shard_record_budget` records resident per directory shard.
//! (c) **Retained epochs keep their answers.** After a sweep, every
//!     filter-class read and pointer union over epochs at or above the
//!     applied floor — and every pointer-presence diagnosis over a
//!     retained window — is identical to an unswept twin deployment
//!     driven by the same deterministic schedule.
//! (d) **Pins floor the sweep.** A pinned shard never collects at or above
//!     its pin, even when that keeps it over budget (reported, not
//!     violated).
//!
//! Plus the satellite fix: `SnapshotDelta::savings()` over an all-GC'd
//! (empty) delta is 0.0 — the direct unit test lives with the type in
//! `queryplane::snapshot`; the integration-level check here drives a real
//! all-evicted deployment through the plane.

use proptest::prelude::*;
use suite::netsim::prelude::*;
use suite::queryplane::Snapshot;
use suite::switchpointer::query::QueryRequest;
use suite::switchpointer::retention::{self, RetentionPolicy};
use suite::switchpointer::testbed::{Testbed, TestbedConfig};
use suite::telemetry::EpochRange;

/// The chain fixture of the streamplane props, with a shallow 2×2 pointer
/// hierarchy so top-level sets archive every 2 epochs and retirement has
/// something to reclaim inside short runs.
fn chain_testbed() -> (Testbed, FlowId) {
    let topo = Topology::chain(3, 2, GBPS);
    let mut cfg = TestbedConfig::default_ms();
    cfg.pointer_alpha = 2;
    cfg.pointer_k = 2;
    let mut tb = Testbed::new(topo, cfg);
    let (a, b) = (tb.node("A"), tb.node("B"));
    let (d, f) = (tb.node("D"), tb.node("F"));
    let long_flow = tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: f,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(30),
        rate_bps: 80_000_000,
        payload_bytes: 1458,
    });
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: b,
        dst: d,
        priority: Priority::LOW,
        start: SimTime::from_ms(4),
        duration: SimTime::from_ms(10),
        rate_bps: 60_000_000,
        payload_bytes: 1000,
    });
    tb.sim.add_tcp_flow(TcpFlowSpec::transfer(
        d,
        a,
        Priority::LOW,
        SimTime::ZERO,
        400_000,
    ));
    (tb, long_flow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// (a) + (b): arbitrary advance / sweep / delta interleavings, with
    /// sweeps of varying horizon and budget, leave `apply_delta` equal to
    /// a from-scratch capture of the truncated state — at every directory
    /// shard count the partition can take.
    #[test]
    fn delta_with_gc_equals_fresh_capture_of_truncated_state(
        steps in prop::collection::vec(
            (1u64..4, any::<bool>(), prop::option::of((0u64..12, 0usize..4))),
            1..8,
        ),
        shards in 1usize..6,
        dir_idx in 0usize..4,
    ) {
        let dir_shards = [1usize, 2, 4, 8][dir_idx];
        let (mut tb, _) = chain_testbed();
        let analyzer = tb.analyzer();
        let mut snap = Snapshot::capture_with(&analyzer, shards, dir_shards);
        let mut t_ms = 0u64;
        let mut swept = false;
        for (advance_ms, refresh_now, sweep_cfg) in steps {
            t_ms += advance_ms;
            tb.sim.run_until(SimTime::from_ms(t_ms));
            if let Some((keep_epochs, budget_idx)) = sweep_cfg {
                let budget = [usize::MAX, 24, 6, 0][budget_idx];
                let report = retention::sweep(
                    &analyzer,
                    RetentionPolicy { keep_epochs, shard_record_budget: budget },
                    dir_shards,
                    &[],
                );
                swept |= report.reclaimed_anything();
                // (b) With no pins the budget is a hard per-shard bound.
                prop_assert!(
                    report.over_budget_shards.is_empty(),
                    "unpinned sweeps can always meet the budget"
                );
                if budget != usize::MAX {
                    for (s, &resident) in report.resident_per_shard.iter().enumerate() {
                        prop_assert!(
                            resident <= budget,
                            "shard {s} resident {resident} > budget {budget}"
                        );
                    }
                }
            }
            if refresh_now {
                snap.apply_delta(&analyzer);
            }
        }
        // Wherever the interleaving left off, one final delta must land
        // the layered snapshot exactly on a freeze of the truncated state.
        snap.apply_delta(&analyzer);
        let fresh = Snapshot::capture_with(&analyzer, shards, dir_shards);
        prop_assert!(
            snap == fresh,
            "GC'd delta-applied snapshot diverged from fresh capture at t={}ms \
             (shards={}, dir_shards={}, swept={})",
            t_ms, shards, dir_shards, swept
        );
        // And a delta over an unchanged (possibly truncated) deployment is
        // empty.
        let idle = snap.apply_delta(&analyzer);
        prop_assert!(idle.is_empty());
    }
}

/// (c): a swept deployment answers identically to an unswept twin over
/// every epoch at or above the applied floor — store filter reads, pointer
/// unions, and a full pointer-presence diagnosis.
#[test]
fn retained_epochs_answer_identically_to_an_unswept_twin() {
    let (mut swept_tb, flow) = chain_testbed();
    let (mut twin_tb, _) = chain_testbed();
    swept_tb.sim.run_until(SimTime::from_ms(20));
    twin_tb.sim.run_until(SimTime::from_ms(20));
    let swept = swept_tb.analyzer();
    let twin = twin_tb.analyzer();

    let report = retention::sweep(&swept, RetentionPolicy::horizon(8), 4, &[]);
    assert!(
        report.records_evicted > 0,
        "the finished D->A transfer must be reclaimable"
    );
    assert!(
        report.archived_retired > 0,
        "a 2-epoch top span must leave retirable archives behind the floor"
    );
    let floor = report.floor_per_shard.iter().copied().min().unwrap();
    assert_eq!(floor, report.policy_floor, "no pins, no budget pressure");
    let horizon = report.newest_epoch;
    assert!(floor > 0 && horizon > floor);

    let retained = EpochRange {
        lo: floor,
        hi: horizon,
    };
    // Store-level filter reads over the retained window are identical.
    for host in swept.all_hosts() {
        for sw in swept.all_switches() {
            let a: Vec<_> = swept_tb.hosts[&host]
                .borrow()
                .store
                .flows_matching(sw, retained)
                .into_iter()
                .cloned()
                .collect();
            let b: Vec<_> = twin_tb.hosts[&host]
                .borrow()
                .store
                .flows_matching(sw, retained)
                .into_iter()
                .cloned()
                .collect();
            assert_eq!(a, b, "filter reads diverged at host {host} switch {sw}");
        }
    }
    // Pointer unions over retained epochs are identical bit sets, while
    // the swept archive actually shrank.
    let mut retired_somewhere = false;
    for sw in swept.all_switches() {
        let a = swept_tb.switches[&sw].borrow();
        let b = twin_tb.switches[&sw].borrow();
        assert_eq!(
            a.pointers.pointer_union(retained.lo, retained.hi),
            b.pointers.pointer_union(retained.lo, retained.hi),
            "pointer union diverged at {sw}"
        );
        retired_somewhere |= a.pointers.archive_retired() > 0;
        assert!(a.pointers.archive_logical_len() == b.pointers.archive().len());
    }
    assert!(retired_somewhere);
    // Trigger logs trim with the records: something below the floor was
    // reclaimed (the finished transfer's completion trigger), and every
    // swept log is a suffix of its twin — trimming only ever drops a
    // time-ordered prefix.
    assert!(
        report.triggers_trimmed > 0,
        "the transfer-completion trigger predates the floor"
    );
    for host in swept.all_hosts() {
        let a = swept_tb.hosts[&host].borrow().triggers().to_vec();
        let b = twin_tb.hosts[&host].borrow().triggers().to_vec();
        assert!(
            b.ends_with(&a),
            "swept trigger log must be a suffix of the twin's at {host}"
        );
    }
    // A presence diagnosis over the retained window renders identically
    // end-to-end (pointer probes only touch live/retained state).
    let probe = QueryRequest::SilentDrop {
        flow,
        src: swept_tb.node("A"),
        dst: swept_tb.node("F"),
        range: retained,
    };
    assert_eq!(
        format!("{:?}", swept.execute(&probe)),
        format!("{:?}", twin.execute(&probe)),
        "retained-window presence diagnosis must not see the sweep"
    );
}

/// (d): pins floor the sweep per shard — a pinned shard keeps everything
/// at or above its pin even under a budget that would otherwise evict, and
/// the shard is reported over budget rather than violated.
#[test]
fn pins_floor_the_sweep_and_win_over_the_budget() {
    let (mut tb, _) = chain_testbed();
    tb.sim.run_until(SimTime::from_ms(20));
    let analyzer = tb.analyzer();
    let before: usize = analyzer
        .all_hosts()
        .iter()
        .map(|h| tb.hosts[h].borrow().store.len())
        .sum();
    assert!(before > 0);

    // One shard, pinned at epoch 0, budget 0: nothing may be collected.
    let report = retention::sweep(&analyzer, RetentionPolicy::budgeted(2, 0), 1, &[Some(0)]);
    assert_eq!(report.floor_per_shard, vec![0]);
    assert_eq!(report.records_evicted, 0, "pin at 0 forbids all eviction");
    assert_eq!(report.archived_retired, 0);
    assert_eq!(
        report.over_budget_shards,
        vec![0],
        "best effort is reported"
    );
    let after: usize = analyzer
        .all_hosts()
        .iter()
        .map(|h| tb.hosts[h].borrow().store.len())
        .sum();
    assert_eq!(before, after);

    // Unpinned, the same policy reclaims down to the budget.
    let report = retention::sweep(&analyzer, RetentionPolicy::budgeted(2, 0), 1, &[]);
    assert!(report.records_evicted > 0);
    assert_eq!(report.resident_per_shard, vec![0]);
}

/// The satellite fix, driven end-to-end: a sweep that reclaims every flow
/// record leaves the snapshot's record side at zero without `savings()`
/// ever going NaN. (The live pointer hierarchies keep their slot arrays,
/// so a real deployment's `full_slots` never reaches zero — the exact
/// 0/0 guard is pinned by the direct unit test in `queryplane::snapshot`.)
#[test]
fn savings_is_zero_not_nan_after_an_all_reclaiming_sweep() {
    let (mut tb, _) = chain_testbed();
    tb.sim.run_until(SimTime::from_ms(6));
    let analyzer = tb.analyzer();
    let mut plane = suite::queryplane::QueryPlane::from_analyzer(
        &analyzer,
        suite::queryplane::QueryPlaneConfig {
            retention: Some(RetentionPolicy::budgeted(0, 0)),
            ..Default::default()
        },
    );
    // Let every flow finish so the budget-0 sweep can reclaim everything.
    tb.sim.run_until(SimTime::from_ms(36));
    let report = plane
        .sweep_retention(&analyzer, &[])
        .expect("retention configured");
    assert_eq!(report.resident_total(), 0, "budget 0 reclaims every record");
    let delta = plane.refresh_delta(&analyzer);
    assert_eq!(delta.full_records, 0);
    assert_eq!(plane.snapshot().total_records(), 0);
    // The idle delta over the emptied deployment never divides 0/0.
    let idle = plane.refresh_delta(&analyzer);
    assert!(idle.is_empty());
    assert!(!idle.savings().is_nan());
    // A record-only ratio (what an all-GC'd host plane would report) is
    // the guarded case: zero on both sides ⇒ 0.0, not NaN.
    let record_side = suite::queryplane::SnapshotDelta {
        cloned_records: idle.cloned_records,
        full_records: idle.full_records,
        ..Default::default()
    };
    assert_eq!(record_side.savings(), 0.0);
}
