//! Hostile-input hardening: the host-side telemetry decoder processes
//! whatever arrives off the wire. Arbitrary, malformed or adversarial tag
//! stacks must never panic it — they may only yield `Err` or a
//! topologically consistent decode.

use netsim::packet::{FlowId, Packet, Priority, Protocol, VlanTag};
use netsim::time::SimTime;
use netsim::topology::{Topology, GBPS};
use proptest::prelude::*;
use telemetry::{EmbedMode, EpochParams, PathCodec, TelemetryDecoder};

fn decoder(topo: &Topology, mode: EmbedMode) -> TelemetryDecoder {
    TelemetryDecoder::new(
        PathCodec::new(topo.clone()),
        EpochParams::paper_defaults(),
        mode,
    )
}

fn arbitrary_packet(topo: &Topology, src_i: usize, dst_i: usize, tags: Vec<(u16, u16)>) -> Packet {
    let hosts = topo.hosts();
    let src = hosts[src_i % hosts.len()];
    let mut dst = hosts[dst_i % hosts.len()];
    if dst == src {
        dst = hosts[(dst_i + 1) % hosts.len()];
    }
    Packet {
        id: 0,
        flow: FlowId(1),
        src,
        dst,
        protocol: Protocol::Udp,
        priority: Priority::LOW,
        payload: 100,
        tcp: None,
        tags: tags
            .into_iter()
            .map(|(tpid, vid)| VlanTag {
                tpid,
                vid: vid & 0xFFF,
            })
            .collect(),
        sent_at: SimTime::ZERO,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary tag stacks on arbitrary host pairs: decode never panics,
    /// and successful decodes name only switches of the topology.
    #[test]
    fn decoder_never_panics_on_arbitrary_tags(
        src_i in 0usize..16,
        dst_i in 0usize..16,
        tags in prop::collection::vec((any::<u16>(), any::<u16>()), 0..8),
        host_time_ms in 0u64..100_000,
        leaf_spine in any::<bool>(),
    ) {
        let topo = if leaf_spine {
            Topology::leaf_spine(3, 2, 3, GBPS)
        } else {
            Topology::fat_tree(4, GBPS)
        };
        let pkt = arbitrary_packet(&topo, src_i, dst_i, tags);
        for mode in [EmbedMode::Commodity, EmbedMode::Int] {
            let dec = decoder(&topo, mode);
            // Rejecting garbage (Err) is a correct outcome; only successful
            // decodes carry obligations.
            if let Ok(d) = dec.decode(&pkt, SimTime::from_ms(host_time_ms)) {
                prop_assert!(!d.hops.is_empty());
                prop_assert!(d.tag_idx < d.hops.len());
                // INT mode trusts switch VIDs; only commodity decodes
                // must map onto real switches of this topology.
                if mode == EmbedMode::Commodity {
                    for h in &d.hops {
                        prop_assert!(
                            topo.is_switch(h.switch),
                            "decoded a non-switch node {}",
                            h.switch
                        );
                    }
                }
            }
        }
    }

    /// Forged *plausible* link tags (a real link VID, but possibly
    /// inconsistent with the packet's endpoints) either get rejected or
    /// produce a path that starts at the source's switch and ends adjacent
    /// to the destination.
    #[test]
    fn forged_link_tags_stay_consistent(
        src_i in 0usize..12,
        dst_i in 0usize..12,
        link_vid in 0u16..48,
        epoch_vid in 0u16..4096,
    ) {
        let topo = Topology::leaf_spine(3, 2, 2, GBPS);
        let mut pkt = arbitrary_packet(&topo, src_i, dst_i, vec![]);
        pkt.tags.push(VlanTag { tpid: 0x88A8, vid: link_vid % topo.num_links() as u16 });
        pkt.tags.push(VlanTag { tpid: 0x8100, vid: epoch_vid });
        let dec = decoder(&topo, EmbedMode::Commodity);
        if let Ok(d) = dec.decode(&pkt, SimTime::from_ms(50)) {
            let path = d.path();
            // First switch must be adjacent to the claimed source.
            let first = path[0];
            prop_assert!(
                topo.ports(first).iter().any(|&(_, p)| p == pkt.src),
                "path head {} not adjacent to src {}",
                first,
                pkt.src
            );
            // Last switch must be adjacent to the destination.
            let last = *path.last().unwrap();
            prop_assert!(
                topo.ports(last).iter().any(|&(_, p)| p == pkt.dst),
                "path tail {} not adjacent to dst {}",
                last,
                pkt.dst
            );
        }
    }
}
