//! The paper's §3 worked example, step by step: "how a network operator
//! can use SwitchPointer to monitor and debug the too many red lights
//! problem". Each assertion corresponds to a sentence of the walkthrough.

use netsim::prelude::*;
use switchpointer::testbed::{Testbed, TestbedConfig};

#[test]
fn section3_worked_example() {
    // Fixture: Fig. 1(b) — A..F on S1-S2-S3; victim TCP A->F; sequential
    // high-priority UDP B-D then C-E.
    let mut tb = Testbed::new(Topology::chain(3, 2, GBPS), TestbedConfig::default_ms());
    let (a, b, c, d, e, f) = (
        tb.node("A"),
        tb.node("B"),
        tb.node("C"),
        tb.node("D"),
        tb.node("E"),
        tb.node("F"),
    );
    let victim = tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
        a,
        f,
        Priority::LOW,
        SimTime::from_ms(30),
    ));
    tb.sim.add_udp_flow(UdpFlowSpec::burst(
        b,
        d,
        Priority::HIGH,
        SimTime::from_us(12_000),
        SimTime::from_us(400),
        GBPS,
    ));
    tb.sim.add_udp_flow(UdpFlowSpec::burst(
        c,
        e,
        Priority::HIGH,
        SimTime::from_us(12_400),
        SimTime::from_us(400),
        GBPS,
    ));
    tb.sim.run_until(SimTime::from_ms(30));

    // "The destination end-host of the victim TCP flow A-F detects a large
    //  throughput drop and triggers the event."
    let host_f = tb.hosts[&f].borrow();
    let trigger = *host_f
        .first_trigger_for(victim)
        .expect("F must raise the trigger");
    assert!(trigger.cur_bytes * 2 < trigger.prev_bytes);

    // "The analyzer module internally queries the destination end-host for
    //  flow A-F to extract the trajectory of its packets (switches S1, S2
    //  and S3 in this example) and the corresponding epochIDs."
    let alert = host_f.alert_payload(&trigger).expect("alert payload");
    let (s1, s2, s3) = (tb.node("S1"), tb.node("S2"), tb.node("S3"));
    assert_eq!(
        alert
            .per_switch
            .iter()
            .map(|sw| sw.switch)
            .collect::<Vec<_>>(),
        vec![s1, s2, s3],
        "trajectory = S1, S2, S3"
    );
    assert!(alert.per_switch.iter().all(|sw| !sw.epochs.is_empty()));
    drop(host_f);

    // "...uses this information to extract the pointers from the three
    //  switches (for corresponding epochs), and returns the relevant
    //  pointers corresponding to the end-hosts that store the relevant
    //  headers for flows that contended with the victim TCP flow
    //  (D and E in this example)."
    let analyzer = tb.analyzer();
    let range = analyzer.epoch_window(&trigger, tb.cfg.trigger.window);
    let mut pointed: std::collections::BTreeSet<NodeId> = std::collections::BTreeSet::new();
    for sw in [s1, s2, s3] {
        let hosts = analyzer.hosts_for(sw, range);
        let reduced = analyzer.reduce_search_radius(sw, f, victim, hosts);
        pointed.extend(reduced.into_iter().filter(|&h| h != f));
    }
    assert!(pointed.contains(&d), "pointer must name D");
    assert!(pointed.contains(&e), "pointer must name E");

    // "The operator then filters the relevant headers from the end-hosts
    //  to learn that flow A-F contended with flow B-D and C-E" — the full
    //  diagnosis concludes both flows contributed, in about 30 ms.
    let diag = analyzer.diagnose_red_lights(victim, f, tb.cfg.trigger.window);
    let culprit_pairs: std::collections::BTreeSet<(NodeId, NodeId)> = diag
        .per_switch
        .iter()
        .flat_map(|(_, cs)| cs.iter().map(|cu| (cu.src, cu.dst)))
        .collect();
    assert!(culprit_pairs.contains(&(b, d)));
    assert!(culprit_pairs.contains(&(c, e)));
    let total_ms = diag.breakdown.total().as_ms_f64();
    assert!(
        (15.0..60.0).contains(&total_ms),
        "paper: 'concludes (in about 30 ms)'; measured {total_ms:.1} ms"
    );
}
