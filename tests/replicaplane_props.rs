//! The replication subsystem's contract:
//!
//! (a) **No divergence, ever.** Under any random interleaving of delta
//!     appends, retention sweeps, primary kills, and fresh-standby
//!     bootstraps — at 1/2/4/8 shards — every live replica's served
//!     state equals the owner's authoritative slice **bit for bit** at
//!     every applied seq, and its log position equals the owner's head.
//! (b) **Gaps are typed, never silent.** A replica refuses an
//!     out-of-sequence append with [`WireError::SeqGap`] naming exactly
//!     the seq it expects; the in-sequence append then succeeds.
//! (c) **Publication is observable.** The owner's `repl.*` metrics
//!     account one publish per refresh, every bootstrap, and a lag of
//!     zero once every live replica acked the head.

use netsim::prelude::*;
use proptest::rng_for;
use queryplane::{DeltaRecord, RetentionPolicy};
use replicaplane::ReplicaCluster;
use switchpointer::retention;
use switchpointer::testbed::{Testbed, TestbedConfig};
use telemetry::frame::WireError;
use wireplane::{ReplicaWriter, RetryPolicy, WireCluster, WireConfig};

/// A chain with steady cross-traffic, so every few-ms advance journals a
/// non-trivial delta (new epochs on every switch, record growth on the
/// endpoints' hosts).
fn replication_testbed() -> Testbed {
    let topo = Topology::chain(3, 2, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, b) = (tb.node("A"), tb.node("B"));
    let (d, f) = (tb.node("D"), tb.node("F"));
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: f,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(60),
        rate_bps: 80_000_000,
        payload_bytes: 1458,
    });
    tb.sim.add_tcp_flow(TcpFlowSpec::transfer(
        d,
        b,
        Priority::LOW,
        SimTime::ZERO,
        400_000,
    ));
    tb
}

/// Asserts every live replica of every shard sits at the owner's head
/// and serves a state bit-identical to the owner's slice.
fn assert_no_divergence(cluster: &ReplicaCluster, n_shards: usize, ctx: &str) {
    let heads = cluster.heads();
    let applied = cluster.applied_seqs();
    for s in 0..n_shards {
        let owner = cluster.owner_slice(s);
        let mut live = 0;
        for (r, a) in applied[s].iter().enumerate() {
            let Some(a) = a else { continue };
            live += 1;
            assert_eq!(*a, heads[s], "{ctx}: shard {s} replica {r} lagging");
            let state = cluster.replica_state(s, r).expect("live replica");
            assert!(
                state.view == owner,
                "{ctx}: shard {s} replica {r} diverged from owner"
            );
        }
        assert!(live >= 1, "{ctx}: shard {s} lost every replica");
    }
}

/// (a) — the tentpole pin. Random walks over {advance+publish, sweep,
/// add fresh standby, kill a replica}, at every shard count, with the
/// log capacity small enough that a bootstrap is forced whenever a
/// standby joins late.
#[test]
fn replicas_bit_identical_at_every_applied_seq_under_random_interleavings() {
    for n_shards in [1usize, 2, 4, 8] {
        let mut rng = rng_for("replica divergence");
        let mut tb = replication_testbed();
        tb.sim.run_until(SimTime::from_ms(5));
        let analyzer = tb.analyzer();
        let cluster =
            ReplicaCluster::launch_with(&analyzer, n_shards, 2, WireConfig::default(), 3).unwrap();
        assert_no_divergence(&cluster, n_shards, "at launch");

        let mut now_ms = 5u64;
        let mut killed_one = false;
        for step in 0..14 {
            match rng.below(4) {
                // Advance the deployment and publish the delta.
                0 | 1 => {
                    now_ms += 1 + rng.below(3);
                    tb.sim.run_until(SimTime::from_ms(now_ms));
                }
                // Retention sweep: mutates the live deployment; the
                // reclamation must ride the next published record.
                2 => {
                    let policy = RetentionPolicy {
                        keep_epochs: 4 + rng.below(12),
                        shard_record_budget: usize::MAX,
                    };
                    retention::sweep(&analyzer, policy, n_shards, &[]);
                }
                // A fresh standby joins mid-flight: spawned from the
                // owner's current slice, snapshot-bootstrapped to the
                // head, then fed in sequence like everyone else.
                _ => {
                    let shard = rng.below(n_shards as u64) as usize;
                    cluster.add_standby(shard).unwrap();
                }
            }
            // Kill one primary exactly once, mid-walk: the standbys must
            // carry the shard alone from then on.
            if step == 7 {
                let shard = rng.below(n_shards as u64) as usize;
                assert!(cluster.kill_primary(shard));
                killed_one = true;
            }
            cluster.refresh(&analyzer);
            assert_no_divergence(&cluster, n_shards, &format!("step {step}"));
        }
        assert!(killed_one);

        // (c) Publication accounting: one publish per refresh, at least
        // one bootstrap per standby added, zero lag at rest.
        let owner = cluster.owner_metrics().snapshot();
        assert_eq!(owner.counter("repl.published"), 14);
        assert_eq!(
            owner.gauges.get("repl.lag").copied(),
            Some(0),
            "lag must be zero once every live replica acked the head"
        );
        cluster.shutdown();
    }
}

/// (b) — the seq protocol, driven raw: a writer that skips ahead gets a
/// typed `SeqGap` naming the seq the replica expects; supplying exactly
/// that seq succeeds.
#[test]
fn out_of_sequence_appends_refuse_with_a_typed_gap() {
    let mut tb = replication_testbed();
    tb.sim.run_until(SimTime::from_ms(5));
    let analyzer = tb.analyzer();
    let cluster = WireCluster::launch(&analyzer, 1, WireConfig::default()).unwrap();

    // One in-band refresh: the shard's replication log is at seq 1.
    tb.sim.run_until(SimTime::from_ms(8));
    cluster.refresh(&analyzer);
    assert_eq!(cluster.applied_seqs(), vec![1]);

    // A second writer skips to seq 7: typed refusal, position unmoved.
    let addr = cluster.shard_addrs()[0];
    let w = ReplicaWriter::connect(
        0,
        addr,
        WireConfig::default().max_frame,
        RetryPolicy::immediate(1),
    )
    .unwrap();
    match w.append(7, &DeltaRecord::default()) {
        Err(WireError::SeqGap { expected, got }) => {
            assert_eq!((expected, got), (2, 7));
        }
        other => panic!("expected SeqGap, got {other:?}"),
    }
    assert_eq!(
        cluster.applied_seqs(),
        vec![1],
        "refused append must not move the log"
    );

    // The seq it asked for lands (an empty record is a valid no-op).
    assert_eq!(w.append(2, &DeltaRecord::default()).unwrap(), 2);
    assert_eq!(cluster.applied_seqs(), vec![2]);

    // Status probe agrees.
    assert_eq!(w.status().unwrap(), 2);
    cluster.shutdown();
}

/// The server survives a malformed replication payload: a frame whose
/// record bytes are garbage yields a typed error reply on that
/// connection, and the replica's state and log position are untouched.
#[test]
fn corrupt_replication_frames_never_move_the_log() {
    let mut tb = replication_testbed();
    tb.sim.run_until(SimTime::from_ms(5));
    let analyzer = tb.analyzer();
    let cluster = WireCluster::launch(&analyzer, 1, WireConfig::default()).unwrap();
    let before = format!("{:?}", cluster.applied_seqs());

    // A snapshot install whose view bytes are garbage: typed error.
    let addr = cluster.shard_addrs()[0];
    let w = ReplicaWriter::connect(
        0,
        addr,
        WireConfig::default().max_frame,
        RetryPolicy::immediate(1),
    )
    .unwrap();
    assert!(w.install(1, vec![0xA5; 32]).is_err());
    assert_eq!(format!("{:?}", cluster.applied_seqs()), before);

    // The same connection still serves well-formed traffic afterwards.
    assert_eq!(w.status().unwrap(), 0);
    cluster.shutdown();
}
