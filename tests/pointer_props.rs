//! Property-based tests of the hierarchical pointer structure against a
//! reference model: a plain set of (address, epoch) facts.
//!
//! Invariants (DESIGN.md §7):
//! * never a false negative while the epoch is within the top level's span
//!   or archived;
//! * exact (level-1) answers agree exactly with the model while live;
//! * coarse answers may widen (false positives) but only within the
//!   covering slot's span;
//! * flush accounting matches the number of archived sets.

use std::collections::HashSet;
use std::sync::Arc;

use mphf::Mphf;
use proptest::prelude::*;
use switchpointer::pointer::{PointerConfig, PointerHierarchy};

const N_HOSTS: usize = 32;

fn addrs() -> Vec<u64> {
    (0..N_HOSTS as u64).map(|i| 0x0a00_0000 + i).collect()
}

fn hierarchy(alpha: u32, k: usize) -> PointerHierarchy {
    let a = addrs();
    let mphf = Arc::new(Mphf::build(&a).unwrap());
    PointerHierarchy::new(
        PointerConfig {
            n_hosts: N_HOSTS,
            alpha,
            k,
        },
        mphf,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Monotone epoch streams: everything recorded is found again (within
    /// retention), and exact-level answers are exactly the model.
    #[test]
    fn no_false_negatives_and_exact_level1(
        alpha in 2u32..6,
        k in 2usize..4,
        // (host index, epoch advance) steps; advances keep epochs monotone.
        steps in prop::collection::vec((0usize..N_HOSTS, 0u64..3), 1..200),
    ) {
        let a = addrs();
        let mut h = hierarchy(alpha, k);
        let mut model: HashSet<(u64, u64)> = HashSet::new();
        let mut epoch = 0u64;
        for (host, adv) in steps {
            epoch += adv;
            h.update(a[host], epoch);
            model.insert((a[host], epoch));
        }

        let top_span = (alpha as u64).pow(k as u32 - 1);
        for &(addr, e) in &model {
            // Retention: the top level covers the current period and the
            // archive everything before it — so every recorded fact is
            // still answerable.
            prop_assert!(
                h.contains(addr, e),
                "false negative for ({addr:#x}, {e}), alpha={alpha} k={k}"
            );
            // Exact-level answers, when available, must match the model.
            if let Some(ans) = h.contains_within(addr, e, 1) {
                prop_assert_eq!(ans, model.contains(&(addr, e)));
            }
            // Coarse answers only widen within the covering span.
            let res = h.resolution_for(e).unwrap();
            prop_assert!(res <= top_span);
        }

        // Negative checks at exact resolution for facts not in the model.
        for (host, &addr) in a.iter().enumerate() {
            for e in 0..=epoch {
                if let Some(true) = h.contains_within(addr, e, 1) {
                    prop_assert!(
                        model.contains(&(addr, e)),
                        "level-1 false positive ({host}, {e})"
                    );
                }
            }
        }
    }

    /// The flushed-bits counter equals archive size × n.
    #[test]
    fn flush_accounting_consistent(
        alpha in 2u32..5,
        epochs in 1u64..200,
    ) {
        let a = addrs();
        let mut h = hierarchy(alpha, 2);
        for e in 0..epochs {
            h.update(a[(e as usize) % N_HOSTS], e);
        }
        prop_assert_eq!(
            h.flushed_bits,
            h.archive().len() as u64 * N_HOSTS as u64
        );
        // Archives hold distinct, increasing periods.
        let periods: Vec<u64> = h.archive().iter().map(|p| p.period).collect();
        let mut sorted = periods.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&periods, &sorted);
    }

    /// `pointer_union` over a range equals the union of per-epoch queries.
    #[test]
    fn union_equals_pointwise_or(
        alpha in 2u32..5,
        epochs in 1u64..60,
        lo_frac in 0.0f64..1.0,
    ) {
        let a = addrs();
        let mut h = hierarchy(alpha, 3);
        for e in 0..epochs {
            h.update(a[(e as usize * 7) % N_HOSTS], e);
            h.update(a[(e as usize * 13 + 1) % N_HOSTS], e);
        }
        let lo = ((epochs - 1) as f64 * lo_frac) as u64;
        let hi = epochs - 1;
        let union = h.pointer_union(lo, hi);
        // Pointwise reference.
        for (i, &addr) in a.iter().enumerate() {
            let member = union.test(h.mphf().index(&addr).unwrap());
            let any = (lo..=hi).any(|e| h.contains(addr, e));
            prop_assert_eq!(member, any, "host {} range [{},{}]", i, lo, hi);
        }
    }

    /// Out-of-order (stale) epochs never clobber newer state.
    #[test]
    fn stale_epochs_never_erase_new_state(
        alpha in 2u32..5,
        jitter in 1u64..5,
    ) {
        let a = addrs();
        let mut h = hierarchy(alpha, 2);
        h.update(a[1], 100);
        // A late packet from an earlier epoch.
        h.update(a[2], 100 - jitter);
        prop_assert!(h.contains(a[1], 100), "fresh state lost to stale update");
    }
}

#[test]
fn memory_bytes_includes_mphf() {
    let h = hierarchy(4, 3);
    let cfg = h.config();
    assert!(h.memory_bytes() > cfg.memory_bytes());
}
