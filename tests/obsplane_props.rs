//! Property tests of the obsplane histogram — the error and merge
//! contracts every plane's latency numbers rest on:
//!
//! (a) **Bounded relative error.** For any sample set and quantile, the
//!     histogram's estimate is ≥ the sorted-oracle value and overshoots
//!     by at most a factor `2^-grid_bits` (values below `2^(grid_bits+1)`
//!     are exact).
//! (b) **Merge is lossless and order-free.** Merging per-shard snapshots
//!     in any association or order equals the histogram that recorded
//!     every sample itself — the property that makes cluster-wide
//!     percentiles from per-shard scrapes meaningful.
//! (c) **Concurrent snapshots never lose counts.** Snapshots taken while
//!     writers are recording are internally consistent (total == sum of
//!     buckets), never panic, and the final snapshot holds every record.

use obsplane::{Histogram, DEFAULT_GRID_BITS};
use proptest::prelude::*;

/// The sorted-oracle quantile the histogram approximates: the value at
/// rank `ceil(q·n)` (clamped to [1, n]), 1-indexed.
fn oracle(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn record_all(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a) For every quantile, oracle ≤ estimate ≤ oracle·(1 + 2^-g).
    #[test]
    fn quantile_within_relative_error_of_sorted_oracle(
        values in prop::collection::vec(any::<u64>(), 1..400)
    ) {
        let snap = record_all(&values).snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
            let truth = oracle(&sorted, q);
            let est = snap.quantile(q);
            prop_assert!(
                est >= truth,
                "q={q}: estimate {est} undershoots oracle {truth}"
            );
            prop_assert!(
                est - truth <= truth >> DEFAULT_GRID_BITS,
                "q={q}: estimate {est} exceeds oracle {truth} beyond the \
                 2^-{DEFAULT_GRID_BITS} relative bound"
            );
        }
        // The max is tracked exactly, not bucket-rounded.
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        prop_assert_eq!(snap.quantile(1.0), snap.max);
    }

    /// (a continued) Values in the exact region (< 2^(g+1)) round-trip
    /// through the histogram with zero error at every quantile.
    #[test]
    fn small_values_are_exact(
        values in prop::collection::vec(0u64..(1 << (DEFAULT_GRID_BITS + 1)), 1..300)
    ) {
        let snap = record_all(&values).snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(snap.quantile(q), oracle(&sorted, q));
        }
    }

    /// (b) Any association/order of merges equals the single histogram
    /// that saw every sample.
    #[test]
    fn merge_is_associative_commutative_and_lossless(
        a in prop::collection::vec(any::<u64>(), 0..150),
        b in prop::collection::vec(any::<u64>(), 0..150),
        c in prop::collection::vec(any::<u64>(), 0..150),
    ) {
        let (sa, sb, sc) = (
            record_all(&a).snapshot(),
            record_all(&b).snapshot(),
            record_all(&c).snapshot(),
        );
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let single = record_all(&all).snapshot();

        // ((a ⊕ b) ⊕ c)
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // (a ⊕ (b ⊕ c))
        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);
        // (c ⊕ b ⊕ a) — commuted
        let mut rev = sc.clone();
        rev.merge(&sb);
        rev.merge(&sa);

        prop_assert_eq!(&left, &single, "left association diverged");
        prop_assert_eq!(&right, &single, "right association diverged");
        prop_assert_eq!(&rev, &single, "commuted merge diverged");
        prop_assert_eq!(single.count, all.len() as u64);
    }
}

/// (c) Snapshots raced against live writers are always internally
/// consistent and the final one holds every recorded sample.
#[test]
fn concurrent_snapshots_never_lose_counts() {
    use std::sync::Arc;

    let h = Arc::new(Histogram::new());
    let writers = 4usize;
    let per_writer = 20_000u64;
    let mut handles = Vec::new();
    for w in 0..writers as u64 {
        let h = Arc::clone(&h);
        handles.push(std::thread::spawn(move || {
            for i in 0..per_writer {
                // A spread that crosses the exact/log-bucket boundary.
                h.record((w + 1) * i % (1 << 20));
            }
        }));
    }
    // Snapshot continuously while the writers run: every observation
    // must be internally consistent (count == sum of bucket counts — the
    // snapshot recomputes it from the buckets) and counts never move
    // backwards across sequential observations of a grow-only histogram.
    let mut last_count = 0u64;
    while handles.iter().any(|jh| !jh.is_finished()) {
        let snap = h.snapshot();
        let bucket_total: u64 = snap.counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(snap.count, bucket_total, "snapshot tore mid-record");
        assert!(snap.count >= last_count, "count moved backwards");
        last_count = snap.count;
    }
    for jh in handles {
        jh.join().unwrap();
    }
    let fin = h.snapshot();
    assert_eq!(fin.count, writers as u64 * per_writer, "records were lost");
    let bucket_total: u64 = fin.counts.iter().map(|&(_, c)| c).sum();
    assert_eq!(fin.count, bucket_total);
    // Quiesced: repeated snapshots are identical.
    assert_eq!(fin, h.snapshot());
}
