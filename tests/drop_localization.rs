//! End-to-end silent-drop localization (§2.4-class application): a link
//! fails mid-run, routing stays static (blackhole), the victim's receiver
//! triggers on the starvation, and the analyzer pinpoints the failed
//! segment from switch pointers alone — no host queries needed.

use netsim::prelude::*;
use switchpointer::testbed::{Testbed, TestbedConfig};
use telemetry::EpochRange;

fn link_between(tb: &Testbed, a: &str, b: &str) -> LinkId {
    let (na, nb) = (tb.node(a), tb.node(b));
    tb.sim
        .topo()
        .ports(na)
        .iter()
        .find(|&&(_, p)| p == nb)
        .map(|&(l, _)| l)
        .unwrap_or_else(|| panic!("no link {a}-{b}"))
}

#[test]
fn failed_chain_link_is_localized() {
    let topo = Topology::chain(3, 2, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, f) = (tb.node("A"), tb.node("F"));
    let flow = tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: f,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(20),
        rate_bps: 300_000_000,
        payload_bytes: 1458,
    });
    // S2-S3 fails at 8 ms.
    let bad = link_between(&tb, "S2", "S3");
    tb.sim.schedule_link_state(bad, false, SimTime::from_ms(8));
    tb.sim.run_until(SimTime::from_ms(20));

    // The receiver noticed the starvation.
    let trig = tb.hosts[&f]
        .borrow()
        .first_trigger_for(flow)
        .copied()
        .expect("starvation trigger");
    assert!(trig.at >= SimTime::from_ms(8) && trig.at <= SimTime::from_ms(11));

    // Localize using post-onset epochs.
    let e = tb.cfg.params.epoch_of(trig.at);
    let diag = tb
        .analyzer()
        .localize_silent_drop(flow, a, f, EpochRange { lo: e, hi: e + 2 });
    // Let the flow keep running past the trigger so upstream pointers have
    // entries for the window (duration 20 ms covers it).
    let s2 = tb.node("S2");
    let s3 = tb.node("S3");
    assert_eq!(
        diag.suspected_segment,
        Some((s2, s3)),
        "{:?}",
        diag.per_switch
    );
    // S1 and S2 saw the flow post-failure; S3 did not.
    assert_eq!(diag.per_switch.iter().filter(|&&(_, p)| p).count(), 2);
    assert!(diag.pointer_retrieval > SimTime::ZERO);
}

#[test]
fn healthy_path_reports_no_segment() {
    let topo = Topology::chain(3, 2, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, f) = (tb.node("A"), tb.node("F"));
    let flow = tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: f,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(5),
        rate_bps: 300_000_000,
        payload_bytes: 1458,
    });
    tb.sim.run_until(SimTime::from_ms(10));
    let diag = tb
        .analyzer()
        .localize_silent_drop(flow, a, f, EpochRange { lo: 0, hi: 5 });
    assert_eq!(diag.suspected_segment, None);
    assert!(diag.per_switch.iter().all(|&(_, p)| p));
}

#[test]
fn first_hop_failure_blames_the_source_segment() {
    let topo = Topology::chain(3, 2, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, f) = (tb.node("A"), tb.node("F"));
    let flow = tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: f,
        priority: Priority::LOW,
        start: SimTime::from_ms(5),
        duration: SimTime::from_ms(5),
        rate_bps: 300_000_000,
        payload_bytes: 1458,
    });
    // A's uplink is dead from the start: nothing ever reaches S1.
    let bad = link_between(&tb, "A", "S1");
    tb.sim.schedule_link_state(bad, false, SimTime::ZERO);
    tb.sim.run_until(SimTime::from_ms(15));

    let diag = tb
        .analyzer()
        .localize_silent_drop(flow, a, f, EpochRange { lo: 5, hi: 10 });
    let s1 = tb.node("S1");
    assert_eq!(diag.suspected_segment, Some((a, s1)));
}

#[test]
fn link_repair_restores_traffic() {
    let topo = Topology::chain(2, 1, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, b) = (tb.node("A"), tb.node("B"));
    let flow = tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: b,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(12),
        rate_bps: 200_000_000,
        payload_bytes: 1458,
    });
    let l = link_between(&tb, "S1", "S2");
    tb.sim.schedule_link_state(l, false, SimTime::from_ms(3));
    tb.sim.schedule_link_state(l, true, SimTime::from_ms(6));
    tb.sim.run_until(SimTime::from_ms(15));

    let events = tb.sim.traces.rx_events(flow);
    let during = events
        .iter()
        .filter(|e| e.t >= SimTime::from_ms(3) && e.t < SimTime::from_ms(6))
        .count();
    let after = events
        .iter()
        .filter(|e| e.t >= SimTime::from_ms(6) && e.t < SimTime::from_ms(12))
        .count();
    assert!(during <= 2, "traffic during outage: {during}");
    assert!(after > 50, "traffic after repair: {after}");
    assert!(!tb.sim.traces.drops.is_empty(), "outage must drop packets");
}
