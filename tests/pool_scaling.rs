//! Scheduling-invariance suite for the work-stealing worker pool.
//!
//! The pool's contract (DESIGN.md §16): verdicts are a pure function of
//! the frozen snapshot and the submission order — worker count, chunk
//! size, dispatch keys, steal schedule, and even worker panics mid-chunk
//! must never change an answer, drop a result slot, or fill one twice.
//! This suite rigs each of those dimensions explicitly:
//!
//! * parity across 1/2/4/8/16 workers × randomized chunk sizes ×
//!   keyed/unkeyed dispatch, against the sequential analyzer;
//! * a forced-steal schedule (one worker wedged on a slow chunk) that
//!   must still complete every slot, with `pool.steals` showing the
//!   rebalance actually happened;
//! * a panic in the middle of one chunk: the batch re-raises on the
//!   caller, every *other* chunk still runs exactly once, and the pool
//!   stays usable for the next batch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use netsim::prelude::*;
use netsim::routing::RouteTable;
use obsplane::MetricsRegistry;
use proptest::rng_for;
use queryplane::{chunk_size, SharedCtx, Snapshot, WorkerPool};
use switchpointer::query::QueryRequest;
use switchpointer::shard::ShardedDirectory;
use switchpointer::testbed::{Testbed, TestbedConfig};
use telemetry::EpochRange;

/// A small multi-pod fixture with real traffic so queries have non-empty
/// answers worth comparing.
fn fixture() -> Testbed {
    let topo = Topology::fat_tree(4, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, da) = (tb.node("h0_0_0"), tb.node("h2_0_0"));
    tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
        a,
        da,
        Priority::LOW,
        SimTime::from_ms(30),
    ));
    let (b, db) = (tb.node("h1_0_0"), tb.node("h3_1_1"));
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: b,
        dst: db,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(25),
        rate_bps: 200_000_000,
        payload_bytes: 1458,
    });
    tb.sim.run_until(SimTime::from_ms(30));
    tb
}

fn shared_ctx(tb: &Testbed, reg: &Arc<MetricsRegistry>) -> Arc<SharedCtx> {
    let analyzer = tb.analyzer();
    Arc::new(SharedCtx::new(
        analyzer.topo().clone(),
        RouteTable::build(analyzer.topo()),
        analyzer.params(),
        analyzer.directory().clone(),
        ShardedDirectory::new(
            analyzer.directory().mphf().clone(),
            &analyzer.all_hosts(),
            4,
        ),
        *analyzer.cost(),
        Arc::clone(reg),
    ))
}

/// A batch large enough that every worker count below 16 yields multiple
/// chunks per worker, with per-request-distinct epoch ranges so a slot
/// mix-up is visible even where verdicts coincide.
fn batch(tb: &Testbed) -> Vec<QueryRequest> {
    let switches = [
        "edge0_0", "agg0_0", "agg0_1", "core0_0", "edge2_0", "edge3_1",
    ];
    let mut reqs = Vec::new();
    for i in 0..96u64 {
        let sw = tb.node(switches[i as usize % switches.len()]);
        let range = EpochRange {
            lo: 5 + i % 7,
            hi: 14 + i % 9,
        };
        if i % 3 == 0 {
            reqs.push(QueryRequest::LoadImbalance { switch: sw, range });
        } else {
            reqs.push(QueryRequest::TopK {
                switch: sw,
                k: 3 + (i % 5) as usize,
                range,
            });
        }
    }
    reqs
}

#[test]
fn verdicts_invariant_across_workers_chunks_and_keys() {
    let tb = fixture();
    let analyzer = tb.analyzer();
    let reg = Arc::new(MetricsRegistry::new());
    let ctx = shared_ctx(&tb, &reg);
    let snapshot = Arc::new(Snapshot::capture(&analyzer, 4));
    let reqs = batch(&tb);
    let baseline: Vec<String> = reqs
        .iter()
        .map(|r| format!("{:?}", analyzer.execute(r)))
        .collect();

    let mut rng = rng_for("pool_scaling::invariance");
    // Sparse, huge dispatch keys on purpose: placement must depend on
    // key residue only, never on a key-indexed dense table.
    let keys: Vec<usize> = reqs
        .iter()
        .enumerate()
        .map(|(i, _)| (i % 5) * 0x1000_0000_0000 + i)
        .collect();

    for workers in [1usize, 2, 4, 8, 16] {
        let pool = WorkerPool::with_metrics(workers, &reg);
        // The rule-derived size plus randomized overrides, including
        // degenerate extremes (chunk=1, chunk >= batch).
        let mut chunk_overrides = vec![
            None,
            Some(1),
            Some(reqs.len()),
            Some(chunk_size(reqs.len(), workers)),
        ];
        for _ in 0..3 {
            chunk_overrides.push(Some(1 + rng.below(reqs.len() as u64 / 2) as usize));
        }
        for chunk in chunk_overrides {
            for keyed in [false, true] {
                let keys = keyed.then_some(keys.as_slice());
                let out = pool.run_keyed_chunked(&ctx, &snapshot, &reqs, keys, chunk);
                assert_eq!(out.len(), reqs.len());
                for (i, (resp, _, _)) in out.iter().enumerate() {
                    assert_eq!(
                        format!("{resp:?}"),
                        baseline[i],
                        "query {i} diverged at {workers} workers, chunk {chunk:?}, keyed={keyed}"
                    );
                }
            }
        }
    }
}

#[test]
fn rigged_slow_worker_forces_steals_without_losing_slots() {
    let reg = Arc::new(MetricsRegistry::new());
    let pool = WorkerPool::with_metrics(4, &reg);
    let n = 64usize;
    let hits = Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());

    // Every chunk homed on worker 0 (all keys ≡ 0 mod 4) with worker 0
    // wedged on its first chunk: the only way the batch finishes in
    // bounded time is the other three workers stealing the rest.
    let keys = vec![0usize; n];
    let h = Arc::clone(&hits);
    let out = pool.scatter(n, Some(&keys), Some(4), move |worker, idxs| {
        if worker == 0 {
            thread::sleep(Duration::from_millis(80));
        }
        idxs.iter()
            .map(|&i| {
                h[i].fetch_add(1, Ordering::SeqCst);
                i * 10
            })
            .collect()
    });

    assert_eq!(out, (0..n).map(|i| i * 10).collect::<Vec<_>>());
    for (i, hit) in hits.iter().enumerate() {
        assert_eq!(
            hit.load(Ordering::SeqCst),
            1,
            "slot {i} ran a wrong number of times"
        );
    }
    let steals = pool.metrics().steals.get();
    assert!(
        steals > 0,
        "a wedged home worker must force steals (got {steals})"
    );
    // The queue-depth gauge returns to empty once the batch drains.
    assert_eq!(pool.metrics().queue_depth.get(), 0);
}

#[test]
fn mid_chunk_panic_reraises_without_dropped_or_duplicated_slots() {
    let reg = Arc::new(MetricsRegistry::new());
    let pool = WorkerPool::with_metrics(4, &reg);
    let n = 48usize;
    let poison = 23usize;
    let hits = Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());

    let h = Arc::clone(&hits);
    let err = catch_unwind(AssertUnwindSafe(|| {
        pool.scatter(n, None, Some(4), move |_w, idxs| {
            idxs.iter()
                .map(|&i| {
                    if i == poison {
                        panic!("rigged mid-chunk panic");
                    }
                    h[i].fetch_add(1, Ordering::SeqCst);
                    i
                })
                .collect()
        })
    }));
    assert!(err.is_err(), "the chunk panic must re-raise on the caller");

    // Panic containment is per *chunk*: the poisoned chunk's own slots
    // may be abandoned, but no other chunk may be skipped or re-run.
    let poisoned_chunk = (poison / 4) * 4..(poison / 4) * 4 + 4;
    for (i, hit) in hits.iter().enumerate() {
        let runs = hit.load(Ordering::SeqCst);
        if poisoned_chunk.contains(&i) {
            assert!(runs <= 1, "slot {i} in the poisoned chunk ran {runs} times");
        } else {
            assert_eq!(runs, 1, "slot {i} ran {runs} times (expected exactly once)");
        }
    }
    assert_eq!(pool.metrics().queue_depth.get(), 0);

    // The pool survives the panic: the next batch on the same workers
    // completes every slot.
    let again = pool.scatter(n, None, None, move |_w, idxs| {
        idxs.iter().map(|&i| i + 1).collect()
    });
    assert_eq!(again, (1..=n).collect::<Vec<_>>());
}

#[test]
fn full_plane_parity_holds_under_randomized_chunking_with_steal_pressure() {
    // The end-to-end variant: run_keyed_chunked (real executors over the
    // frozen snapshot) with every chunk keyed to one worker so steals are
    // guaranteed, across the full worker sweep.
    let tb = fixture();
    let analyzer = tb.analyzer();
    let reg = Arc::new(MetricsRegistry::new());
    let ctx = shared_ctx(&tb, &reg);
    let snapshot = Arc::new(Snapshot::capture(&analyzer, 4));
    let reqs = batch(&tb);
    let baseline: Vec<String> = reqs
        .iter()
        .map(|r| format!("{:?}", analyzer.execute(r)))
        .collect();
    let skew_keys = vec![0usize; reqs.len()];

    let mut rng = rng_for("pool_scaling::steal_pressure");
    for workers in [2usize, 4, 8, 16] {
        let pool = WorkerPool::with_metrics(workers, &reg);
        let chunk = Some(1 + rng.below(7) as usize);
        let out = pool.run_keyed_chunked(&ctx, &snapshot, &reqs, Some(&skew_keys), chunk);
        for (i, (resp, _, _)) in out.iter().enumerate() {
            assert_eq!(
                format!("{resp:?}"),
                baseline[i],
                "query {i} diverged under steal pressure at {workers} workers"
            );
        }
    }
}
