//! The stream plane's contract:
//!
//! (a) **Delta ≡ capture.** Any interleaving of simulation advance and
//!     `Snapshot::apply_delta` yields a snapshot equal (full frozen-state
//!     equality) to a fresh `Snapshot::capture` at the same instant.
//! (b) **Incremental refresh does asymptotically less work:** on the
//!     fat-tree storm deployment a small epoch advance clones ≥ 5× fewer
//!     flow records than a full recapture, while staying bit-identical.
//! (c) **Verdict invariance.** Standing-query incident streams are
//!     identical at 1/2/8 workers and across arrival-window boundaries
//!     that admit the same query set — and every served verdict (fresh or
//!     result-cache hit) matches the sequential analyzer re-run on the
//!     live state.

use proptest::prelude::*;
use suite::netsim::prelude::*;
use suite::queryplane::{QueryPlaneConfig, Snapshot};
use suite::streamplane::{IncidentKind, StandingEval, StandingQuery, StreamConfig, StreamPlane};
use suite::switchpointer::query::QueryRequest;
use suite::switchpointer::retention::RetentionPolicy;
use suite::switchpointer::testbed::{Testbed, TestbedConfig};
use suite::telemetry::EpochRange;

/// The cheap fixture: a 3-switch chain with one long UDP flow, one
/// staggered UDP flow and a TCP transfer, so pointer slots rotate and
/// several host stores keep mutating as time advances.
fn chain_testbed() -> Testbed {
    let topo = Topology::chain(3, 2, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, b) = (tb.node("A"), tb.node("B"));
    let (d, f) = (tb.node("D"), tb.node("F"));
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: f,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(30),
        rate_bps: 80_000_000,
        payload_bytes: 1458,
    });
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: b,
        dst: d,
        priority: Priority::LOW,
        start: SimTime::from_ms(4),
        duration: SimTime::from_ms(10),
        rate_bps: 60_000_000,
        payload_bytes: 1000,
    });
    tb.sim.add_tcp_flow(TcpFlowSpec::transfer(
        d,
        a,
        Priority::LOW,
        SimTime::ZERO,
        400_000,
    ));
    tb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn delta_applied_snapshot_equals_fresh_capture(
        steps in prop::collection::vec((1u64..4, any::<bool>()), 1..8),
        shards in 1usize..6,
    ) {
        let mut tb = chain_testbed();
        let analyzer = tb.analyzer();
        let mut snap = Snapshot::capture(&analyzer, shards);
        let mut t_ms = 0u64;
        for (advance_ms, refresh_now) in steps {
            t_ms += advance_ms;
            tb.sim.run_until(SimTime::from_ms(t_ms));
            if refresh_now {
                let delta = snap.apply_delta(&analyzer);
                prop_assert_eq!(delta.epoch_horizon, snap.epoch_horizon());
            }
        }
        // Wherever the interleaving left off, one final delta must land the
        // layered snapshot exactly on a from-scratch freeze.
        snap.apply_delta(&analyzer);
        let fresh = Snapshot::capture(&analyzer, shards);
        prop_assert!(
            snap == fresh,
            "delta-applied snapshot diverged from fresh capture at t={}ms (shards={})",
            t_ms, shards
        );
        // And a delta over an unchanged deployment is empty.
        let idle = snap.apply_delta(&analyzer);
        prop_assert!(idle.is_empty());
    }

    /// The eviction interleaving the original props never exercised:
    /// `evict_older_than` (forcing `FullRescan` deltas) mixed with
    /// advances and incremental refreshes must still pin
    /// `Snapshot::apply_delta` == `Snapshot::capture` at every shard
    /// count — and rescanned hosts must be reported as such.
    #[test]
    fn delta_equals_capture_under_eviction_interleavings(
        steps in prop::collection::vec(
            (1u64..4, any::<bool>(), prop::option::of(1u64..12)),
            1..8,
        ),
        shards in 1usize..6,
    ) {
        let mut tb = chain_testbed();
        let analyzer = tb.analyzer();
        let mut snap = Snapshot::capture(&analyzer, shards);
        let mut t_ms = 0u64;
        let mut saw_rescan = false;
        for (advance_ms, refresh_now, evict_back) in steps {
            t_ms += advance_ms;
            tb.sim.run_until(SimTime::from_ms(t_ms));
            if let Some(back) = evict_back {
                // Retention sweep: every host drops records whose newest
                // epoch predates the horizon (epochs ≈ ms on this fixture).
                let horizon = t_ms.saturating_sub(back.min(t_ms));
                for host in analyzer.all_hosts() {
                    tb.hosts[&host]
                        .borrow_mut()
                        .store
                        .evict_older_than(horizon);
                }
            }
            if refresh_now {
                let delta = snap.apply_delta(&analyzer);
                saw_rescan |= !delta.rescanned_hosts.is_empty();
                for h in &delta.rescanned_hosts {
                    prop_assert!(
                        delta.dirty_hosts.contains(h),
                        "rescanned hosts must be a subset of dirty hosts"
                    );
                }
            }
        }
        snap.apply_delta(&analyzer);
        let fresh = Snapshot::capture(&analyzer, shards);
        prop_assert!(
            snap == fresh,
            "delta-applied snapshot diverged from fresh capture after evictions \
             at t={}ms (shards={}, saw_rescan={})",
            t_ms, shards, saw_rescan
        );
        let idle = snap.apply_delta(&analyzer);
        prop_assert!(idle.is_empty());
    }
}

/// The fat-tree storm fixture of the acceptance criterion: many flows
/// populate many host stores, then traffic narrows to a single
/// destination, so a small epoch advance touches a small fraction of the
/// frozen records.
#[test]
fn incremental_refresh_beats_full_recapture_by_5x() {
    let topo = Topology::fat_tree(4, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    // Storm phase: 12 flows to 12 distinct destinations across all pods.
    let pairs = [
        ("h0_0_0", "h2_0_0"),
        ("h0_0_1", "h2_0_1"),
        ("h0_1_0", "h2_1_0"),
        ("h0_1_1", "h2_1_1"),
        ("h1_0_0", "h3_0_0"),
        ("h1_0_1", "h3_0_1"),
        ("h1_1_0", "h3_1_0"),
        ("h1_1_1", "h3_1_1"),
        ("h2_0_0", "h0_0_0"),
        ("h2_1_0", "h0_1_0"),
        ("h3_0_0", "h1_0_0"),
        ("h3_1_0", "h1_1_0"),
    ];
    for (s, d) in pairs {
        let (s, d) = (tb.node(s), tb.node(d));
        tb.sim.add_udp_flow(UdpFlowSpec {
            src: s,
            dst: d,
            priority: Priority::LOW,
            start: SimTime::ZERO,
            duration: SimTime::from_ms(20),
            rate_bps: 100_000_000,
            payload_bytes: 1458,
        });
    }
    tb.sim.run_until(SimTime::from_ms(24));
    let analyzer = tb.analyzer();
    let mut snap = Snapshot::capture(&analyzer, 8);
    let full_records_at_capture = snap.total_records() as u64;
    assert!(
        full_records_at_capture >= 12,
        "storm must populate many hosts"
    );

    // Quiet phase: a small epoch advance with traffic to ONE destination.
    let (s, d) = (tb.node("h1_0_1"), tb.node("h3_0_1"));
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: s,
        dst: d,
        priority: Priority::LOW,
        start: SimTime::from_ms(24),
        duration: SimTime::from_ms(2),
        rate_bps: 50_000_000,
        payload_bytes: 1458,
    });
    tb.sim.run_until(SimTime::from_ms(26));

    let delta = snap.apply_delta(&analyzer);
    // Correctness first: bit-identical to a from-scratch freeze.
    let fresh = Snapshot::capture(&analyzer, 8);
    assert!(snap == fresh, "delta-applied snapshot != fresh capture");
    // The acceptance bar: ≥ 5× fewer cloned records than a full recapture.
    assert!(
        delta.cloned_records > 0,
        "the quiet flow must dirty its host"
    );
    assert!(
        delta.full_records >= 5 * delta.cloned_records,
        "incremental refresh must clone ≥5× fewer records: cloned {} vs full {}",
        delta.cloned_records,
        delta.full_records
    );
    // Pointer side: only the quiet flow's path switches were patched.
    assert!(delta.cloned_slots < delta.full_slots);
    assert!(
        delta.dirty_switches.len() < analyzer.all_switches().len(),
        "a single path must not dirty the whole fabric"
    );
}

/// Standing queries for the chain fixture: two sliding top-k subscriptions,
/// one fixed-range top-k and a sliding load-imbalance.
fn standing_set(tb: &Testbed) -> Vec<StandingQuery> {
    vec![
        StandingQuery::TopKSliding {
            switch: tb.node("S1"),
            k: 5,
            epochs_back: 6,
        },
        StandingQuery::TopKSliding {
            switch: tb.node("S2"),
            k: 5,
            epochs_back: 6,
        },
        StandingQuery::Fixed(QueryRequest::TopK {
            switch: tb.node("S3"),
            k: 5,
            range: EpochRange { lo: 0, hi: 3 },
        }),
        StandingQuery::LoadImbalanceSliding {
            switch: tb.node("S2"),
            epochs_back: 8,
        },
    ]
}

/// Drives `windows` evaluation windows of `window_ms` each over a fresh
/// chain fixture and returns (incident renders, per-window standing
/// verdict renders).
fn drive(workers: usize, window_ms: u64, windows: u64) -> (Vec<String>, Vec<Vec<String>>) {
    let mut tb = chain_testbed();
    let analyzer = tb.analyzer();
    let mut sp = StreamPlane::new(
        &analyzer,
        StreamConfig {
            plane: QueryPlaneConfig {
                workers,
                shards: 4,
                directory_shards: 1,
                cache_capacity: 1024,
                retention: None,
            },
            result_cache_capacity: 256,
        },
    );
    for q in standing_set(&tb) {
        sp.subscribe(q);
    }
    let mut verdicts = Vec::new();
    for w in 1..=windows {
        tb.sim.run_until(SimTime::from_ms(w * window_ms));
        let report = sp.run_window(&analyzer);
        verdicts.push(
            report
                .standing
                .iter()
                .map(|(id, e)| match e {
                    StandingEval::Pending => format!("{id}: pending"),
                    StandingEval::Verdict { response, .. } => format!("{id}: {response:?}"),
                })
                .collect::<Vec<String>>(),
        );
    }
    let incidents = sp
        .incidents()
        .iter()
        .map(|i| format!("{i:?}"))
        .collect::<Vec<String>>();
    (incidents, verdicts)
}

#[test]
fn incident_stream_is_worker_count_invariant() {
    let (base_incidents, base_verdicts) = drive(1, 5, 4);
    assert!(
        !base_incidents.is_empty(),
        "standing queries must produce at least baselines"
    );
    for workers in [2usize, 8] {
        let (incidents, verdicts) = drive(workers, 5, 4);
        assert_eq!(
            incidents, base_incidents,
            "incident stream diverged at {workers} workers"
        );
        assert_eq!(verdicts, base_verdicts);
    }
}

#[test]
fn window_boundaries_do_not_change_verdicts() {
    // Plane A admits four one-shots in ONE window; plane B splits the same
    // horizon into two admission windows of two. Verdicts and incident
    // streams must agree query-for-query.
    let run = |split: bool| {
        let mut tb = chain_testbed();
        let analyzer = tb.analyzer();
        let mut sp = StreamPlane::new(&analyzer, StreamConfig::default());
        for q in standing_set(&tb) {
            sp.subscribe(q);
        }
        tb.sim.run_until(SimTime::from_ms(12));
        let one_shots = [
            QueryRequest::TopK {
                switch: tb.node("S1"),
                k: 3,
                range: EpochRange { lo: 2, hi: 9 },
            },
            QueryRequest::LoadImbalance {
                switch: tb.node("S2"),
                range: EpochRange { lo: 2, hi: 9 },
            },
            QueryRequest::TopK {
                switch: tb.node("S2"),
                k: 3,
                range: EpochRange { lo: 0, hi: 11 },
            },
            QueryRequest::TopK {
                switch: tb.node("S3"),
                k: 3,
                range: EpochRange { lo: 0, hi: 11 },
            },
        ];
        let mut outcomes: Vec<String> = Vec::new();
        if split {
            for half in one_shots.chunks(2) {
                for &req in half {
                    sp.submit(req);
                }
                // Same horizon: no simulation advance between the windows.
                let report = sp.run_window(&analyzer);
                outcomes.extend(
                    report
                        .one_shot
                        .iter()
                        .map(|(_, o)| format!("{:?}", o.response)),
                );
            }
        } else {
            for &req in &one_shots {
                sp.submit(req);
            }
            let report = sp.run_window(&analyzer);
            outcomes.extend(
                report
                    .one_shot
                    .iter()
                    .map(|(_, o)| format!("{:?}", o.response)),
            );
        }
        let incidents: Vec<String> = sp
            .incidents()
            .iter()
            .map(|i| {
                // Window indices legitimately differ between the two
                // admission schedules; verdict content must not.
                format!("{}/{:?}/{}/{}", i.sub, i.kind, i.summary, i.fingerprint)
            })
            .collect();
        (outcomes, incidents)
    };
    let (one_window_outcomes, one_window_incidents) = run(false);
    let (split_outcomes, split_incidents) = run(true);
    assert_eq!(one_window_outcomes, split_outcomes);
    assert_eq!(one_window_incidents, split_incidents);
    assert_eq!(one_window_outcomes.len(), 4);
}

#[test]
fn duplicate_requests_in_a_window_execute_once() {
    let mut tb = chain_testbed();
    let analyzer = tb.analyzer();
    let mut sp = StreamPlane::new(&analyzer, StreamConfig::default());
    tb.sim.run_until(SimTime::from_ms(8));
    let req = QueryRequest::TopK {
        switch: tb.node("S1"),
        k: 5,
        range: EpochRange { lo: 0, hi: 7 },
    };
    // A standing query and two one-shots, all for the same request.
    sp.subscribe(StandingQuery::Fixed(req));
    sp.submit(req);
    sp.submit(req);
    let report = sp.run_window(&analyzer);
    assert_eq!(
        report.executed, 1,
        "identical requests within a window must collapse to one execution"
    );
    assert_eq!(report.one_shot.len(), 2);
    let expected = format!("{:?}", analyzer.execute(&req));
    for (_, o) in &report.one_shot {
        assert_eq!(format!("{:?}", o.response), expected);
    }
    match &report.standing[0].1 {
        StandingEval::Verdict { response, .. } => {
            assert_eq!(format!("{response:?}"), expected);
        }
        other => panic!("expected a verdict, got {other:?}"),
    }
}

#[test]
fn cached_and_fresh_verdicts_match_the_live_analyzer() {
    let mut tb = chain_testbed();
    let analyzer = tb.analyzer();
    let mut sp = StreamPlane::new(&analyzer, StreamConfig::default());
    for q in standing_set(&tb) {
        sp.subscribe(q);
    }
    let mut saw_cache_hit = false;
    for w in 1..=5u64 {
        tb.sim.run_until(SimTime::from_ms(w * 4));
        let report = sp.run_window(&analyzer);
        // Evaluate the same window twice at the same horizon: the repeat
        // must be served from the result cache (empty delta ⇒ nothing
        // invalidated).
        let repeat = sp.run_window(&analyzer);
        assert!(repeat.delta.is_empty());
        for (first, second) in report.standing.iter().zip(&repeat.standing) {
            if let (
                StandingEval::Verdict {
                    request, response, ..
                },
                StandingEval::Verdict {
                    response: cached_response,
                    from_cache,
                    ..
                },
            ) = (&first.1, &second.1)
            {
                assert!(from_cache, "idle repeat must be a result-cache hit");
                saw_cache_hit = true;
                let expected = format!("{:?}", analyzer.execute(request));
                assert_eq!(format!("{response:?}"), expected);
                assert_eq!(format!("{cached_response:?}"), expected);
            }
        }
        // No duplicate-verdict transitions: change detection fires only on
        // actual changes.
        for inc in &repeat.incidents {
            assert_ne!(
                inc.kind,
                IncidentKind::Transition,
                "idle repeat cannot transition: {inc:?}"
            );
        }
    }
    assert!(saw_cache_hit);
    assert!(sp.stats().result_hits > 0);
    assert!(sp.stats().delta_savings() > 1.0);
}

/// The eviction-invalidation regression (the bug class this PR closes):
/// a cached verdict whose host reads touched a store that later evicted
/// records must NOT be served stale — the `FullRescan` delta purges it and
/// the re-derived verdict is bit-identical to the live analyzer's.
#[test]
fn post_eviction_cached_verdict_rederives_bit_identically() {
    // Run with a sharded directory so the shard-granular eviction
    // broadcast path is exercised alongside the exact per-host match.
    for directory_shards in [1usize, 4] {
        let mut tb = chain_testbed();
        let analyzer = tb.analyzer();
        let mut sp = StreamPlane::new(
            &analyzer,
            StreamConfig {
                plane: QueryPlaneConfig {
                    workers: 2,
                    shards: 4,
                    directory_shards,
                    cache_capacity: 1024,
                    retention: None,
                },
                result_cache_capacity: 256,
            },
        );
        tb.sim.run_until(SimTime::from_ms(14));
        // S1 sees the A→F flow (dst F) and the D→A transfer (dst A): the
        // verdict depends on both hosts' stores.
        let req = QueryRequest::TopK {
            switch: tb.node("S1"),
            k: 5,
            range: EpochRange { lo: 0, hi: 7 },
        };
        sp.subscribe(StandingQuery::Fixed(req));
        let first = sp.run_window(&analyzer);
        let baseline = match &first.standing[0].1 {
            StandingEval::Verdict { response, .. } => format!("{response:?}"),
            other => panic!("expected a verdict, got {other:?}"),
        };
        // Idle repeat: served from the result cache.
        let repeat = sp.run_window(&analyzer);
        match &repeat.standing[0].1 {
            StandingEval::Verdict { from_cache, .. } => assert!(from_cache),
            other => panic!("expected a verdict, got {other:?}"),
        }

        // Retention sweep: drop every record whose newest epoch predates
        // 12. The D→A transfer finished early, so A's store evicts —
        // exactly a store the cached verdict's host reads touched (the
        // long A→F flow keeps F's store alive, so the verdict changes
        // rather than emptying).
        let mut evicted = 0;
        for host in analyzer.all_hosts() {
            evicted += tb.hosts[&host].borrow_mut().store.evict_older_than(12);
        }
        assert!(evicted > 0, "the sweep must evict at least one record");

        let after = sp.run_window(&analyzer);
        assert!(
            !after.delta.rescanned_hosts.is_empty(),
            "eviction must surface as a FullRescan delta"
        );
        assert!(
            after.invalidated > 0,
            "the cached verdict must be purged, not served stale"
        );
        match &after.standing[0].1 {
            StandingEval::Verdict {
                request,
                response,
                from_cache,
            } => {
                assert!(
                    !from_cache,
                    "post-eviction verdict must re-execute ({directory_shards} shards)"
                );
                let expected = format!("{:?}", analyzer.execute(request));
                assert_eq!(
                    format!("{response:?}"),
                    expected,
                    "post-eviction verdict must re-derive bit-identically"
                );
                assert_ne!(
                    format!("{response:?}"),
                    baseline,
                    "fixture must actually change the verdict (A's record evicted)"
                );
            }
            other => panic!("expected a verdict, got {other:?}"),
        }
    }
}

/// The PR-4 retention regression: a standing contention watch whose
/// trigger window *straddles* retention sweeps must re-derive its verdict
/// bit-identically after each sweep — the subscription's pin floors what
/// GC may collect on the shards its evaluation reaches, so the incident
/// never dangles even while churned-out flow records are reclaimed around
/// it.
#[test]
fn standing_watch_straddling_gc_sweeps_rederives_bit_identically() {
    for directory_shards in [1usize, 4] {
        // The shared churn-storm fixture (`testbed::churn_storm`): the
        // deterministic victim/burst incident plus two early-ending churn
        // flows whose records are what the sweeps reclaim.
        let (mut tb, victim, da) = suite::switchpointer::testbed::churn_storm(&[
            ("h1_1_0", "h2_1_1", 0, 9),
            ("h1_0_1", "h3_0_1", 0, 6),
        ]);
        let analyzer = tb.analyzer();
        let mut sp = StreamPlane::new(
            &analyzer,
            StreamConfig {
                plane: QueryPlaneConfig {
                    workers: 2,
                    shards: 4,
                    directory_shards,
                    cache_capacity: 1024,
                    retention: Some(RetentionPolicy::horizon(24)),
                },
                result_cache_capacity: 256,
            },
        );
        let watch = sp.subscribe(StandingQuery::ContentionWatch {
            victim,
            victim_dst: da,
            trigger_window: tb.cfg.trigger.window,
        });

        let mut verdicts: Vec<(u64, String, QueryRequest)> = Vec::new();
        let mut reclaim_windows: Vec<u64> = Vec::new();
        for w in 1..=8u64 {
            tb.sim.run_until(SimTime::from_ms(w * 5));
            let report = sp.run_window(&analyzer);
            let sweep = report.sweep.as_ref().expect("retention configured");
            if sweep.records_evicted > 0 {
                reclaim_windows.push(report.window);
            }
            match &report.standing[0].1 {
                StandingEval::Pending => {}
                StandingEval::Verdict {
                    request, response, ..
                } => verdicts.push((report.window, format!("{response:?}"), *request)),
            }
        }

        // The watch resolved mid-run and sweeps reclaimed records both
        // before and after it — the straddle the regression is about.
        let first_verdict_w = verdicts.first().expect("the burst must trigger").0;
        assert!(
            !reclaim_windows.is_empty(),
            "churned-out records must be reclaimed ({directory_shards} shards)"
        );
        assert!(
            reclaim_windows.iter().any(|&w| w > first_verdict_w),
            "at least one sweep must land after the verdict (straddle): \
             verdict at {first_verdict_w}, reclaims at {reclaim_windows:?}"
        );
        assert!(sp.stats().records_reclaimed > 0);

        // Across every sweep, the verdict re-derives bit-identically: the
        // pinned window's records were never collected.
        let baseline = &verdicts[0].1;
        for (w, render, _) in &verdicts {
            assert_eq!(
                render, baseline,
                "verdict diverged at window {w} ({directory_shards} shards)"
            );
        }
        // And the final re-derivation matches the live (swept) analyzer —
        // plane and analyzer agree over the truncated state.
        let (_, last_render, last_req) = verdicts.last().unwrap();
        assert_eq!(
            *last_render,
            format!("{:?}", analyzer.execute(last_req)),
            "post-sweep verdict must match the live analyzer"
        );
        // The incident log shows exactly one transition (Pending ->
        // contention verdict); the sweeps caused none.
        let transitions = sp
            .incidents()
            .iter()
            .filter(|i| i.sub == watch && i.kind == IncidentKind::Transition)
            .count();
        assert_eq!(
            transitions, 1,
            "sweeps must not perturb the incident stream ({directory_shards} shards)"
        );
    }
}

/// A *pending* contention watch still pins: its trigger may fire at any
/// moment, and the diagnosis window then reaches back ~2·trigger_window+ε
/// from "now" — so budget pressure must not evict the victim's live
/// record out from under the future diagnosis. Once the trigger fires the
/// pin snaps to the concrete epoch window.
#[test]
fn pending_watch_pins_its_near_future_window() {
    let (mut tb, victim, da) = suite::switchpointer::testbed::churn_storm(&[]);
    let w = tb.cfg.trigger.window;
    let q = StandingQuery::ContentionWatch {
        victim,
        victim_dst: da,
        trigger_window: w,
    };
    // Before the burst (15 ms): no trigger, but the pin covers the span a
    // trigger firing now would diagnose.
    tb.sim.run_until(SimTime::from_ms(10));
    let analyzer = tb.analyzer();
    let horizon = suite::switchpointer::retention::newest_epoch(&analyzer);
    let pin = q
        .pin_floor(&analyzer, horizon)
        .expect("a pending watch must pin its near-future window");
    assert!(pin < horizon, "the pin reaches back from the horizon");
    assert!(
        horizon - pin <= 8,
        "the pending pin is a bounded near-past span, not an open floor"
    );
    // After the trigger fires, the pin is the concrete diagnosis window.
    tb.sim.run_until(SimTime::from_ms(20));
    let horizon = suite::switchpointer::retention::newest_epoch(&analyzer);
    let trigger = *tb.hosts[&da]
        .borrow()
        .first_trigger_for(victim)
        .expect("the burst must trigger");
    assert_eq!(
        q.pin_floor(&analyzer, horizon),
        Some(analyzer.epoch_window(&trigger, w).lo),
        "a resolved watch pins its trigger's epoch window"
    );
}
