//! The sharded directory's contract:
//!
//! (a) **Verdict invariance.** `ShardedAnalyzer` verdicts are bit-identical
//!     to the sequential analyzer's at 1/2/4/8 directory shards — on both
//!     the storm workload (one-shot fat-tree batches, the `queryplane`
//!     regime) and the continuous-watch workload (standing queries over
//!     windows, the `streamplane` regime).
//! (b) **The partition is real.** Shards own disjoint host slices whose
//!     union is the whole directory; per-shard decode + merge equals the
//!     flat decode; fan-out counters attribute work to the owning shards.
//! (c) **Sharding pays.** The modelled decode cost of a balanced 4-shard
//!     directory is below the single-coordinator cost on the same queries.

use netsim::prelude::*;
use queryplane::{QueryPlane, QueryPlaneConfig};
use streamplane::{StandingEval, StandingQuery, StreamConfig, StreamPlane};
use switchpointer::query::QueryRequest;
use switchpointer::shard::ShardedAnalyzer;
use switchpointer::testbed::{Testbed, TestbedConfig};
use telemetry::EpochRange;

/// The storm fixture: a fat tree under mixed traffic with a starved
/// victim, same shape as the queryplane concurrency suite.
fn storm_testbed() -> (Testbed, FlowId) {
    let topo = Topology::fat_tree(4, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, b) = (tb.node("h0_0_0"), tb.node("h0_0_1"));
    let (da, db) = (tb.node("h2_0_0"), tb.node("h2_0_1"));
    let victim = tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
        a,
        da,
        Priority::LOW,
        SimTime::from_ms(40),
    ));
    tb.sim.add_udp_flow(UdpFlowSpec::burst(
        b,
        db,
        Priority::HIGH,
        SimTime::from_ms(15),
        SimTime::from_ms(2),
        GBPS,
    ));
    let (c, dc) = (tb.node("h1_0_0"), tb.node("h3_1_1"));
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: c,
        dst: dc,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(30),
        rate_bps: 100_000_000,
        payload_bytes: 1458,
    });
    tb.sim.run_until(SimTime::from_ms(40));
    (tb, victim)
}

fn storm_queries(tb: &Testbed, victim: FlowId) -> Vec<QueryRequest> {
    let window = EpochRange { lo: 10, hi: 20 };
    let mut reqs = Vec::new();
    for name in ["edge0_0", "agg0_0", "agg0_1", "core0_0", "edge2_0"] {
        reqs.push(QueryRequest::TopK {
            switch: tb.node(name),
            k: 10,
            range: window,
        });
        reqs.push(QueryRequest::LoadImbalance {
            switch: tb.node(name),
            range: window,
        });
    }
    reqs.push(QueryRequest::SilentDrop {
        flow: victim,
        src: tb.node("h0_0_0"),
        dst: tb.node("h2_0_0"),
        range: window,
    });
    let da = tb.node("h2_0_0");
    if tb.hosts[&da].borrow().first_trigger_for(victim).is_some() {
        let w = tb.cfg.trigger.window;
        reqs.push(QueryRequest::Contention {
            victim,
            victim_dst: da,
            trigger_window: w,
        });
        reqs.push(QueryRequest::RedLights {
            victim,
            victim_dst: da,
            trigger_window: w,
        });
        reqs.push(QueryRequest::Cascade {
            victim,
            victim_dst: da,
            trigger_window: w,
            max_depth: 3,
        });
    }
    reqs
}

#[test]
fn sharded_analyzer_verdicts_identical_on_storm_workload() {
    let (tb, victim) = storm_testbed();
    let analyzer = tb.analyzer();
    let reqs = storm_queries(&tb, victim);
    assert!(reqs.len() >= 11);
    let baseline: Vec<String> = reqs
        .iter()
        .map(|r| format!("{:?}", analyzer.execute(r)))
        .collect();
    for n_shards in [1usize, 2, 4, 8] {
        let sharded = ShardedAnalyzer::new(&analyzer, n_shards);
        assert_eq!(sharded.n_shards(), n_shards);
        let mut touched_hosts = 0u64;
        let mut merges = 0u64;
        for (i, req) in reqs.iter().enumerate() {
            let (resp, _trace, fanout) = sharded.execute_traced(req);
            assert_eq!(
                format!("{resp:?}"),
                baseline[i],
                "query {i} diverged at {n_shards} directory shards"
            );
            assert_eq!(fanout.decode_bits.len(), n_shards);
            touched_hosts += fanout.host_reads.iter().sum::<u64>();
            merges += fanout.merges;
        }
        assert!(touched_hosts > 0, "the workload must fan out to hosts");
        if n_shards > 1 {
            // Reassembled pointer unions are cross-shard merges.
            assert!(merges > 0, "sharded decode must merge across shards");
        }
    }
}

#[test]
fn query_plane_verdicts_identical_across_directory_shards() {
    let (tb, victim) = storm_testbed();
    let analyzer = tb.analyzer();
    let reqs = storm_queries(&tb, victim);
    let baseline: Vec<String> = reqs
        .iter()
        .map(|r| format!("{:?}", analyzer.execute(r)))
        .collect();
    let mut decode_totals = Vec::new();
    for directory_shards in [1usize, 2, 4, 8] {
        let mut plane = QueryPlane::from_analyzer(
            &analyzer,
            QueryPlaneConfig {
                workers: 4,
                shards: 8,
                directory_shards,
                cache_capacity: 4096,
                retention: None,
            },
        );
        let outcomes = plane.execute_batch(&reqs);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(
                format!("{:?}", o.response),
                baseline[i],
                "query {i} diverged at {directory_shards} directory shards"
            );
        }
        let fanout = plane.fanout();
        assert_eq!(fanout.decode_bits.len(), directory_shards);
        if directory_shards > 1 {
            assert!(
                plane.stats().cross_shard_merges > 0,
                "sharded decode must merge"
            );
        }
        if directory_shards >= 4 {
            // With few distinct decoded hosts a 2-way split can land on
            // one shard; by 4 shards the stable hash must spread them.
            assert!(
                fanout.decode_bits.iter().filter(|&&b| b > 0).count() > 1,
                "decode work must actually spread across {directory_shards} shards"
            );
        }
        decode_totals.push((directory_shards, plane.stats().modelled_decode_total));
    }
    // The acceptance bar: 4-shard modelled decode cost below 1-shard.
    let at = |n: usize| decode_totals.iter().find(|&&(s, _)| s == n).unwrap().1;
    assert!(
        at(4) < at(1),
        "4-shard decode ({}) must model below 1-shard ({})",
        at(4),
        at(1)
    );
}

/// The continuous-watch fixture: the chain deployment with standing
/// queries over advancing windows (the streamplane props fixture).
fn watch_testbed() -> Testbed {
    let topo = Topology::chain(3, 2, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, b) = (tb.node("A"), tb.node("B"));
    let (d, f) = (tb.node("D"), tb.node("F"));
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: f,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(30),
        rate_bps: 80_000_000,
        payload_bytes: 1458,
    });
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: b,
        dst: d,
        priority: Priority::LOW,
        start: SimTime::from_ms(4),
        duration: SimTime::from_ms(10),
        rate_bps: 60_000_000,
        payload_bytes: 1000,
    });
    tb.sim.add_tcp_flow(TcpFlowSpec::transfer(
        d,
        a,
        Priority::LOW,
        SimTime::ZERO,
        400_000,
    ));
    tb
}

fn watch_standing(tb: &Testbed) -> Vec<StandingQuery> {
    vec![
        StandingQuery::TopKSliding {
            switch: tb.node("S1"),
            k: 5,
            epochs_back: 6,
        },
        StandingQuery::TopKSliding {
            switch: tb.node("S2"),
            k: 5,
            epochs_back: 6,
        },
        StandingQuery::Fixed(QueryRequest::TopK {
            switch: tb.node("S3"),
            k: 5,
            range: EpochRange { lo: 0, hi: 3 },
        }),
        StandingQuery::LoadImbalanceSliding {
            switch: tb.node("S2"),
            epochs_back: 8,
        },
    ]
}

#[test]
fn continuous_watch_verdicts_identical_across_directory_shards() {
    let drive = |directory_shards: usize| -> (Vec<String>, Vec<Vec<String>>) {
        let mut tb = watch_testbed();
        let analyzer = tb.analyzer();
        let mut sp = StreamPlane::new(
            &analyzer,
            StreamConfig {
                plane: QueryPlaneConfig {
                    workers: 4,
                    shards: 4,
                    directory_shards,
                    cache_capacity: 1024,
                    retention: None,
                },
                result_cache_capacity: 256,
            },
        );
        for q in watch_standing(&tb) {
            sp.subscribe(q);
        }
        let mut verdicts = Vec::new();
        for w in 1..=4u64 {
            tb.sim.run_until(SimTime::from_ms(w * 5));
            let report = sp.run_window(&analyzer);
            assert_eq!(report.per_shard_standing.len(), directory_shards);
            assert_eq!(
                report.per_shard_standing.iter().sum::<usize>(),
                sp.subscriptions().len(),
                "every subscription must be owned by exactly one shard"
            );
            verdicts.push(
                report
                    .standing
                    .iter()
                    .map(|(id, e)| match e {
                        StandingEval::Pending => format!("{id}: pending"),
                        StandingEval::Verdict { response, .. } => format!("{id}: {response:?}"),
                    })
                    .collect::<Vec<String>>(),
            );
        }
        let incidents = sp
            .incidents()
            .iter()
            .map(|i| format!("{}/{:?}/{}/{}", i.sub, i.kind, i.summary, i.fingerprint))
            .collect::<Vec<String>>();
        (incidents, verdicts)
    };
    let (base_incidents, base_verdicts) = drive(1);
    assert!(!base_incidents.is_empty());
    for n in [2usize, 4, 8] {
        let (incidents, verdicts) = drive(n);
        assert_eq!(
            incidents, base_incidents,
            "incident stream diverged at {n} directory shards"
        );
        assert_eq!(
            verdicts, base_verdicts,
            "standing verdicts diverged at {n} directory shards"
        );
    }
}

#[test]
fn subscriptions_partition_across_shards() {
    let mut tb = watch_testbed();
    let analyzer = tb.analyzer();
    let mut sp = StreamPlane::new(
        &analyzer,
        StreamConfig {
            plane: QueryPlaneConfig {
                workers: 2,
                shards: 4,
                directory_shards: 4,
                cache_capacity: 256,
                retention: None,
            },
            result_cache_capacity: 64,
        },
    );
    let ids: Vec<_> = watch_standing(&tb)
        .into_iter()
        .map(|q| sp.subscribe(q))
        .collect();
    let by_shard = sp.subscriptions_by_shard();
    assert_eq!(by_shard.len(), 4);
    let mut seen: Vec<_> = by_shard.into_iter().flatten().collect();
    seen.sort();
    let mut expected = ids.clone();
    expected.sort();
    assert_eq!(
        seen, expected,
        "each subscription owned by exactly one shard"
    );
    tb.sim.run_until(SimTime::from_ms(5));
    let report = sp.run_window(&analyzer);
    assert_eq!(report.per_shard_standing.iter().sum::<usize>(), ids.len());
}

/// (b continued) The shard-backend abstraction is the same partition
/// behind a different reach: a [`BackendRouter`] over in-process
/// [`LocalBackend`]s (what a wire deployment computes behind its
/// sockets) answers bit-identically to the flat analyzer, at any shard
/// count, while coalescing each query wave into one backend call per
/// shard.
#[test]
fn backend_router_over_local_backends_matches_flat_view() {
    use queryplane::Snapshot;
    use switchpointer::shard::{BackendRouter, LocalBackend, ShardedDirectory};

    let (tb, victim) = storm_testbed();
    let analyzer = tb.analyzer();
    let reqs = storm_queries(&tb, victim);
    let baseline: Vec<String> = reqs
        .iter()
        .map(|r| format!("{:?}", analyzer.execute(r)))
        .collect();
    let snapshot = Snapshot::capture(&analyzer, 8);
    for n_shards in [1usize, 2, 4, 8] {
        let dir = ShardedDirectory::new(
            analyzer.directory().mphf().clone(),
            &analyzer.all_hosts(),
            n_shards,
        );
        let backends: Vec<LocalBackend<'_, Snapshot>> = dir
            .shards()
            .iter()
            .map(|s| LocalBackend::new(s, &snapshot))
            .collect();
        for coalesce in [true, false] {
            let router = if coalesce {
                BackendRouter::new(&backends, &dir)
            } else {
                BackendRouter::new(&backends, &dir).without_coalescing()
            };
            for (i, req) in reqs.iter().enumerate() {
                let exec = switchpointer::query::QueryExecutor::new(analyzer.ctx(), &router);
                let resp = exec.execute(req);
                assert_eq!(
                    format!("{resp:?}"),
                    baseline[i],
                    "query {i} diverged through the backend router \
                     ({n_shards} shards, coalesce={coalesce})"
                );
            }
            let c = router.counters();
            assert!(c.rpcs >= c.rounds, "a round needs at least one RPC");
            if !coalesce {
                // The naive regime can only cost more backend calls.
                let batched = BackendRouter::new(&backends, &dir);
                let exec = switchpointer::query::QueryExecutor::new(analyzer.ctx(), &batched);
                exec.execute(&reqs[0]);
                assert!(
                    c.rpcs / reqs.len() as u64 >= batched.counters().rpcs,
                    "coalescing must not increase per-query RPCs"
                );
            }
        }
    }
}
