//! End-to-end §5.1 "too much traffic": the full SwitchPointer loop from
//! packets on the wire to an analyzer verdict, for both the priority-based
//! and the microburst-based variants.

use netsim::prelude::*;
use netsim::queue::QueueConfig;
use switchpointer::analyzer::Verdict;
use switchpointer::testbed::{Testbed, TestbedConfig};

/// Builds the contention fixture: low-prio TCP L0→R0 plus `m` high-prio
/// UDP bursts at 20 ms; returns (testbed, victim flow, victim dst).
fn contention_testbed(
    m: usize,
    queue: QueueConfig,
    burst_priority: Priority,
) -> (Testbed, FlowId, NodeId) {
    let topo = Topology::dumbbell(m + 1, m + 1, GBPS);
    let mut cfg = TestbedConfig::default_ms();
    cfg.sim.switch_queue = queue;
    let mut tb = Testbed::new(topo, cfg);
    let a = tb.node("L0");
    let b = tb.node("R0");
    let tcp = tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
        a,
        b,
        Priority::LOW,
        SimTime::from_ms(50),
    ));
    for u in 0..m {
        let src = tb.node(&format!("L{}", u + 1));
        let dst = tb.node(&format!("R{}", u + 1));
        tb.sim.add_udp_flow(UdpFlowSpec::burst(
            src,
            dst,
            burst_priority,
            SimTime::from_ms(20),
            SimTime::from_ms(1),
            GBPS,
        ));
    }
    tb.sim.run_until(SimTime::from_ms(50));
    (tb, tcp, b)
}

#[test]
fn priority_contention_diagnosed_with_all_culprits() {
    for m in [1usize, 4, 8] {
        let (tb, victim, dst) =
            contention_testbed(m, QueueConfig::default_priority(), Priority::HIGH);
        // The victim's host noticed the starvation on its own.
        let trig = tb.hosts[&dst].borrow().first_trigger_for(victim).copied();
        let trig = trig.unwrap_or_else(|| panic!("m={m}: no trigger"));
        assert!(
            trig.at >= SimTime::from_ms(20) && trig.at <= SimTime::from_ms(25),
            "m={m}: trigger at {} not near the burst",
            trig.at
        );

        let d = tb
            .analyzer()
            .diagnose_contention(victim, dst, tb.cfg.trigger.window);
        assert_eq!(d.verdict, Verdict::PriorityContention, "m={m}");
        assert_eq!(d.hosts_contacted, m, "m={m}: exactly the burst receivers");
        assert_eq!(d.culprits.len(), m, "m={m}: every burst flow identified");
        for c in &d.culprits {
            assert_eq!(c.priority, Priority::HIGH);
            assert!(!c.common_epochs.is_empty());
        }
        // Paper: the whole episode stays under 100 ms.
        assert!(
            d.breakdown.total() < SimTime::from_ms(100),
            "m={m}: {}",
            d.breakdown.total()
        );
    }
}

#[test]
fn microburst_contention_gets_microburst_verdict() {
    // FIFO queue, bursts at the same priority as the victim: drops, not
    // priority starvation. 8 equal-priority line-rate bursts overflow the
    // 1 MB shared buffer.
    let (tb, victim, dst) = contention_testbed(8, QueueConfig::default_fifo(), Priority::LOW);
    let d = tb
        .analyzer()
        .diagnose_contention(victim, dst, tb.cfg.trigger.window);
    assert_eq!(d.verdict, Verdict::Microburst);
    assert!(!d.culprits.is_empty());
    assert!(d.culprits.iter().all(|c| c.priority == Priority::LOW));
}

#[test]
fn diagnosis_latency_grows_with_contending_hosts() {
    let mut last = SimTime::ZERO;
    for m in [1usize, 4, 16] {
        let (tb, victim, dst) =
            contention_testbed(m, QueueConfig::default_priority(), Priority::HIGH);
        let d = tb
            .analyzer()
            .diagnose_contention(victim, dst, tb.cfg.trigger.window);
        assert!(
            d.breakdown.diagnosis > last,
            "m={m}: diagnosis {} did not grow past {last}",
            d.breakdown.diagnosis
        );
        last = d.breakdown.diagnosis;
        // Connection initiation dominates the diagnosis detail (§6.2).
        let det = d.breakdown.diagnosis_detail;
        assert!(det.connection_initiation >= det.request);
        assert!(det.connection_initiation >= det.response);
    }
}

#[test]
fn quiet_network_raises_no_triggers() {
    let (tb, victim, dst) = {
        let topo = Topology::dumbbell(2, 2, GBPS);
        let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
        let a = tb.node("L0");
        let b = tb.node("R0");
        let tcp = tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
            a,
            b,
            Priority::LOW,
            SimTime::from_ms(30),
        ));
        tb.sim.run_until(SimTime::from_ms(28));
        (tb, tcp, b)
    };
    assert!(
        tb.hosts[&dst].borrow().first_trigger_for(victim).is_none(),
        "uncontended flow must not trigger"
    );
}
