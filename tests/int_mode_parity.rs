//! The clean-slate INT embedding (§4.1.3's alternative) must reach the
//! same diagnoses as the commodity double-tag design — with exact epochs
//! at every hop instead of extrapolated ranges.

use netsim::prelude::*;
use switchpointer::analyzer::Verdict;
use switchpointer::testbed::{Testbed, TestbedConfig};
use telemetry::EmbedMode;

fn contention_episode(mode: EmbedMode) -> switchpointer::ContentionDiagnosis {
    let m = 4;
    let topo = Topology::dumbbell(m + 1, m + 1, GBPS);
    let mut cfg = TestbedConfig::default_ms();
    cfg.mode = mode;
    let mut tb = Testbed::new(topo, cfg);
    let (a, b) = (tb.node("L0"), tb.node("R0"));
    let victim = tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
        a,
        b,
        Priority::LOW,
        SimTime::from_ms(40),
    ));
    for u in 0..m {
        let (s, d) = (
            tb.node(&format!("L{}", u + 1)),
            tb.node(&format!("R{}", u + 1)),
        );
        tb.sim.add_udp_flow(UdpFlowSpec::burst(
            s,
            d,
            Priority::HIGH,
            SimTime::from_ms(20),
            SimTime::from_ms(1),
            GBPS,
        ));
    }
    tb.sim.run_until(SimTime::from_ms(40));
    tb.analyzer()
        .diagnose_contention(victim, b, tb.cfg.trigger.window)
}

#[test]
fn int_and_commodity_agree_on_contention() {
    let commodity = contention_episode(EmbedMode::Commodity);
    let int = contention_episode(EmbedMode::Int);

    assert_eq!(commodity.verdict, Verdict::PriorityContention);
    assert_eq!(int.verdict, Verdict::PriorityContention);

    let cset: std::collections::BTreeSet<FlowId> =
        commodity.culprits.iter().map(|c| c.flow).collect();
    let iset: std::collections::BTreeSet<FlowId> = int.culprits.iter().map(|c| c.flow).collect();
    assert_eq!(cset, iset, "same culprit flows under either embedding");
    assert_eq!(commodity.hosts_contacted, int.hosts_contacted);
}

#[test]
fn int_epoch_sets_are_tighter() {
    // INT carries exact per-hop epochs; commodity extrapolates ranges.
    // A flow's record under INT must therefore never hold *more* epochs
    // per switch than under commodity.
    let run = |mode: EmbedMode| {
        let topo = Topology::chain(3, 2, GBPS);
        let mut cfg = TestbedConfig::default_ms();
        cfg.mode = mode;
        let mut tb = Testbed::new(topo, cfg);
        let (a, f) = (tb.node("A"), tb.node("F"));
        let flow = tb.sim.add_udp_flow(UdpFlowSpec {
            src: a,
            dst: f,
            priority: Priority::LOW,
            start: SimTime::from_ms(2),
            duration: SimTime::from_ms(3),
            rate_bps: 300_000_000,
            payload_bytes: 1458,
        });
        let epochs_per_switch: Vec<usize> = {
            tb.sim.run_until(SimTime::from_ms(10));
            let host = tb.hosts[&f].borrow();
            let rec = host.store.record(flow).unwrap();
            rec.path.iter().map(|sw| rec.epochs_at[sw].len()).collect()
        };
        epochs_per_switch
    };
    let commodity = run(EmbedMode::Commodity);
    let int = run(EmbedMode::Int);
    assert_eq!(commodity.len(), int.len());
    for (c, i) in commodity.iter().zip(&int) {
        assert!(
            i <= c,
            "INT must be at least as tight: int={int:?} commodity={commodity:?}"
        );
    }
    // And strictly tighter somewhere (the extrapolation is not free).
    assert!(
        int.iter().sum::<usize>() < commodity.iter().sum::<usize>(),
        "extrapolation should cost precision: int={int:?} commodity={commodity:?}"
    );
}

#[test]
fn archived_pointer_serde_roundtrip() {
    // The control plane persists flushed pointer sets; their bit contents
    // must survive serialization (the push model's storage format).
    use std::sync::Arc;
    use switchpointer::pointer::{PointerConfig, PointerHierarchy};

    let addrs: Vec<u64> = (0..64u64).map(|i| 0x0a00_0000 + i).collect();
    let mphf = Arc::new(mphf::Mphf::build(&addrs).unwrap());
    let mut h = PointerHierarchy::new(
        PointerConfig {
            n_hosts: 64,
            alpha: 2,
            k: 2,
        },
        mphf,
    );
    for e in 0..10u64 {
        h.update(addrs[(e * 3 % 64) as usize], e);
    }
    assert!(!h.archive().is_empty());
    for arch in h.archive() {
        let json = serde_json::to_string(&arch.bits).unwrap();
        let back: switchpointer::bitset::BitSet = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, &arch.bits);
    }
}
