//! End-to-end robustness under clock asynchrony: the paper's claim is that
//! bounded clock offsets (≤ ε) never break *correctness* — the epoch
//! machinery widens ranges, so diagnoses may touch more hosts but never
//! miss the culprit. These tests randomize every switch's clock within ε
//! and assert the full §5.1 loop still lands on the right answer.

use netsim::prelude::*;
use proptest::prelude::*;
use switchpointer::analyzer::Verdict;
use switchpointer::testbed::{Testbed, TestbedConfig};

/// One full contention episode with per-switch offsets (ns, |x| ≤ ε/2 so
/// pairwise skew ≤ ε = 1 ms).
fn episode(offsets_ns: [i64; 2], seed: u64) -> switchpointer::ContentionDiagnosis {
    let m = 3;
    let topo = Topology::dumbbell(m + 1, m + 1, GBPS);
    let mut cfg = TestbedConfig::default_ms();
    cfg.sim.seed = seed;
    let mut tb = Testbed::new(topo, cfg);
    let sl = tb.node("SL");
    let sr = tb.node("SR");
    tb.sim.set_clock_offset(sl, offsets_ns[0]);
    tb.sim.set_clock_offset(sr, offsets_ns[1]);

    let (a, b) = (tb.node("L0"), tb.node("R0"));
    let victim = tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
        a,
        b,
        Priority::LOW,
        SimTime::from_ms(40),
    ));
    for u in 0..m {
        let (s, d) = (
            tb.node(&format!("L{}", u + 1)),
            tb.node(&format!("R{}", u + 1)),
        );
        tb.sim.add_udp_flow(UdpFlowSpec::burst(
            s,
            d,
            Priority::HIGH,
            SimTime::from_ms(20),
            SimTime::from_ms(1),
            GBPS,
        ));
    }
    tb.sim.run_until(SimTime::from_ms(40));
    tb.analyzer()
        .diagnose_contention(victim, b, tb.cfg.trigger.window)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any bounded skew assignment: the verdict and the culprit set are
    /// unchanged (asynchrony costs search radius, never correctness).
    #[test]
    fn diagnosis_invariant_under_bounded_skew(
        off_sl in -500_000i64..=500_000,
        off_sr in -500_000i64..=500_000,
        seed in 0u64..50,
    ) {
        let d = episode([off_sl, off_sr], seed);
        prop_assert_eq!(d.verdict, Verdict::PriorityContention);
        prop_assert_eq!(d.culprits.len(), 3, "all culprits found");
        prop_assert!(d.hosts_contacted >= 3);
        // Bounded inflation: skew may widen the window, but never to the
        // point of contacting unrelated hosts (only the 3 UDP receivers
        // share the victim's egress in this fixture).
        prop_assert!(d.hosts_contacted <= 4, "radius blew up: {}", d.hosts_contacted);
    }
}

#[test]
fn zero_skew_baseline_matches() {
    let d = episode([0, 0], 1);
    assert_eq!(d.verdict, Verdict::PriorityContention);
    assert_eq!(d.culprits.len(), 3);
}

#[test]
fn simulation_is_deterministic_under_fixed_offsets() {
    let run = || {
        let d = episode([250_000, -250_000], 9);
        (
            d.verdict,
            d.hosts_contacted,
            d.culprits.iter().map(|c| c.flow).collect::<Vec<_>>(),
            d.epochs,
        )
    };
    assert_eq!(run(), run());
}
