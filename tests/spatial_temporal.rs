//! End-to-end tests of the spatial (§5.2 red lights) and spatio-temporal
//! (§5.3 cascades) diagnosis applications on the S1—S2—S3 chain.

use netsim::prelude::*;
use switchpointer::testbed::{Testbed, TestbedConfig};

fn chain_testbed() -> Testbed {
    Testbed::new(Topology::chain(3, 2, GBPS), TestbedConfig::default_ms())
}

#[test]
fn red_lights_implicates_both_switches() {
    let mut tb = chain_testbed();
    let (a, f) = (tb.node("A"), tb.node("F"));
    let victim = tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
        a,
        f,
        Priority::LOW,
        SimTime::from_ms(30),
    ));
    let (b, d) = (tb.node("B"), tb.node("D"));
    let (c, e) = (tb.node("C"), tb.node("E"));
    tb.sim.add_udp_flow(UdpFlowSpec::burst(
        b,
        d,
        Priority::HIGH,
        SimTime::from_us(10_000),
        SimTime::from_us(400),
        GBPS,
    ));
    tb.sim.add_udp_flow(UdpFlowSpec::burst(
        c,
        e,
        Priority::HIGH,
        SimTime::from_us(10_400),
        SimTime::from_us(400),
        GBPS,
    ));
    tb.sim.run_until(SimTime::from_ms(30));

    let diag = tb
        .analyzer()
        .diagnose_red_lights(victim, f, tb.cfg.trigger.window);

    let s1 = tb.node("S1");
    let s2 = tb.node("S2");
    let s3 = tb.node("S3");
    assert!(diag.implicated.contains(&s1), "S1 red light missed");
    assert!(diag.implicated.contains(&s2), "S2 red light missed");
    assert!(!diag.implicated.contains(&s3), "S3 falsely implicated");

    // The culprits at each switch are the right flows.
    let at = |sw: NodeId| {
        diag.per_switch
            .iter()
            .find(|(s, _)| *s == sw)
            .map(|(_, c)| c.clone())
            .unwrap()
    };
    assert!(at(s1).iter().any(|c| c.src == b && c.dst == d));
    assert!(at(s2).iter().any(|c| c.src == c_node(&tb) && c.dst == e));

    // Both culprits share at least one epoch with the victim's window —
    // the paper's "at least one common epochID" conclusion.
    for (_, culprits) in &diag.per_switch {
        for cu in culprits {
            assert!(!cu.common_epochs.is_empty());
        }
    }

    // Paper: retrieval over 3 switches ~10 ms; whole diagnosis ~30 ms.
    let b_ms = diag.breakdown.pointer_retrieval.as_ms_f64();
    assert!((8.0..=12.0).contains(&b_ms), "retrieval {b_ms} ms");
    assert!(diag.breakdown.total() < SimTime::from_ms(60));
}

fn c_node(tb: &Testbed) -> NodeId {
    tb.node("C")
}

#[test]
fn cascade_chain_recovered_in_order() {
    let mut tb = chain_testbed();
    let (a, b, c, d, e, f) = (
        tb.node("A"),
        tb.node("B"),
        tb.node("C"),
        tb.node("D"),
        tb.node("E"),
        tb.node("F"),
    );
    // B-D high prio, rerouted into A-F's 10-20 ms window.
    let bd = tb.sim.add_udp_flow(UdpFlowSpec {
        src: b,
        dst: d,
        priority: Priority::HIGH,
        start: SimTime::from_ms(14),
        duration: SimTime::from_ms(10),
        rate_bps: 950_000_000,
        payload_bytes: 1458,
    });
    let af = tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: f,
        priority: Priority::MID,
        start: SimTime::from_ms(10),
        duration: SimTime::from_ms(10),
        rate_bps: 950_000_000,
        payload_bytes: 1458,
    });
    let ce = tb.sim.add_tcp_flow(TcpFlowSpec::transfer(
        c,
        e,
        Priority::LOW,
        SimTime::from_us(20_500),
        2_000_000,
    ));
    tb.sim.run_until(SimTime::from_ms(80));

    let diag = tb
        .analyzer()
        .diagnose_cascade(ce, e, tb.cfg.trigger.window, 4);
    assert_eq!(diag.stages.len(), 2, "both links of the chain");

    // Stage 1: C-E was delayed by A-F at S2.
    let s2 = tb.node("S2");
    assert_eq!(diag.stages[0].victim, ce);
    assert_eq!(diag.stages[0].culprit.flow, af);
    assert_eq!(diag.stages[0].switch, s2);

    // Stage 2: A-F was delayed by B-D at S1 — a flow that never raised any
    // trigger itself (the capability the paper says existing tools lack).
    let s1 = tb.node("S1");
    assert_eq!(diag.stages[1].victim, af);
    assert_eq!(diag.stages[1].culprit.flow, bd);
    assert_eq!(diag.stages[1].switch, s1);

    // Note: A-F's receiver also observes the throughput drop (the naive
    // 50% heuristic fires on any victim), but the cascade diagnosis is
    // driven from C-E's trigger and still recovers B-D behind A-F —
    // including the stage where A-F is a *culprit*, not a complainant.
}

#[test]
fn no_cascade_when_bursts_do_not_overlap() {
    let mut tb = chain_testbed();
    let (a, b, c, d, e, f) = (
        tb.node("A"),
        tb.node("B"),
        tb.node("C"),
        tb.node("D"),
        tb.node("E"),
        tb.node("F"),
    );
    // Same flows, but B-D runs 0-10 ms: no contention anywhere.
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: b,
        dst: d,
        priority: Priority::HIGH,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(10),
        rate_bps: 950_000_000,
        payload_bytes: 1458,
    });
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: f,
        priority: Priority::MID,
        start: SimTime::from_ms(10),
        duration: SimTime::from_ms(10),
        rate_bps: 950_000_000,
        payload_bytes: 1458,
    });
    let ce = tb.sim.add_tcp_flow(TcpFlowSpec::transfer(
        c,
        e,
        Priority::LOW,
        SimTime::from_us(20_500),
        2_000_000,
    ));
    tb.sim.run_until(SimTime::from_ms(80));

    // C-E completes promptly and never triggers *while running* (the
    // naive heuristic does fire once when the flow ends and throughput
    // goes to zero — an artifact the paper's heuristic shares).
    assert!(tb.sim.tcp(ce).is_complete());
    let done = tb.sim.tcp(ce).finished_at.unwrap();
    let host = tb.hosts[&e].borrow();
    if let Some(t) = host.first_trigger_for(ce) {
        assert!(
            t.at + SimTime::from_ms(1) >= done,
            "mid-transfer trigger at {} in a clean run (done {})",
            t.at,
            done
        );
    }
}
