//! Property-based tests of the minimal perfect hash function: bijection,
//! determinism, serialization stability, and foreign-key behaviour over
//! arbitrary key sets.

use std::collections::HashSet;

use mphf::{Mphf, MphfBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any distinct key set, the function is a bijection onto 0..n.
    #[test]
    fn bijection_over_arbitrary_keys(
        keys in prop::collection::hash_set(any::<u64>(), 1..400)
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let f = Mphf::build(&keys).expect("build");
        let mut seen = vec![false; keys.len()];
        for k in &keys {
            let i = f.index(k).expect("member maps");
            prop_assert!(!seen[i], "collision at {i}");
            seen[i] = true;
        }
        prop_assert!(seen.iter().all(|&b| b), "not minimal");
    }

    /// `index_unchecked` stays in range even for keys outside the set.
    #[test]
    fn unchecked_always_in_range(
        keys in prop::collection::hash_set(any::<u64>(), 1..200),
        probes in prop::collection::vec(any::<u64>(), 50),
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let f = Mphf::build(&keys).unwrap();
        for p in probes {
            prop_assert!(f.index_unchecked(&p) < keys.len());
        }
    }

    /// Checked lookups of foreign keys either reject or (rarely) alias into
    /// range — never panic, never exceed the range.
    #[test]
    fn foreign_keys_safe(
        keys in prop::collection::hash_set(0u64..1_000_000, 2..200),
        probes in prop::collection::vec(1_000_000u64..2_000_000, 50),
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let f = Mphf::build(&keys).unwrap();
        for p in probes {
            if let Some(i) = f.index(&p) {
                prop_assert!(i < keys.len());
            }
        }
    }

    /// Construction is deterministic and insensitive to key order.
    #[test]
    fn order_insensitive_determinism(
        keys in prop::collection::hash_set(any::<u64>(), 2..150),
        seed in any::<u64>(),
    ) {
        let mut a: Vec<u64> = keys.iter().copied().collect();
        let mut b = a.clone();
        a.sort_unstable();
        // A deterministic shuffle of b.
        let mut s = seed | 1;
        for i in (1..b.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            b.swap(i, (s >> 33) as usize % (i + 1));
        }
        let fa = Mphf::build(&a).unwrap();
        let fb = Mphf::build(&b).unwrap();
        for k in &a {
            prop_assert_eq!(fa.index(k), fb.index(k));
        }
    }

    /// JSON round-trips preserve every mapping.
    #[test]
    fn serde_roundtrip(keys in prop::collection::hash_set(any::<u64>(), 1..120)) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let f = Mphf::build(&keys).unwrap();
        let g: Mphf = serde_json::from_str(&serde_json::to_string(&f).unwrap()).unwrap();
        for k in &keys {
            prop_assert_eq!(f.index(k), g.index(k));
        }
    }

    /// Larger bucket loads still build and stay bijective.
    #[test]
    fn lambda_sweep(
        lambda in 1usize..7,
        n in 1usize..300,
    ) {
        let keys: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let f = MphfBuilder::new().lambda(lambda).build(&keys).unwrap();
        let distinct: HashSet<usize> = keys.iter().map(|k| f.index(k).unwrap()).collect();
        prop_assert_eq!(distinct.len(), n);
    }
}

#[test]
fn too_many_keys_rejected_immediately() {
    // 2^20 + 1 keys exceeds the packed-displacement format.
    let keys: Vec<u64> = (0..(1u64 << 20) + 1).collect();
    match Mphf::build(&keys) {
        Err(mphf::BuildError::TooManyKeys(n)) => assert_eq!(n, (1 << 20) + 1),
        other => panic!("expected TooManyKeys, got {other:?}"),
    }
}
