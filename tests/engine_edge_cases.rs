//! Engine-level edge cases and invariants: event ordering, byte
//! conservation, stats accounting, and configuration extremes.

use netsim::prelude::*;
use netsim::queue::QueueConfig;

#[test]
fn udp_byte_conservation_without_loss() {
    // Everything sent is delivered or still in flight at the horizon;
    // with a generous horizon, delivered == sent.
    let topo = Topology::chain(3, 2, GBPS);
    let mut sim = netsim::engine::Simulator::new(topo, Default::default());
    let a = sim.topo().node_by_name("A").unwrap();
    let f = sim.topo().node_by_name("F").unwrap();
    let flow = sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: f,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(5),
        rate_bps: 700_000_000,
        payload_bytes: 1458,
    });
    sim.run_to_completion();
    assert_eq!(sim.traces.rx_bytes(flow), sim.udp(flow).sent_bytes);
    assert_eq!(sim.traces.drops_for(flow), 0);
}

#[test]
fn overload_conserves_bytes_with_drops() {
    // Two line-rate UDP flows into one egress: delivered + dropped payload
    // must equal sent payload.
    let topo = Topology::dumbbell(2, 2, GBPS);
    let mut sim = netsim::engine::Simulator::new(
        topo,
        netsim::engine::SimConfig {
            switch_queue: QueueConfig::Fifo {
                capacity_bytes: 100_000,
            },
            ..Default::default()
        },
    );
    let mut flows = Vec::new();
    for i in 0..2 {
        let src = sim.topo().node_by_name(&format!("L{i}")).unwrap();
        let dst = sim.topo().node_by_name(&format!("R{i}")).unwrap();
        flows.push(sim.add_udp_flow(UdpFlowSpec {
            src,
            dst,
            priority: Priority::LOW,
            start: SimTime::ZERO,
            duration: SimTime::from_ms(3),
            rate_bps: GBPS,
            payload_bytes: 1458,
        }));
    }
    sim.run_to_completion();
    for &f in &flows {
        let sent = sim.udp(f).sent_pkts as usize;
        let delivered = sim.traces.rx_events(f).len();
        let dropped = sim.traces.drops_for(f);
        assert_eq!(sent, delivered + dropped, "flow {f}");
    }
    // And the contention genuinely dropped something.
    let total_drops: usize = flows.iter().map(|&f| sim.traces.drops_for(f)).sum();
    assert!(total_drops > 0);
}

#[test]
fn rx_events_are_time_ordered() {
    let topo = Topology::dumbbell(2, 2, GBPS);
    let mut sim = netsim::engine::Simulator::new(topo, Default::default());
    let a = sim.topo().node_by_name("L0").unwrap();
    let b = sim.topo().node_by_name("R0").unwrap();
    let f = sim.add_tcp_flow(TcpFlowSpec::transfer(
        a,
        b,
        Priority::LOW,
        SimTime::ZERO,
        500_000,
    ));
    sim.run_to_completion();
    let ev = sim.traces.rx_events(f);
    assert!(ev.windows(2).all(|w| w[0].t <= w[1].t));
    assert!(!ev.is_empty());
}

#[test]
fn simultaneous_flow_starts_are_deterministic() {
    let run = || {
        let topo = Topology::star(8, GBPS);
        let mut sim = netsim::engine::Simulator::new(topo, Default::default());
        let mut ids = Vec::new();
        for i in 0..4 {
            let src = sim.topo().node_by_name(&format!("H{i}")).unwrap();
            let dst = sim.topo().node_by_name(&format!("H{}", i + 4)).unwrap();
            ids.push(sim.add_udp_flow(UdpFlowSpec {
                src,
                dst,
                priority: Priority::LOW,
                start: SimTime::from_ms(1), // identical start times
                duration: SimTime::from_ms(1),
                rate_bps: 400_000_000,
                payload_bytes: 1000,
            }));
        }
        sim.run_to_completion();
        ids.iter()
            .map(|&f| {
                (
                    sim.traces.rx_bytes(f),
                    sim.traces.rx_events(f).first().map(|e| e.t),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn port_stats_track_transmissions() {
    let topo = Topology::chain(2, 1, GBPS);
    let mut sim = netsim::engine::Simulator::new(topo, Default::default());
    let a = sim.topo().node_by_name("A").unwrap();
    let b = sim.topo().node_by_name("B").unwrap();
    sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: b,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(1),
        rate_bps: 100_000_000,
        payload_bytes: 1000,
    });
    sim.run_to_completion();
    let s1 = sim.topo().node_by_name("S1").unwrap();
    // S1's port toward S2 carried the flow.
    let s2 = sim.topo().node_by_name("S2").unwrap();
    let port = sim
        .topo()
        .ports(s1)
        .iter()
        .position(|&(_, p)| p == s2)
        .unwrap() as u16;
    assert!(sim.port_tx_bytes(s1, port) > 0);
    let stats = sim.port_queue_stats(s1, port);
    assert!(stats.enqueued_pkts > 0);
    assert_eq!(stats.dropped_pkts, 0);
}

#[test]
fn tiny_transfer_one_segment() {
    let topo = Topology::chain(2, 1, GBPS);
    let mut sim = netsim::engine::Simulator::new(topo, Default::default());
    let a = sim.topo().node_by_name("A").unwrap();
    let b = sim.topo().node_by_name("B").unwrap();
    let f = sim.add_tcp_flow(TcpFlowSpec::transfer(a, b, Priority::LOW, SimTime::ZERO, 1));
    sim.run_to_completion();
    assert!(sim.tcp(f).is_complete());
    assert_eq!(sim.tcp(f).delivered, 1);
}

#[test]
fn priority_inversion_impossible_on_shared_port() {
    // With strict priority, a HIGH packet enqueued behind buffered LOW
    // packets still leaves first (head-of-line only within its class).
    let topo = Topology::dumbbell(2, 2, GBPS);
    let mut sim = netsim::engine::Simulator::new(topo, Default::default());
    let l0 = sim.topo().node_by_name("L0").unwrap();
    let r0 = sim.topo().node_by_name("R0").unwrap();
    let l1 = sim.topo().node_by_name("L1").unwrap();
    let r1 = sim.topo().node_by_name("R1").unwrap();
    let low = sim.add_udp_flow(UdpFlowSpec {
        src: l0,
        dst: r0,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(2),
        rate_bps: GBPS,
        payload_bytes: 1458,
    });
    let high = sim.add_udp_flow(UdpFlowSpec {
        src: l1,
        dst: r1,
        priority: Priority::HIGH,
        start: SimTime::from_us(500),
        duration: SimTime::from_ms(1),
        rate_bps: GBPS,
        payload_bytes: 1458,
    });
    sim.run_to_completion();
    // While HIGH was active (0.5-1.5 ms), LOW progress must be ~zero.
    let low_events = sim.traces.rx_events(low);
    let during = low_events
        .iter()
        .filter(|e| e.t >= SimTime::from_us(600) && e.t < SimTime::from_us(1_400))
        .count();
    assert!(during <= 2, "low-priority leaked {during} packets");
    assert!(!sim.traces.rx_events(high).is_empty());
}
