//! The wire layer's contract:
//!
//! (a) **Codec totality.** Every protocol frame type round-trips
//!     encode→decode as the identity; truncated and corrupt frames
//!     surface typed [`WireError`]s instead of panicking (randomized
//!     over frame contents).
//! (b) **Verdict invariance across the wire.** A query served through N
//!     wire-connected shard servers is bit-identical to the in-process
//!     [`ShardedAnalyzer`] at 1/2/4/8 shards — for one-shot queries via
//!     a real client connection, and for a standing-query incident
//!     stream against the in-process [`StreamPlane`].
//! (c) **Failure recovery.** Killing connections mid-stream (client side
//!     and front-end→shard side) loses nothing: the client resubscribes
//!     with its cursor and re-derives the incident log bit-identically,
//!     with zero duplicated and zero dropped transitions.
//! (d) **Boundaries are typed.** Degenerate plane configs are rejected
//!     with [`queryplane::ConfigError`]; a full accept pool refuses with
//!     a typed error frame.

use std::collections::BTreeMap;

use netsim::prelude::*;
use proptest::prelude::*;
use proptest::rng_for;
use queryplane::{
    ConfigError, DeltaRecord, HostPatch, HostPatchKind, QueryPlane, QueryPlaneConfig,
    ShardedHostStore,
};
use replicaplane::ReplicaCluster;
use streamplane::{Incident, StandingQuery, StreamConfig, StreamPlane, SubscriptionId};
use switchpointer::analyzer::{
    CascadeDiagnosis, CascadeStage, ContentionDiagnosis, Culprit, DropDiagnosis,
    LoadImbalanceDiagnosis, RedLightsDiagnosis, TopKResult, Verdict,
};
use switchpointer::cost::{LatencyBreakdown, QueryWaveCost};
use switchpointer::hoststore::FlowRecord;
use switchpointer::query::{QueryRequest, QueryResponse};
use switchpointer::shard::ShardedAnalyzer;
use switchpointer::testbed::{Testbed, TestbedConfig};
use telemetry::frame::{read_frame, WireError, MAX_FRAME};
use telemetry::EpochRange;
use wireplane::proto::Frame;
use wireplane::{WireCluster, WireConfig, WireEvent};

// ----------------------------------------------------------------------
// (a) Codec totality
// ----------------------------------------------------------------------

fn gen_epoch_range(rng: &mut TestRng) -> EpochRange {
    let lo = rng.below(64);
    EpochRange {
        lo,
        hi: lo + rng.below(32),
    }
}

fn gen_record(rng: &mut TestRng) -> FlowRecord {
    let mut epochs_at = BTreeMap::new();
    for _ in 0..rng.below(4) {
        let sw = NodeId(rng.below(64) as u32);
        let mut set = std::collections::BTreeSet::new();
        for _ in 0..rng.below(5) {
            set.insert(rng.below(100));
        }
        epochs_at.insert(sw, set);
    }
    let mut bytes_per_epoch = BTreeMap::new();
    for _ in 0..rng.below(4) {
        bytes_per_epoch.insert(rng.below(100), rng.next_u64());
    }
    FlowRecord {
        flow: FlowId(rng.next_u64()),
        src: NodeId(rng.below(64) as u32),
        dst: NodeId(rng.below(64) as u32),
        protocol: if rng.below(2) == 0 {
            Protocol::Tcp
        } else {
            Protocol::Udp
        },
        priority: Priority(rng.below(3) as u8),
        bytes: rng.next_u64(),
        packets: rng.below(10_000),
        path: (0..rng.below(5))
            .map(|_| NodeId(rng.below(64) as u32))
            .collect(),
        epochs_at,
        bytes_per_epoch,
        link_vid: if rng.below(2) == 0 {
            None
        } else {
            Some(rng.below(4096) as u16)
        },
    }
}

fn gen_culprit(rng: &mut TestRng) -> Culprit {
    Culprit {
        flow: FlowId(rng.next_u64()),
        src: NodeId(rng.below(64) as u32),
        dst: NodeId(rng.below(64) as u32),
        host: NodeId(rng.below(64) as u32),
        priority: Priority(rng.below(3) as u8),
        bytes: rng.next_u64(),
        common_epochs: (0..rng.below(5)).map(|_| rng.below(100)).collect(),
    }
}

fn gen_wave(rng: &mut TestRng) -> QueryWaveCost {
    QueryWaveCost {
        connection_initiation: SimTime::from_ns(rng.below(1 << 40)),
        request: SimTime::from_ns(rng.below(1 << 40)),
        query_execution: SimTime::from_ns(rng.below(1 << 40)),
        response: SimTime::from_ns(rng.below(1 << 40)),
        base: SimTime::from_ns(rng.below(1 << 40)),
    }
}

fn gen_breakdown(rng: &mut TestRng) -> LatencyBreakdown {
    LatencyBreakdown {
        detection: SimTime::from_ns(rng.below(1 << 40)),
        alert: SimTime::from_ns(rng.below(1 << 40)),
        pointer_retrieval: SimTime::from_ns(rng.below(1 << 40)),
        diagnosis: SimTime::from_ns(rng.below(1 << 40)),
        diagnosis_detail: gen_wave(rng),
    }
}

fn gen_request(rng: &mut TestRng) -> QueryRequest {
    match rng.below(6) {
        0 => QueryRequest::Contention {
            victim: FlowId(rng.next_u64()),
            victim_dst: NodeId(rng.below(64) as u32),
            trigger_window: SimTime::from_ns(rng.below(1 << 40)),
        },
        1 => QueryRequest::RedLights {
            victim: FlowId(rng.next_u64()),
            victim_dst: NodeId(rng.below(64) as u32),
            trigger_window: SimTime::from_ns(rng.below(1 << 40)),
        },
        2 => QueryRequest::Cascade {
            victim: FlowId(rng.next_u64()),
            victim_dst: NodeId(rng.below(64) as u32),
            trigger_window: SimTime::from_ns(rng.below(1 << 40)),
            max_depth: rng.below(6) as usize,
        },
        3 => QueryRequest::LoadImbalance {
            switch: NodeId(rng.below(64) as u32),
            range: gen_epoch_range(rng),
        },
        4 => QueryRequest::TopK {
            switch: NodeId(rng.below(64) as u32),
            k: rng.below(50) as usize,
            range: gen_epoch_range(rng),
        },
        _ => QueryRequest::SilentDrop {
            flow: FlowId(rng.next_u64()),
            src: NodeId(rng.below(64) as u32),
            dst: NodeId(rng.below(64) as u32),
            range: gen_epoch_range(rng),
        },
    }
}

fn gen_response(rng: &mut TestRng) -> QueryResponse {
    match rng.below(6) {
        0 => QueryResponse::Contention(ContentionDiagnosis {
            victim: FlowId(rng.next_u64()),
            switch: NodeId(rng.below(64) as u32),
            epochs: gen_epoch_range(rng),
            culprits: (0..rng.below(4)).map(|_| gen_culprit(rng)).collect(),
            hosts_contacted: rng.below(100) as usize,
            verdict: match rng.below(3) {
                0 => Verdict::PriorityContention,
                1 => Verdict::Microburst,
                _ => Verdict::NoCulprit,
            },
            breakdown: gen_breakdown(rng),
        }),
        1 => QueryResponse::RedLights(RedLightsDiagnosis {
            victim: FlowId(rng.next_u64()),
            per_switch: (0..rng.below(4))
                .map(|_| {
                    (
                        NodeId(rng.below(64) as u32),
                        (0..rng.below(3)).map(|_| gen_culprit(rng)).collect(),
                    )
                })
                .collect(),
            implicated: (0..rng.below(4))
                .map(|_| NodeId(rng.below(64) as u32))
                .collect(),
            hosts_contacted: rng.below(100) as usize,
            breakdown: gen_breakdown(rng),
        }),
        2 => QueryResponse::Cascade(CascadeDiagnosis {
            stages: (0..rng.below(4))
                .map(|_| CascadeStage {
                    victim: FlowId(rng.next_u64()),
                    switch: NodeId(rng.below(64) as u32),
                    culprit: gen_culprit(rng),
                })
                .collect(),
            hosts_contacted: rng.below(100) as usize,
            breakdown: gen_breakdown(rng),
        }),
        3 => QueryResponse::LoadImbalance(LoadImbalanceDiagnosis {
            per_link: (0..rng.below(4))
                .map(|_| {
                    (
                        rng.below(4096) as u16,
                        (0..rng.below(5)).map(|_| rng.next_u64()).collect(),
                    )
                })
                .collect(),
            separation_bytes: if rng.below(2) == 0 {
                None
            } else {
                Some(rng.next_u64())
            },
            hosts_contacted: rng.below(100) as usize,
            breakdown: gen_breakdown(rng),
        }),
        4 => QueryResponse::TopK(TopKResult {
            flows: (0..rng.below(6))
                .map(|_| (FlowId(rng.next_u64()), rng.next_u64()))
                .collect(),
            hosts_contacted: rng.below(100) as usize,
            pointer_retrieval: SimTime::from_ns(rng.below(1 << 40)),
            wave: gen_wave(rng),
        }),
        _ => QueryResponse::SilentDrop(DropDiagnosis {
            flow: FlowId(rng.next_u64()),
            path: (0..rng.below(5))
                .map(|_| NodeId(rng.below(64) as u32))
                .collect(),
            per_switch: (0..rng.below(5))
                .map(|_| (NodeId(rng.below(64) as u32), rng.below(2) == 0))
                .collect(),
            suspected_segment: if rng.below(2) == 0 {
                None
            } else {
                Some((NodeId(rng.below(64) as u32), NodeId(rng.below(64) as u32)))
            },
            pointer_retrieval: SimTime::from_ns(rng.below(1 << 40)),
        }),
    }
}

fn gen_standing(rng: &mut TestRng) -> StandingQuery {
    match rng.below(4) {
        0 => StandingQuery::Fixed(gen_request(rng)),
        1 => StandingQuery::TopKSliding {
            switch: NodeId(rng.below(64) as u32),
            k: rng.below(20) as usize,
            epochs_back: rng.below(32),
        },
        2 => StandingQuery::LoadImbalanceSliding {
            switch: NodeId(rng.below(64) as u32),
            epochs_back: rng.below(32),
        },
        _ => StandingQuery::ContentionWatch {
            victim: FlowId(rng.next_u64()),
            victim_dst: NodeId(rng.below(64) as u32),
            trigger_window: SimTime::from_ns(rng.below(1 << 40)),
        },
    }
}

fn gen_incident(rng: &mut TestRng) -> Incident {
    Incident {
        window: rng.below(100),
        horizon: rng.below(1000),
        sub: SubscriptionId(rng.below(16)),
        kind: if rng.below(2) == 0 {
            streamplane::IncidentKind::Baseline
        } else {
            streamplane::IncidentKind::Transition
        },
        summary: format!("summary-{}", rng.below(1000)),
        fingerprint: rng.next_u64(),
    }
}

fn gen_bitset(rng: &mut TestRng) -> switchpointer::bitset::BitSet {
    let n = 1 + rng.below(200) as usize;
    let mut bits = switchpointer::bitset::BitSet::new(n);
    for _ in 0..rng.below(20) {
        bits.set(rng.below(n as u64) as usize);
    }
    bits
}

/// A randomized histogram snapshot, built through the real recording
/// path so bucket indices are always internally consistent.
fn gen_hist_snapshot(rng: &mut TestRng) -> obsplane::HistogramSnapshot {
    let h = obsplane::Histogram::new();
    for _ in 0..rng.below(50) {
        h.record(rng.below(1 << 40));
    }
    h.snapshot()
}

fn gen_registry_snapshot(rng: &mut TestRng) -> obsplane::RegistrySnapshot {
    let mut snap = obsplane::RegistrySnapshot::default();
    for i in 0..rng.below(4) {
        snap.counters.insert(format!("c{i}"), rng.next_u64());
    }
    for i in 0..rng.below(3) {
        // Exercise negative gauges: i64 travels as its bit pattern.
        snap.gauges
            .insert(format!("g{i}"), rng.next_u64() as i64 >> 8);
    }
    for i in 0..rng.below(3) {
        snap.hists.insert(format!("h{i}"), gen_hist_snapshot(rng));
    }
    snap
}

/// A randomized replication record. Switch patches are omitted — a
/// `PointerPatch` is only constructible by diffing live hierarchies (by
/// design), and the replication tests cover that codec end-to-end — but
/// every host-patch kind is generated.
fn gen_delta_record(rng: &mut TestRng) -> DeltaRecord {
    let triggers = |rng: &mut TestRng| -> Vec<switchpointer::host::TriggerEvent> {
        (0..rng.below(3))
            .map(|_| switchpointer::host::TriggerEvent {
                at: SimTime::from_ns(rng.below(1 << 40)),
                flow: FlowId(rng.next_u64()),
                prev_bytes: rng.next_u64(),
                cur_bytes: rng.next_u64(),
            })
            .collect()
    };
    let hosts = (0..rng.below(4))
        .map(|_| {
            let kind = match rng.below(3) {
                0 => HostPatchKind::TriggersOnly {
                    triggers: triggers(rng),
                },
                1 => HostPatchKind::Shards {
                    dirty: (0..rng.below(3))
                        .map(|_| {
                            (
                                rng.below(8),
                                (0..rng.below(3)).map(|_| gen_record(rng)).collect(),
                            )
                        })
                        .collect(),
                    triggers: triggers(rng),
                    total: rng.below(1000),
                },
                _ => HostPatchKind::Full {
                    store: ShardedHostStore::from_records(
                        (0..rng.below(4)).map(|_| gen_record(rng)).collect(),
                        triggers(rng),
                        4,
                    ),
                },
            };
            HostPatch {
                host: NodeId(rng.below(64) as u32),
                new_base: (rng.next_u64(), rng.next_u64()),
                kind,
            }
        })
        .collect();
    DeltaRecord {
        epoch_horizon: rng.below(10_000),
        switches: Vec::new(),
        hosts,
    }
}

/// One sample of every frame type in the protocol, contents randomized.
fn gen_frames(rng: &mut TestRng) -> Vec<Frame> {
    let hosts = |rng: &mut TestRng| -> Vec<NodeId> {
        (0..rng.below(6))
            .map(|_| NodeId(rng.below(64) as u32))
            .collect()
    };
    let opt_len = |rng: &mut TestRng| -> Option<u64> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(rng.below(1000))
        }
    };
    vec![
        Frame::Hello {
            shard: rng.below(8) as u16,
            n_shards: 8,
        },
        Frame::UnionSliceReq {
            switch: NodeId(rng.below(64) as u32),
            range: gen_epoch_range(rng),
        },
        Frame::UnionSliceRep(if rng.below(4) == 0 {
            None
        } else {
            Some(gen_bitset(rng))
        }),
        Frame::ProbeExactReq {
            switch: NodeId(rng.below(64) as u32),
            addr: rng.next_u64(),
            epoch: rng.below(1000),
        },
        Frame::ProbeExactRep(match rng.below(3) {
            0 => None,
            1 => Some(None),
            _ => Some(Some(rng.below(2) == 0)),
        }),
        Frame::StoreLenReq {
            host: NodeId(rng.below(64) as u32),
        },
        Frame::StoreLenRep(opt_len(rng)),
        Frame::RecordReq {
            host: NodeId(rng.below(64) as u32),
            flow: FlowId(rng.next_u64()),
        },
        Frame::RecordRep(if rng.below(3) == 0 {
            None
        } else {
            Some(gen_record(rng))
        }),
        Frame::TriggerReq {
            host: NodeId(rng.below(64) as u32),
            flow: FlowId(rng.next_u64()),
        },
        Frame::TriggerRep(if rng.below(3) == 0 {
            None
        } else {
            Some(switchpointer::host::TriggerEvent {
                at: SimTime::from_ns(rng.below(1 << 40)),
                flow: FlowId(rng.next_u64()),
                prev_bytes: rng.next_u64(),
                cur_bytes: rng.next_u64(),
            })
        }),
        Frame::StoreLenWaveReq { hosts: hosts(rng) },
        Frame::StoreLenWaveRep((0..rng.below(6)).map(|_| opt_len(rng)).collect()),
        Frame::FilterWaveReq {
            switch: NodeId(rng.below(64) as u32),
            range: gen_epoch_range(rng),
            hosts: hosts(rng),
        },
        Frame::FilterWaveRep(
            (0..rng.below(4))
                .map(|_| {
                    (
                        opt_len(rng),
                        (0..rng.below(3)).map(|_| gen_record(rng)).collect(),
                    )
                })
                .collect(),
        ),
        Frame::TopKWaveReq {
            switch: NodeId(rng.below(64) as u32),
            k: rng.below(50),
            hosts: hosts(rng),
        },
        Frame::TopKWaveRep(
            (0..rng.below(4))
                .map(|_| {
                    (
                        opt_len(rng),
                        (0..rng.below(4))
                            .map(|_| (FlowId(rng.next_u64()), rng.next_u64()))
                            .collect(),
                    )
                })
                .collect(),
        ),
        Frame::SizesWaveReq {
            switch: NodeId(rng.below(64) as u32),
            hosts: hosts(rng),
        },
        Frame::SizesWaveRep(
            (0..rng.below(4))
                .map(|_| {
                    (
                        opt_len(rng),
                        (0..rng.below(4))
                            .map(|_| (rng.below(4096) as u16, rng.next_u64()))
                            .collect(),
                    )
                })
                .collect(),
        ),
        Frame::HorizonReq,
        Frame::HorizonRep(rng.below(10_000)),
        Frame::StatsScrapeReq,
        Frame::StatsScrapeRep(
            (0..1 + rng.below(3))
                .map(|i| (format!("shard{i}"), gen_registry_snapshot(rng)))
                .collect(),
        ),
        Frame::QueryReq(gen_request(rng)),
        Frame::QueryRep(gen_response(rng)),
        Frame::SubscribeReq {
            query: gen_standing(rng),
            resume_after: rng.below(100),
        },
        Frame::SubscribeRep {
            sub: SubscriptionId(rng.below(16)),
            available: rng.below(100),
        },
        Frame::IncidentPush {
            seq: rng.below(100),
            incident: gen_incident(rng),
        },
        Frame::WindowPush(wireplane::WindowSummary {
            window: rng.below(100),
            horizon: rng.below(1000),
            evaluated: rng.below(16),
            pending: rng.below(4),
            incidents: rng.below(8),
        }),
        Frame::DeltaAppend {
            shard: rng.below(8) as u16,
            seq: 1 + rng.below(1000),
            record: gen_delta_record(rng),
        },
        Frame::SnapshotInstall {
            shard: rng.below(8) as u16,
            seq: 1 + rng.below(1000),
            view: (0..rng.below(64)).map(|_| rng.below(256) as u8).collect(),
        },
        Frame::DeltaAck {
            shard: rng.below(8) as u16,
            applied: rng.below(1000),
        },
        Frame::ReplicaStatusReq,
        Frame::ReplicaStatusRep {
            shard: rng.below(8) as u16,
            applied: rng.below(1000),
        },
        Frame::Error(match rng.below(7) {
            0 => WireError::Truncated {
                needed: rng.below(100) as usize,
                have: rng.below(100) as usize,
            },
            1 => WireError::BadTag(rng.below(256) as u8),
            2 => WireError::Oversize(rng.below(1 << 31) as u32),
            3 => WireError::BadUtf8,
            4 => WireError::SeqGap {
                expected: rng.below(1000),
                got: rng.below(1000),
            },
            5 => WireError::ReplicaLag {
                applied: rng.below(1000),
                published: rng.below(1000),
            },
            _ => WireError::Remote(format!("err-{}", rng.below(100))),
        }),
    ]
}

#[test]
fn every_frame_type_roundtrips_and_rejects_truncation_and_corruption() {
    let mut rng = rng_for("wireplane frame roundtrip");
    for round in 0..20 {
        for frame in gen_frames(&mut rng) {
            let bytes = frame.to_frame_bytes().unwrap();
            // Through a byte pipe: read_frame → decode == identity
            // (Debug render — the same bit-identity the verdict pin uses).
            let (tag, payload) = read_frame(&mut &bytes[..], MAX_FRAME).unwrap();
            let decoded = Frame::decode(tag, &payload)
                .unwrap_or_else(|e| panic!("round {round}: {frame:?} failed to decode: {e}"));
            assert_eq!(
                format!("{decoded:?}"),
                format!("{frame:?}"),
                "round {round}: frame changed across the wire"
            );

            // Every strict payload prefix is a typed error, never a panic
            // (sample long payloads to keep the suite fast).
            let cuts: Vec<usize> = if payload.len() <= 64 {
                (0..payload.len()).collect()
            } else {
                (0..64).map(|i| i * payload.len() / 64).collect()
            };
            for cut in cuts {
                assert!(
                    Frame::decode(tag, &payload[..cut]).is_err(),
                    "truncated {frame:?} at {cut}/{} decoded successfully",
                    payload.len()
                );
            }

            // Unknown frame tags are typed errors.
            assert!(matches!(
                Frame::decode(0xEE, &payload),
                Err(WireError::BadTag(0xEE))
            ));
        }
    }
}

#[test]
fn corrupt_interior_bytes_never_panic() {
    // Flipping any single payload byte must yield either a clean decode
    // (the flip landed in a value field) or a typed error — never a
    // panic or an allocation blow-up.
    let mut rng = rng_for("wireplane frame corruption");
    for frame in gen_frames(&mut rng) {
        let bytes = frame.to_frame_bytes().unwrap();
        let (tag, payload) = read_frame(&mut &bytes[..], MAX_FRAME).unwrap();
        for i in 0..payload.len().min(96) {
            let mut corrupt = payload.clone();
            corrupt[i] ^= 0xA5;
            let _ = Frame::decode(tag, &corrupt); // must return, not panic
        }
    }
}

// ----------------------------------------------------------------------
// (b) Verdict invariance across the wire
// ----------------------------------------------------------------------

fn storm_queries(tb: &Testbed, victim: FlowId) -> Vec<QueryRequest> {
    let window = EpochRange { lo: 10, hi: 20 };
    let mut reqs = Vec::new();
    for name in ["edge0_0", "agg0_0", "agg0_1", "core0_0", "edge2_0"] {
        reqs.push(QueryRequest::TopK {
            switch: tb.node(name),
            k: 10,
            range: window,
        });
        reqs.push(QueryRequest::LoadImbalance {
            switch: tb.node(name),
            range: window,
        });
    }
    reqs.push(QueryRequest::SilentDrop {
        flow: victim,
        src: tb.node("h0_0_0"),
        dst: tb.node("h2_0_0"),
        range: window,
    });
    let da = tb.node("h2_0_0");
    if tb.hosts[&da].borrow().first_trigger_for(victim).is_some() {
        let w = tb.cfg.trigger.window;
        reqs.push(QueryRequest::Contention {
            victim,
            victim_dst: da,
            trigger_window: w,
        });
        reqs.push(QueryRequest::RedLights {
            victim,
            victim_dst: da,
            trigger_window: w,
        });
        reqs.push(QueryRequest::Cascade {
            victim,
            victim_dst: da,
            trigger_window: w,
            max_depth: 3,
        });
    }
    reqs
}

#[test]
fn wire_verdicts_bit_identical_to_sharded_analyzer_at_1_2_4_8_shards() {
    // The watch fixture's ECMP collision makes the victim's trigger fire
    // deterministically, so the trigger-anchored diagnoses are always in
    // the request set alongside the aggregate sweep.
    let (mut tb, victim, _) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(40));
    let analyzer = tb.analyzer();
    let reqs = storm_queries(&tb, victim);
    assert!(reqs.len() > 11, "fixture must include the diagnoses");
    for n_shards in [1usize, 2, 4, 8] {
        let sharded = ShardedAnalyzer::new(&analyzer, n_shards);
        let cluster = WireCluster::launch(&analyzer, n_shards, WireConfig::default()).unwrap();
        let mut client = cluster.client().unwrap();
        for (i, req) in reqs.iter().enumerate() {
            let wire = client.query(req).unwrap();
            let local = sharded.execute(req);
            assert_eq!(
                format!("{wire:?}"),
                format!("{local:?}"),
                "query {i} diverged across the wire at {n_shards} shards"
            );
        }
        // The wire coalesced every fan-out per shard: no wave can have
        // cost more round trips than shards.
        let counters = cluster.front().counters();
        assert!(counters.rpcs >= counters.rounds);
        cluster.shutdown();
    }
}

// ----------------------------------------------------------------------
// (b continued) Standing-query incident stream parity + (c) failure
// injection
// ----------------------------------------------------------------------

/// The continuous-watch fixture: background cross-pod UDP plus a
/// HIGH-priority burst that starves a TCP victim mid-run.
fn watch_testbed() -> (Testbed, FlowId, NodeId) {
    let topo = Topology::fat_tree(4, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let background = |tb: &mut Testbed, s: &str, d: &str| {
        let (s, d) = (tb.node(s), tb.node(d));
        tb.sim.add_udp_flow(UdpFlowSpec {
            src: s,
            dst: d,
            priority: Priority::LOW,
            start: SimTime::ZERO,
            duration: SimTime::from_ms(30),
            rate_bps: 100_000_000,
            payload_bytes: 1458,
        });
    };
    background(&mut tb, "h1_0_0", "h3_1_1");
    let (a, b) = (tb.node("h0_0_0"), tb.node("h0_0_1"));
    let (da, db) = (tb.node("h2_0_0"), tb.node("h2_0_1"));
    let victim = tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
        a,
        da,
        Priority::LOW,
        SimTime::from_ms(40),
    ));
    tb.sim.add_udp_flow(UdpFlowSpec::burst(
        b,
        db,
        Priority::HIGH,
        SimTime::from_ms(15),
        SimTime::from_ms(2),
        GBPS,
    ));
    background(&mut tb, "h1_1_0", "h2_1_1");
    (tb, victim, da)
}

fn watch_subscriptions(tb: &Testbed, victim: FlowId, victim_dst: NodeId) -> Vec<StandingQuery> {
    vec![
        StandingQuery::TopKSliding {
            switch: tb.node("edge0_0"),
            k: 5,
            epochs_back: 8,
        },
        StandingQuery::LoadImbalanceSliding {
            switch: tb.node("agg0_0"),
            epochs_back: 8,
        },
        StandingQuery::Fixed(QueryRequest::TopK {
            switch: tb.node("edge2_0"),
            k: 5,
            range: EpochRange { lo: 5, hi: 20 },
        }),
        StandingQuery::ContentionWatch {
            victim,
            victim_dst,
            trigger_window: tb.cfg.trigger.window,
        },
    ]
}

/// Client-side incident collection: per-sub streams with seq-continuity
/// checking (a duplicated or dropped push trips the assert).
#[derive(Default)]
struct Collected {
    by_sub: BTreeMap<SubscriptionId, Vec<Incident>>,
    seqs: BTreeMap<SubscriptionId, u64>,
}

impl Collected {
    fn take(&mut self, seq: u64, incident: Incident) {
        let expect = self.seqs.entry(incident.sub).or_insert(0);
        assert_eq!(
            seq, *expect,
            "sub {:?}: pushed seq {seq}, expected {} (duplicate or drop)",
            incident.sub, *expect
        );
        *expect += 1;
        self.by_sub.entry(incident.sub).or_default().push(incident);
    }

    fn resume_point(&self, sub: SubscriptionId) -> u64 {
        self.seqs.get(&sub).copied().unwrap_or(0)
    }
}

/// Drives the in-process stream plane and the wire cluster over the same
/// windows, optionally killing connections mid-stream, and asserts the
/// client-re-derived incident log equals the in-process one per
/// subscription.
fn run_stream_parity(n_shards: usize, inject_failures: bool) {
    let (mut tb, victim, da) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(10));
    let analyzer = tb.analyzer();

    let mut sp = StreamPlane::new(
        &analyzer,
        StreamConfig {
            plane: QueryPlaneConfig {
                workers: 4,
                shards: 8,
                directory_shards: n_shards,
                cache_capacity: 4096,
                retention: None,
            },
            result_cache_capacity: 1024,
        },
    );
    let subs = watch_subscriptions(&tb, victim, da);
    let mut sub_ids = Vec::new();
    for q in &subs {
        sub_ids.push(sp.subscribe(*q));
    }

    let cluster = WireCluster::launch(&analyzer, n_shards, WireConfig::default()).unwrap();
    let mut client = Some(cluster.client().unwrap());
    for q in &subs {
        let (sub, available) = client.as_mut().unwrap().subscribe(*q, 0).unwrap();
        assert_eq!(available, 0, "fresh topic must have an empty backlog");
        assert!(sub_ids.contains(&sub));
    }

    let mut collected = Collected::default();
    for w in 1..=8u64 {
        tb.sim.run_until(SimTime::from_ms(10 + w * 5));

        if inject_failures && w == 3 {
            // Kill the client connection mid-stream: the front-end reaps
            // the watchers; the client reconnects and resubscribes with
            // its per-topic cursor — the front-end replays exactly the
            // unseen suffix, so the re-derived log has zero duplicates
            // and zero drops (Collected asserts seq continuity).
            drop(client.take());
            let mut resumed = cluster.client().unwrap();
            for (q, &sub_id) in subs.iter().zip(&sub_ids) {
                let cursor = collected.resume_point(sub_id);
                let (sub, available) = resumed.subscribe(*q, cursor).unwrap();
                assert_eq!(sub, sub_id, "topic id changed across resubscribe");
                assert!(available >= cursor);
            }
            client = Some(resumed);
        }
        if inject_failures && w == 5 {
            // Sever every front-end → shard connection mid-stream: the
            // next window's reads must transparently reconnect.
            cluster.front().kill_shard_connections();
        }

        // In-process window.
        let report = sp.run_window(&analyzer);
        // Wire window: refresh the shard states out-of-band, then close.
        cluster.refresh(&analyzer);
        let summary = cluster.close_window();
        assert_eq!(summary.window, w - 1);
        assert_eq!(
            summary.horizon, report.horizon,
            "wire horizon diverged at window {w}"
        );

        // Drain this window's pushes.
        let (incidents, win) = client.as_mut().unwrap().drain_window().unwrap();
        assert_eq!(win.window, w - 1);
        for (seq, incident) in incidents {
            collected.take(seq, incident);
        }
    }

    if inject_failures {
        assert!(
            cluster.front().shard_reconnects() >= n_shards as u64,
            "severed shard connections must have re-established"
        );
    }

    // The client-side re-derived log equals the in-process incident log,
    // per subscription, bit for bit.
    for &sub in &sub_ids {
        let in_process: Vec<&Incident> = sp.incidents().iter().filter(|i| i.sub == sub).collect();
        let over_wire: Vec<&Incident> = collected
            .by_sub
            .get(&sub)
            .map(|v| v.iter().collect())
            .unwrap_or_default();
        assert_eq!(
            over_wire.len(),
            in_process.len(),
            "sub {sub}: incident count diverged (wire {} vs local {})",
            over_wire.len(),
            in_process.len()
        );
        for (w, l) in over_wire.iter().zip(&in_process) {
            assert_eq!(*w, *l, "sub {sub}: incident diverged");
        }
    }
    // The watch must actually have fired (the fixture's point): a
    // pending baseline plus a verdict transition.
    let watch_sub = sub_ids[3];
    assert!(
        sp.incidents().iter().filter(|i| i.sub == watch_sub).count() >= 2,
        "contention watch never transitioned — fixture regressed"
    );
    cluster.shutdown();
}

#[test]
fn wire_incident_stream_bit_identical_at_1_2_4_8_shards() {
    for n_shards in [1usize, 2, 4, 8] {
        run_stream_parity(n_shards, false);
    }
}

#[test]
fn killed_connections_mid_stream_rederive_the_incident_log_exactly() {
    run_stream_parity(2, true);
}

/// The replicated deployment under the same parity bar, with the failure
/// escalated from a killed *connection* to a killed *primary*: every
/// shard runs primary + standby consuming the same replication log, the
/// client loses its connection and resumes by cursor, and then every
/// primary is killed mid-stream — the query waves fail over to the
/// standbys and the incident stream must still equal the in-process
/// stream plane's bit for bit, with zero duplicated and zero dropped
/// transitions.
#[test]
fn incident_stream_bit_identical_across_primary_kill() {
    let (mut tb, victim, da) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(10));
    let analyzer = tb.analyzer();
    let n_shards = 2usize;

    let mut sp = StreamPlane::new(
        &analyzer,
        StreamConfig {
            plane: QueryPlaneConfig {
                workers: 4,
                shards: 8,
                directory_shards: n_shards,
                cache_capacity: 4096,
                retention: None,
            },
            result_cache_capacity: 1024,
        },
    );
    let subs = watch_subscriptions(&tb, victim, da);
    let mut sub_ids = Vec::new();
    for q in &subs {
        sub_ids.push(sp.subscribe(*q));
    }

    let cluster = ReplicaCluster::launch(&analyzer, n_shards, 2, WireConfig::default()).unwrap();
    let mut client = Some(cluster.client().unwrap());
    for q in &subs {
        let (sub, available) = client.as_mut().unwrap().subscribe(*q, 0).unwrap();
        assert_eq!(available, 0, "fresh topic must have an empty backlog");
        assert!(sub_ids.contains(&sub));
    }

    let mut collected = Collected::default();
    for w in 1..=8u64 {
        tb.sim.run_until(SimTime::from_ms(10 + w * 5));

        if w == 3 {
            // Client dies mid-stream and resumes by cursor, exactly as
            // in the single-replica drill...
            drop(client.take());
            let mut resumed = cluster.client().unwrap();
            for (q, &sub_id) in subs.iter().zip(&sub_ids) {
                let cursor = collected.resume_point(sub_id);
                let (sub, available) = resumed.subscribe(*q, cursor).unwrap();
                assert_eq!(sub, sub_id, "topic id changed across resubscribe");
                assert!(available >= cursor);
            }
            client = Some(resumed);
        }
        if w == 5 {
            // ...and then every primary is killed outright: the next
            // window's query waves must rotate to the standbys.
            for shard in 0..n_shards {
                assert!(cluster.kill_primary(shard), "primary already dead");
            }
        }

        let report = sp.run_window(&analyzer);
        cluster.refresh(&analyzer);
        let summary = cluster.close_window();
        assert_eq!(summary.window, w - 1);
        assert_eq!(
            summary.horizon, report.horizon,
            "wire horizon diverged at window {w}"
        );

        let (incidents, win) = client.as_mut().unwrap().drain_window().unwrap();
        assert_eq!(win.window, w - 1);
        for (seq, incident) in incidents {
            collected.take(seq, incident);
        }

        // Replication invariant, checked every window: every surviving
        // replica sits exactly at the owner's log head, and its served
        // slice equals the owner's authoritative slice bit for bit.
        let heads = cluster.heads();
        let applied = cluster.applied_seqs();
        for s in 0..n_shards {
            let owner = cluster.owner_slice(s);
            for (r, a) in applied[s].iter().enumerate() {
                let Some(a) = a else { continue };
                assert_eq!(*a, heads[s], "shard {s} replica {r} lagging at window {w}");
                let state = cluster.replica_state(s, r).expect("live replica");
                assert!(
                    state.view == owner,
                    "shard {s} replica {r} diverged at window {w}"
                );
            }
        }
    }

    // The failover actually happened and was observed: every shard's
    // active replica moved off the primary, and the failover histogram
    // recorded the wall clock it took.
    assert!(
        cluster.front().shard_failovers() >= n_shards as u64,
        "fewer failovers than killed primaries"
    );
    assert!(
        cluster.front().active_replicas().iter().all(|&r| r == 1),
        "some shard still points at the dead primary"
    );
    let front_snap = cluster.front_metrics().snapshot();
    assert!(
        front_snap
            .hists
            .get("wire.failover_ns")
            .is_some_and(|h| h.count >= 1),
        "failover histogram empty"
    );

    for &sub in &sub_ids {
        let in_process: Vec<&Incident> = sp.incidents().iter().filter(|i| i.sub == sub).collect();
        let over_wire: Vec<&Incident> = collected
            .by_sub
            .get(&sub)
            .map(|v| v.iter().collect())
            .unwrap_or_default();
        assert_eq!(
            over_wire.len(),
            in_process.len(),
            "sub {sub}: incident count diverged across primary kill"
        );
        for (wi, l) in over_wire.iter().zip(&in_process) {
            assert_eq!(*wi, *l, "sub {sub}: incident diverged across primary kill");
        }
    }
    let watch_sub = sub_ids[3];
    assert!(
        sp.incidents().iter().filter(|i| i.sub == watch_sub).count() >= 2,
        "contention watch never transitioned — fixture regressed"
    );
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// (d) Typed boundaries
// ----------------------------------------------------------------------

#[test]
fn degenerate_plane_configs_are_rejected_with_typed_errors() {
    let cases = [
        (
            QueryPlaneConfig {
                workers: 0,
                ..QueryPlaneConfig::default()
            },
            ConfigError::ZeroWorkers,
        ),
        (
            QueryPlaneConfig {
                shards: 0,
                ..QueryPlaneConfig::default()
            },
            ConfigError::ZeroHostShards,
        ),
        (
            QueryPlaneConfig {
                directory_shards: 0,
                ..QueryPlaneConfig::default()
            },
            ConfigError::ZeroDirectoryShards,
        ),
        (
            QueryPlaneConfig {
                cache_capacity: 0,
                ..QueryPlaneConfig::default()
            },
            ConfigError::ZeroCacheCapacity,
        ),
    ];
    for (cfg, want) in cases {
        assert_eq!(cfg.validate(), Err(want));
    }
    assert!(QueryPlaneConfig::default().validate().is_ok());

    // Through the construction boundary: a typed Err, not a deep panic.
    let topo = Topology::chain(3, 2, GBPS);
    let tb = Testbed::new(topo, TestbedConfig::default_ms());
    let analyzer = tb.analyzer();
    assert_eq!(
        QueryPlane::try_from_analyzer(
            &analyzer,
            QueryPlaneConfig {
                workers: 0,
                ..QueryPlaneConfig::default()
            }
        )
        .err(),
        Some(ConfigError::ZeroWorkers)
    );
    assert_eq!(
        StreamPlane::try_new(
            &analyzer,
            StreamConfig {
                plane: QueryPlaneConfig {
                    cache_capacity: 0,
                    ..QueryPlaneConfig::default()
                },
                result_cache_capacity: 16,
            }
        )
        .err(),
        Some(ConfigError::ZeroCacheCapacity)
    );
    // The wire layer validates through the same path.
    assert!(WireCluster::launch(&analyzer, 0, WireConfig::default()).is_err());
}

#[test]
fn accept_pool_exhaustion_is_a_typed_refusal() {
    let topo = Topology::chain(3, 2, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, f) = (tb.node("A"), tb.node("F"));
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: f,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(2),
        rate_bps: 100_000_000,
        payload_bytes: 1458,
    });
    tb.sim.run_until(SimTime::from_ms(5));
    let analyzer = tb.analyzer();

    let cluster = WireCluster::launch(
        &analyzer,
        1,
        WireConfig {
            max_conns: 1,
            ..WireConfig::default()
        },
    )
    .unwrap();
    // First client fills the front-end's pool...
    let _held = cluster.client().unwrap();
    // ...the second is refused with a typed error frame, not a hang.
    match cluster.client() {
        Err(WireError::Remote(msg)) => assert!(msg.contains("accept pool")),
        // The refused stream may also surface as an io error if the
        // server closed before the greeting was read — but never a hang
        // or a panic. Prefer the typed path, accept the racy close.
        Err(WireError::Io { .. }) => {}
        Ok(_) => panic!("accept pool bound not enforced"),
        Err(e) => panic!("unexpected refusal shape: {e}"),
    }
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Streamed events are well-formed (window digests carry the log sizes)
// ----------------------------------------------------------------------

#[test]
fn window_digests_report_subscriptions_and_pending_counts() {
    let (mut tb, victim, da) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(10));
    let analyzer = tb.analyzer();
    let cluster = WireCluster::launch(&analyzer, 2, WireConfig::default()).unwrap();
    let mut client = cluster.client().unwrap();
    client
        .subscribe(
            StandingQuery::ContentionWatch {
                victim,
                victim_dst: da,
                trigger_window: tb.cfg.trigger.window,
            },
            0,
        )
        .unwrap();
    let summary = cluster.close_window();
    assert_eq!(summary.evaluated, 1);
    assert_eq!(summary.pending, 1, "no trigger at 10ms: watch must pend");
    assert_eq!(summary.incidents, 1, "first sight logs a baseline");
    match client.next_event().unwrap() {
        WireEvent::Incident { seq, incident } => {
            assert_eq!(seq, 0);
            assert_eq!(incident.summary, streamplane::PENDING_SUMMARY);
        }
        other => panic!("expected the baseline incident, got {other:?}"),
    }
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// (e) Stats scrape parity: wire-round-tripped registry snapshots ARE the
// server-side registries
// ----------------------------------------------------------------------

#[test]
fn scraped_stats_equal_server_registries_and_merge_to_totals() {
    let (mut tb, victim, _) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(40));
    let analyzer = tb.analyzer();
    let reqs = storm_queries(&tb, victim);
    let n_shards = 4usize;
    let cluster = WireCluster::launch(&analyzer, n_shards, WireConfig::default()).unwrap();
    let mut client = cluster.client().unwrap();
    for req in &reqs {
        client.query(req).unwrap();
    }

    // Every query's reply arrived, so every shard finished recording its
    // RPC metrics before we scrape; nothing else is driving the cluster.
    let scraped = client.scrape_stats().unwrap();
    assert_eq!(scraped.len(), n_shards + 1, "front + one entry per shard");
    assert_eq!(scraped[0].0, "front");

    // Per-shard parity: the snapshot that crossed the wire is *equal* to
    // the server-side registry's, field for field — the scrape neither
    // lossy-encodes nor perturbs what it measures.
    for i in 0..n_shards {
        let (label, snap) = &scraped[i + 1];
        assert_eq!(label, &format!("shard{i}"));
        let server_side = cluster.server_metrics(i).snapshot();
        assert_eq!(
            snap, &server_side,
            "shard {i}: scraped snapshot diverged from the server registry"
        );
        assert!(
            snap.counter("wire.frames_served") > 0,
            "shard {i} served the storm yet scraped zero frames"
        );
    }
    // The front records per-class exec latency under the same names the
    // in-process plane uses, plus per-shard RTT.
    let front = &scraped[0].1;
    assert!(front.hist("queryplane.exec_ns.top_k").is_some());
    for i in 0..n_shards {
        assert!(front.hist(&format!("wire.rtt_ns.shard{i}")).is_some());
    }

    // Merged across shards, counters and histogram counts equal the sum
    // of the per-shard server-side totals.
    let mut merged = obsplane::RegistrySnapshot::default();
    for (_, snap) in scraped.iter().skip(1) {
        merged.merge(snap);
    }
    let served_sum: u64 = (0..n_shards)
        .map(|i| {
            cluster
                .server_metrics(i)
                .snapshot()
                .counter("wire.frames_served")
        })
        .sum();
    assert_eq!(merged.counter("wire.frames_served"), served_sum);
    let serve_count_sum: u64 = (0..n_shards)
        .map(|i| {
            cluster
                .server_metrics(i)
                .snapshot()
                .hist("wire.serve_ns")
                .map(|h| h.count)
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(
        merged
            .hist("wire.serve_ns")
            .expect("merged serve hist")
            .count,
        serve_count_sum
    );
    assert_eq!(merged.counter("wire.frames_served"), serve_count_sum);

    // Scraping is side-effect-free end to end: a quiesced cluster scrapes
    // identically any number of times, from any client.
    let again = client.scrape_stats().unwrap();
    assert_eq!(scraped, again, "scrape perturbed the metrics it pulled");
    let mut other = cluster.client().unwrap();
    let third = other.scrape_stats().unwrap();
    assert_eq!(scraped, third, "scrape result depends on the connection");
    cluster.shutdown();
}
