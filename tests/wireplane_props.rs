//! The wire layer's contract:
//!
//! (a) **Codec totality.** Every protocol frame type round-trips
//!     encode→decode as the identity; truncated and corrupt frames
//!     surface typed [`WireError`]s instead of panicking (randomized
//!     over frame contents).
//! (b) **Verdict invariance across the wire.** A query served through N
//!     wire-connected shard servers is bit-identical to the in-process
//!     [`ShardedAnalyzer`] at 1/2/4/8 shards — for one-shot queries via
//!     a real client connection, and for a standing-query incident
//!     stream against the in-process [`StreamPlane`].
//! (c) **Failure recovery.** Killing connections mid-stream (client side
//!     and front-end→shard side) loses nothing: the client resubscribes
//!     with its cursor and re-derives the incident log bit-identically,
//!     with zero duplicated and zero dropped transitions.
//! (d) **Boundaries are typed.** Degenerate plane configs are rejected
//!     with [`queryplane::ConfigError`]; a full accept pool refuses with
//!     a typed error frame.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use netsim::prelude::*;
use obsplane::TraceContext;
use proptest::prelude::*;
use proptest::rng_for;
use queryplane::{
    ConfigError, DeltaRecord, HostPatch, HostPatchKind, QueryPlane, QueryPlaneConfig,
    ShardedHostStore,
};
use replicaplane::ReplicaCluster;
use streamplane::{Incident, StandingQuery, StreamConfig, StreamPlane, SubscriptionId};
use switchpointer::analyzer::{
    CascadeDiagnosis, CascadeStage, ContentionDiagnosis, Culprit, DropDiagnosis,
    LoadImbalanceDiagnosis, RedLightsDiagnosis, TopKResult, Verdict,
};
use switchpointer::cost::{LatencyBreakdown, QueryWaveCost};
use switchpointer::hoststore::FlowRecord;
use switchpointer::query::{QueryRequest, QueryResponse};
use switchpointer::shard::ShardedAnalyzer;
use switchpointer::testbed::{Testbed, TestbedConfig};
use telemetry::frame::{read_frame, WireError, MAX_FRAME};
use telemetry::EpochRange;
use wireplane::proto::Frame;
use wireplane::{
    MuxConn, RemoteShard, RetryPolicy, ServeDelay, WireClient, WireCluster, WireConfig, WireEvent,
    WireSpan,
};

// ----------------------------------------------------------------------
// (a) Codec totality
// ----------------------------------------------------------------------

fn gen_epoch_range(rng: &mut TestRng) -> EpochRange {
    let lo = rng.below(64);
    EpochRange {
        lo,
        hi: lo + rng.below(32),
    }
}

fn gen_record(rng: &mut TestRng) -> FlowRecord {
    let mut epochs_at = BTreeMap::new();
    for _ in 0..rng.below(4) {
        let sw = NodeId(rng.below(64) as u32);
        let mut set = std::collections::BTreeSet::new();
        for _ in 0..rng.below(5) {
            set.insert(rng.below(100));
        }
        epochs_at.insert(sw, set);
    }
    let mut bytes_per_epoch = BTreeMap::new();
    for _ in 0..rng.below(4) {
        bytes_per_epoch.insert(rng.below(100), rng.next_u64());
    }
    FlowRecord {
        flow: FlowId(rng.next_u64()),
        src: NodeId(rng.below(64) as u32),
        dst: NodeId(rng.below(64) as u32),
        protocol: if rng.below(2) == 0 {
            Protocol::Tcp
        } else {
            Protocol::Udp
        },
        priority: Priority(rng.below(3) as u8),
        bytes: rng.next_u64(),
        packets: rng.below(10_000),
        path: (0..rng.below(5))
            .map(|_| NodeId(rng.below(64) as u32))
            .collect(),
        epochs_at,
        bytes_per_epoch,
        link_vid: if rng.below(2) == 0 {
            None
        } else {
            Some(rng.below(4096) as u16)
        },
    }
}

fn gen_culprit(rng: &mut TestRng) -> Culprit {
    Culprit {
        flow: FlowId(rng.next_u64()),
        src: NodeId(rng.below(64) as u32),
        dst: NodeId(rng.below(64) as u32),
        host: NodeId(rng.below(64) as u32),
        priority: Priority(rng.below(3) as u8),
        bytes: rng.next_u64(),
        common_epochs: (0..rng.below(5)).map(|_| rng.below(100)).collect(),
    }
}

fn gen_wave(rng: &mut TestRng) -> QueryWaveCost {
    QueryWaveCost {
        connection_initiation: SimTime::from_ns(rng.below(1 << 40)),
        request: SimTime::from_ns(rng.below(1 << 40)),
        query_execution: SimTime::from_ns(rng.below(1 << 40)),
        response: SimTime::from_ns(rng.below(1 << 40)),
        base: SimTime::from_ns(rng.below(1 << 40)),
    }
}

fn gen_breakdown(rng: &mut TestRng) -> LatencyBreakdown {
    LatencyBreakdown {
        detection: SimTime::from_ns(rng.below(1 << 40)),
        alert: SimTime::from_ns(rng.below(1 << 40)),
        pointer_retrieval: SimTime::from_ns(rng.below(1 << 40)),
        diagnosis: SimTime::from_ns(rng.below(1 << 40)),
        diagnosis_detail: gen_wave(rng),
    }
}

fn gen_request(rng: &mut TestRng) -> QueryRequest {
    match rng.below(6) {
        0 => QueryRequest::Contention {
            victim: FlowId(rng.next_u64()),
            victim_dst: NodeId(rng.below(64) as u32),
            trigger_window: SimTime::from_ns(rng.below(1 << 40)),
        },
        1 => QueryRequest::RedLights {
            victim: FlowId(rng.next_u64()),
            victim_dst: NodeId(rng.below(64) as u32),
            trigger_window: SimTime::from_ns(rng.below(1 << 40)),
        },
        2 => QueryRequest::Cascade {
            victim: FlowId(rng.next_u64()),
            victim_dst: NodeId(rng.below(64) as u32),
            trigger_window: SimTime::from_ns(rng.below(1 << 40)),
            max_depth: rng.below(6) as usize,
        },
        3 => QueryRequest::LoadImbalance {
            switch: NodeId(rng.below(64) as u32),
            range: gen_epoch_range(rng),
        },
        4 => QueryRequest::TopK {
            switch: NodeId(rng.below(64) as u32),
            k: rng.below(50) as usize,
            range: gen_epoch_range(rng),
        },
        _ => QueryRequest::SilentDrop {
            flow: FlowId(rng.next_u64()),
            src: NodeId(rng.below(64) as u32),
            dst: NodeId(rng.below(64) as u32),
            range: gen_epoch_range(rng),
        },
    }
}

fn gen_response(rng: &mut TestRng) -> QueryResponse {
    match rng.below(6) {
        0 => QueryResponse::Contention(ContentionDiagnosis {
            victim: FlowId(rng.next_u64()),
            switch: NodeId(rng.below(64) as u32),
            epochs: gen_epoch_range(rng),
            culprits: (0..rng.below(4)).map(|_| gen_culprit(rng)).collect(),
            hosts_contacted: rng.below(100) as usize,
            verdict: match rng.below(3) {
                0 => Verdict::PriorityContention,
                1 => Verdict::Microburst,
                _ => Verdict::NoCulprit,
            },
            breakdown: gen_breakdown(rng),
        }),
        1 => QueryResponse::RedLights(RedLightsDiagnosis {
            victim: FlowId(rng.next_u64()),
            per_switch: (0..rng.below(4))
                .map(|_| {
                    (
                        NodeId(rng.below(64) as u32),
                        (0..rng.below(3)).map(|_| gen_culprit(rng)).collect(),
                    )
                })
                .collect(),
            implicated: (0..rng.below(4))
                .map(|_| NodeId(rng.below(64) as u32))
                .collect(),
            hosts_contacted: rng.below(100) as usize,
            breakdown: gen_breakdown(rng),
        }),
        2 => QueryResponse::Cascade(CascadeDiagnosis {
            stages: (0..rng.below(4))
                .map(|_| CascadeStage {
                    victim: FlowId(rng.next_u64()),
                    switch: NodeId(rng.below(64) as u32),
                    culprit: gen_culprit(rng),
                })
                .collect(),
            hosts_contacted: rng.below(100) as usize,
            breakdown: gen_breakdown(rng),
        }),
        3 => QueryResponse::LoadImbalance(LoadImbalanceDiagnosis {
            per_link: (0..rng.below(4))
                .map(|_| {
                    (
                        rng.below(4096) as u16,
                        (0..rng.below(5)).map(|_| rng.next_u64()).collect(),
                    )
                })
                .collect(),
            separation_bytes: if rng.below(2) == 0 {
                None
            } else {
                Some(rng.next_u64())
            },
            hosts_contacted: rng.below(100) as usize,
            breakdown: gen_breakdown(rng),
        }),
        4 => QueryResponse::TopK(TopKResult {
            flows: (0..rng.below(6))
                .map(|_| (FlowId(rng.next_u64()), rng.next_u64()))
                .collect(),
            hosts_contacted: rng.below(100) as usize,
            pointer_retrieval: SimTime::from_ns(rng.below(1 << 40)),
            wave: gen_wave(rng),
        }),
        _ => QueryResponse::SilentDrop(DropDiagnosis {
            flow: FlowId(rng.next_u64()),
            path: (0..rng.below(5))
                .map(|_| NodeId(rng.below(64) as u32))
                .collect(),
            per_switch: (0..rng.below(5))
                .map(|_| (NodeId(rng.below(64) as u32), rng.below(2) == 0))
                .collect(),
            suspected_segment: if rng.below(2) == 0 {
                None
            } else {
                Some((NodeId(rng.below(64) as u32), NodeId(rng.below(64) as u32)))
            },
            pointer_retrieval: SimTime::from_ns(rng.below(1 << 40)),
        }),
    }
}

fn gen_standing(rng: &mut TestRng) -> StandingQuery {
    match rng.below(4) {
        0 => StandingQuery::Fixed(gen_request(rng)),
        1 => StandingQuery::TopKSliding {
            switch: NodeId(rng.below(64) as u32),
            k: rng.below(20) as usize,
            epochs_back: rng.below(32),
        },
        2 => StandingQuery::LoadImbalanceSliding {
            switch: NodeId(rng.below(64) as u32),
            epochs_back: rng.below(32),
        },
        _ => StandingQuery::ContentionWatch {
            victim: FlowId(rng.next_u64()),
            victim_dst: NodeId(rng.below(64) as u32),
            trigger_window: SimTime::from_ns(rng.below(1 << 40)),
        },
    }
}

fn gen_incident(rng: &mut TestRng) -> Incident {
    Incident {
        window: rng.below(100),
        horizon: rng.below(1000),
        sub: SubscriptionId(rng.below(16)),
        kind: if rng.below(2) == 0 {
            streamplane::IncidentKind::Baseline
        } else {
            streamplane::IncidentKind::Transition
        },
        summary: format!("summary-{}", rng.below(1000)),
        fingerprint: rng.next_u64(),
    }
}

fn gen_bitset(rng: &mut TestRng) -> switchpointer::bitset::BitSet {
    let n = 1 + rng.below(200) as usize;
    let mut bits = switchpointer::bitset::BitSet::new(n);
    for _ in 0..rng.below(20) {
        bits.set(rng.below(n as u64) as usize);
    }
    bits
}

/// A randomized histogram snapshot, built through the real recording
/// path so bucket indices are always internally consistent.
fn gen_hist_snapshot(rng: &mut TestRng) -> obsplane::HistogramSnapshot {
    let h = obsplane::Histogram::new();
    for _ in 0..rng.below(50) {
        h.record(rng.below(1 << 40));
    }
    h.snapshot()
}

fn gen_registry_snapshot(rng: &mut TestRng) -> obsplane::RegistrySnapshot {
    let mut snap = obsplane::RegistrySnapshot::default();
    for i in 0..rng.below(4) {
        snap.counters.insert(format!("c{i}"), rng.next_u64());
    }
    for i in 0..rng.below(3) {
        // Exercise negative gauges: i64 travels as its bit pattern.
        snap.gauges
            .insert(format!("g{i}"), rng.next_u64() as i64 >> 8);
    }
    for i in 0..rng.below(3) {
        snap.hists.insert(format!("h{i}"), gen_hist_snapshot(rng));
    }
    snap
}

/// A randomized replication record. Switch patches are omitted — a
/// `PointerPatch` is only constructible by diffing live hierarchies (by
/// design), and the replication tests cover that codec end-to-end — but
/// every host-patch kind is generated.
fn gen_wire_span(rng: &mut TestRng) -> WireSpan {
    WireSpan {
        class: format!("class{}", rng.below(8)),
        stage: ["query", "enqueue", "wire", "serve", "exec", "apply"][rng.below(6) as usize]
            .to_string(),
        epoch: rng.below(10_000),
        shard: rng.below(8) as u32,
        start_ns: rng.next_u64() >> 20,
        dur_ns: rng.next_u64() >> 30,
        trace_id: rng.next_u64(),
        span_id: rng.next_u64(),
        parent_id: rng.next_u64(),
        steals: rng.below(4) as u32,
        exemplar: rng.below(2) == 0,
    }
}

fn gen_trace_ctx(rng: &mut TestRng) -> Option<TraceContext> {
    match rng.below(3) {
        0 => None,
        s => Some(TraceContext {
            trace_id: 1 + rng.next_u64() / 2,
            span_id: rng.next_u64(),
            sampled: s == 1,
        }),
    }
}

fn gen_delta_record(rng: &mut TestRng) -> DeltaRecord {
    let triggers = |rng: &mut TestRng| -> Vec<switchpointer::host::TriggerEvent> {
        (0..rng.below(3))
            .map(|_| switchpointer::host::TriggerEvent {
                at: SimTime::from_ns(rng.below(1 << 40)),
                flow: FlowId(rng.next_u64()),
                prev_bytes: rng.next_u64(),
                cur_bytes: rng.next_u64(),
            })
            .collect()
    };
    let hosts = (0..rng.below(4))
        .map(|_| {
            let kind = match rng.below(3) {
                0 => HostPatchKind::TriggersOnly {
                    triggers: triggers(rng),
                },
                1 => HostPatchKind::Shards {
                    dirty: (0..rng.below(3))
                        .map(|_| {
                            (
                                rng.below(8),
                                (0..rng.below(3)).map(|_| gen_record(rng)).collect(),
                            )
                        })
                        .collect(),
                    triggers: triggers(rng),
                    total: rng.below(1000),
                },
                _ => HostPatchKind::Full {
                    store: ShardedHostStore::from_records(
                        (0..rng.below(4)).map(|_| gen_record(rng)).collect(),
                        triggers(rng),
                        4,
                    ),
                },
            };
            HostPatch {
                host: NodeId(rng.below(64) as u32),
                new_base: (rng.next_u64(), rng.next_u64()),
                kind,
            }
        })
        .collect();
    DeltaRecord {
        epoch_horizon: rng.below(10_000),
        switches: Vec::new(),
        hosts,
    }
}

/// One sample of every frame type in the protocol, contents randomized.
fn gen_frames(rng: &mut TestRng) -> Vec<Frame> {
    let hosts = |rng: &mut TestRng| -> Vec<NodeId> {
        (0..rng.below(6))
            .map(|_| NodeId(rng.below(64) as u32))
            .collect()
    };
    let opt_len = |rng: &mut TestRng| -> Option<u64> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(rng.below(1000))
        }
    };
    vec![
        Frame::Hello {
            shard: rng.below(8) as u16,
            n_shards: 8,
        },
        Frame::UnionSliceReq {
            switch: NodeId(rng.below(64) as u32),
            range: gen_epoch_range(rng),
        },
        Frame::UnionSliceRep(if rng.below(4) == 0 {
            None
        } else {
            Some(gen_bitset(rng))
        }),
        Frame::ProbeExactReq {
            switch: NodeId(rng.below(64) as u32),
            addr: rng.next_u64(),
            epoch: rng.below(1000),
        },
        Frame::ProbeExactRep(match rng.below(3) {
            0 => None,
            1 => Some(None),
            _ => Some(Some(rng.below(2) == 0)),
        }),
        Frame::StoreLenReq {
            host: NodeId(rng.below(64) as u32),
        },
        Frame::StoreLenRep(opt_len(rng)),
        Frame::RecordReq {
            host: NodeId(rng.below(64) as u32),
            flow: FlowId(rng.next_u64()),
        },
        Frame::RecordRep(if rng.below(3) == 0 {
            None
        } else {
            Some(gen_record(rng))
        }),
        Frame::TriggerReq {
            host: NodeId(rng.below(64) as u32),
            flow: FlowId(rng.next_u64()),
        },
        Frame::TriggerRep(if rng.below(3) == 0 {
            None
        } else {
            Some(switchpointer::host::TriggerEvent {
                at: SimTime::from_ns(rng.below(1 << 40)),
                flow: FlowId(rng.next_u64()),
                prev_bytes: rng.next_u64(),
                cur_bytes: rng.next_u64(),
            })
        }),
        Frame::StoreLenWaveReq { hosts: hosts(rng) },
        Frame::StoreLenWaveRep((0..rng.below(6)).map(|_| opt_len(rng)).collect()),
        Frame::FilterWaveReq {
            switch: NodeId(rng.below(64) as u32),
            range: gen_epoch_range(rng),
            hosts: hosts(rng),
        },
        Frame::FilterWaveRep(
            (0..rng.below(4))
                .map(|_| {
                    (
                        opt_len(rng),
                        (0..rng.below(3)).map(|_| gen_record(rng)).collect(),
                    )
                })
                .collect(),
        ),
        Frame::TopKWaveReq {
            switch: NodeId(rng.below(64) as u32),
            k: rng.below(50),
            hosts: hosts(rng),
        },
        Frame::TopKWaveRep(
            (0..rng.below(4))
                .map(|_| {
                    (
                        opt_len(rng),
                        (0..rng.below(4))
                            .map(|_| (FlowId(rng.next_u64()), rng.next_u64()))
                            .collect(),
                    )
                })
                .collect(),
        ),
        Frame::SizesWaveReq {
            switch: NodeId(rng.below(64) as u32),
            hosts: hosts(rng),
        },
        Frame::SizesWaveRep(
            (0..rng.below(4))
                .map(|_| {
                    (
                        opt_len(rng),
                        (0..rng.below(4))
                            .map(|_| (rng.below(4096) as u16, rng.next_u64()))
                            .collect(),
                    )
                })
                .collect(),
        ),
        Frame::HorizonReq,
        Frame::HorizonRep(rng.below(10_000)),
        Frame::StatsScrapeReq,
        Frame::StatsScrapeRep(
            (0..1 + rng.below(3))
                .map(|i| (format!("shard{i}"), gen_registry_snapshot(rng)))
                .collect(),
        ),
        Frame::QueryReq(gen_request(rng)),
        Frame::QueryRep(gen_response(rng)),
        Frame::SubscribeReq {
            query: gen_standing(rng),
            resume_after: rng.below(100),
        },
        Frame::SubscribeRep {
            sub: SubscriptionId(rng.below(16)),
            available: rng.below(100),
        },
        Frame::IncidentPush {
            seq: rng.below(100),
            incident: gen_incident(rng),
        },
        Frame::WindowPush(wireplane::WindowSummary {
            window: rng.below(100),
            horizon: rng.below(1000),
            evaluated: rng.below(16),
            pending: rng.below(4),
            incidents: rng.below(8),
        }),
        // Context-free on purpose: gen_frames feeds the legacy byte pins;
        // ctx-bearing envelopes get their own roundtrip/fuzz suite below.
        Frame::DeltaAppend {
            shard: rng.below(8) as u16,
            seq: 1 + rng.below(1000),
            record: gen_delta_record(rng),
            ctx: None,
        },
        Frame::TraceScrapeReq,
        Frame::TraceScrapeRep(
            (0..1 + rng.below(3))
                .map(|i| {
                    (
                        format!("shard{i}"),
                        (0..rng.below(5)).map(|_| gen_wire_span(rng)).collect(),
                    )
                })
                .collect(),
        ),
        Frame::SnapshotInstall {
            shard: rng.below(8) as u16,
            seq: 1 + rng.below(1000),
            view: (0..rng.below(64)).map(|_| rng.below(256) as u8).collect(),
        },
        Frame::DeltaAck {
            shard: rng.below(8) as u16,
            applied: rng.below(1000),
        },
        Frame::ReplicaStatusReq,
        Frame::ReplicaStatusRep {
            shard: rng.below(8) as u16,
            applied: rng.below(1000),
        },
        Frame::Error(match rng.below(7) {
            0 => WireError::Truncated {
                needed: rng.below(100) as usize,
                have: rng.below(100) as usize,
            },
            1 => WireError::BadTag(rng.below(256) as u8),
            2 => WireError::Oversize(rng.below(1 << 31) as u32),
            3 => WireError::BadUtf8,
            4 => WireError::SeqGap {
                expected: rng.below(1000),
                got: rng.below(1000),
            },
            5 => WireError::ReplicaLag {
                applied: rng.below(1000),
                published: rng.below(1000),
            },
            _ => WireError::Remote(format!("err-{}", rng.below(100))),
        }),
    ]
}

#[test]
fn every_frame_type_roundtrips_and_rejects_truncation_and_corruption() {
    let mut rng = rng_for("wireplane frame roundtrip");
    for round in 0..20 {
        for frame in gen_frames(&mut rng) {
            let bytes = frame.to_frame_bytes().unwrap();
            // Through a byte pipe: read_frame → decode == identity
            // (Debug render — the same bit-identity the verdict pin uses).
            let (tag, payload) = read_frame(&mut &bytes[..], MAX_FRAME).unwrap();
            let decoded = Frame::decode(tag, &payload)
                .unwrap_or_else(|e| panic!("round {round}: {frame:?} failed to decode: {e}"));
            assert_eq!(
                format!("{decoded:?}"),
                format!("{frame:?}"),
                "round {round}: frame changed across the wire"
            );

            // Every strict payload prefix is a typed error, never a panic
            // (sample long payloads to keep the suite fast).
            let cuts: Vec<usize> = if payload.len() <= 64 {
                (0..payload.len()).collect()
            } else {
                (0..64).map(|i| i * payload.len() / 64).collect()
            };
            for cut in cuts {
                assert!(
                    Frame::decode(tag, &payload[..cut]).is_err(),
                    "truncated {frame:?} at {cut}/{} decoded successfully",
                    payload.len()
                );
            }

            // Unknown frame tags are typed errors.
            assert!(matches!(
                Frame::decode(0xEE, &payload),
                Err(WireError::BadTag(0xEE))
            ));
        }
    }
}

#[test]
fn corrupt_interior_bytes_never_panic() {
    // Flipping any single payload byte must yield either a clean decode
    // (the flip landed in a value field) or a typed error — never a
    // panic or an allocation blow-up.
    let mut rng = rng_for("wireplane frame corruption");
    for frame in gen_frames(&mut rng) {
        let bytes = frame.to_frame_bytes().unwrap();
        let (tag, payload) = read_frame(&mut &bytes[..], MAX_FRAME).unwrap();
        for i in 0..payload.len().min(96) {
            let mut corrupt = payload.clone();
            corrupt[i] ^= 0xA5;
            let _ = Frame::decode(tag, &corrupt); // must return, not panic
        }
    }
}

// ----------------------------------------------------------------------
// (b) Verdict invariance across the wire
// ----------------------------------------------------------------------

fn storm_queries(tb: &Testbed, victim: FlowId) -> Vec<QueryRequest> {
    let window = EpochRange { lo: 10, hi: 20 };
    let mut reqs = Vec::new();
    for name in ["edge0_0", "agg0_0", "agg0_1", "core0_0", "edge2_0"] {
        reqs.push(QueryRequest::TopK {
            switch: tb.node(name),
            k: 10,
            range: window,
        });
        reqs.push(QueryRequest::LoadImbalance {
            switch: tb.node(name),
            range: window,
        });
    }
    reqs.push(QueryRequest::SilentDrop {
        flow: victim,
        src: tb.node("h0_0_0"),
        dst: tb.node("h2_0_0"),
        range: window,
    });
    let da = tb.node("h2_0_0");
    if tb.hosts[&da].borrow().first_trigger_for(victim).is_some() {
        let w = tb.cfg.trigger.window;
        reqs.push(QueryRequest::Contention {
            victim,
            victim_dst: da,
            trigger_window: w,
        });
        reqs.push(QueryRequest::RedLights {
            victim,
            victim_dst: da,
            trigger_window: w,
        });
        reqs.push(QueryRequest::Cascade {
            victim,
            victim_dst: da,
            trigger_window: w,
            max_depth: 3,
        });
    }
    reqs
}

#[test]
fn wire_verdicts_bit_identical_to_sharded_analyzer_at_1_2_4_8_shards() {
    // The watch fixture's ECMP collision makes the victim's trigger fire
    // deterministically, so the trigger-anchored diagnoses are always in
    // the request set alongside the aggregate sweep.
    let (mut tb, victim, _) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(40));
    let analyzer = tb.analyzer();
    let reqs = storm_queries(&tb, victim);
    assert!(reqs.len() > 11, "fixture must include the diagnoses");
    for n_shards in [1usize, 2, 4, 8] {
        let sharded = ShardedAnalyzer::new(&analyzer, n_shards);
        let cluster = WireCluster::launch(&analyzer, n_shards, WireConfig::default()).unwrap();
        let mut client = cluster.client().unwrap();
        for (i, req) in reqs.iter().enumerate() {
            let wire = client.query(req).unwrap();
            let local = sharded.execute(req);
            assert_eq!(
                format!("{wire:?}"),
                format!("{local:?}"),
                "query {i} diverged across the wire at {n_shards} shards"
            );
        }
        // The wire coalesced every fan-out per shard: no wave can have
        // cost more round trips than shards.
        let counters = cluster.front().counters();
        assert!(counters.rpcs >= counters.rounds);
        cluster.shutdown();
    }
}

// ----------------------------------------------------------------------
// (b continued) Standing-query incident stream parity + (c) failure
// injection
// ----------------------------------------------------------------------

/// The continuous-watch fixture: background cross-pod UDP plus a
/// HIGH-priority burst that starves a TCP victim mid-run.
fn watch_testbed() -> (Testbed, FlowId, NodeId) {
    let topo = Topology::fat_tree(4, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let background = |tb: &mut Testbed, s: &str, d: &str| {
        let (s, d) = (tb.node(s), tb.node(d));
        tb.sim.add_udp_flow(UdpFlowSpec {
            src: s,
            dst: d,
            priority: Priority::LOW,
            start: SimTime::ZERO,
            duration: SimTime::from_ms(30),
            rate_bps: 100_000_000,
            payload_bytes: 1458,
        });
    };
    background(&mut tb, "h1_0_0", "h3_1_1");
    let (a, b) = (tb.node("h0_0_0"), tb.node("h0_0_1"));
    let (da, db) = (tb.node("h2_0_0"), tb.node("h2_0_1"));
    let victim = tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
        a,
        da,
        Priority::LOW,
        SimTime::from_ms(40),
    ));
    tb.sim.add_udp_flow(UdpFlowSpec::burst(
        b,
        db,
        Priority::HIGH,
        SimTime::from_ms(15),
        SimTime::from_ms(2),
        GBPS,
    ));
    background(&mut tb, "h1_1_0", "h2_1_1");
    (tb, victim, da)
}

fn watch_subscriptions(tb: &Testbed, victim: FlowId, victim_dst: NodeId) -> Vec<StandingQuery> {
    vec![
        StandingQuery::TopKSliding {
            switch: tb.node("edge0_0"),
            k: 5,
            epochs_back: 8,
        },
        StandingQuery::LoadImbalanceSliding {
            switch: tb.node("agg0_0"),
            epochs_back: 8,
        },
        StandingQuery::Fixed(QueryRequest::TopK {
            switch: tb.node("edge2_0"),
            k: 5,
            range: EpochRange { lo: 5, hi: 20 },
        }),
        StandingQuery::ContentionWatch {
            victim,
            victim_dst,
            trigger_window: tb.cfg.trigger.window,
        },
    ]
}

/// Client-side incident collection: per-sub streams with seq-continuity
/// checking (a duplicated or dropped push trips the assert).
#[derive(Default)]
struct Collected {
    by_sub: BTreeMap<SubscriptionId, Vec<Incident>>,
    seqs: BTreeMap<SubscriptionId, u64>,
}

impl Collected {
    fn take(&mut self, seq: u64, incident: Incident) {
        let expect = self.seqs.entry(incident.sub).or_insert(0);
        assert_eq!(
            seq, *expect,
            "sub {:?}: pushed seq {seq}, expected {} (duplicate or drop)",
            incident.sub, *expect
        );
        *expect += 1;
        self.by_sub.entry(incident.sub).or_default().push(incident);
    }

    fn resume_point(&self, sub: SubscriptionId) -> u64 {
        self.seqs.get(&sub).copied().unwrap_or(0)
    }
}

/// Drives the in-process stream plane and the wire cluster over the same
/// windows, optionally killing connections mid-stream, and asserts the
/// client-re-derived incident log equals the in-process one per
/// subscription.
fn run_stream_parity(n_shards: usize, inject_failures: bool) {
    let (mut tb, victim, da) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(10));
    let analyzer = tb.analyzer();

    let mut sp = StreamPlane::new(
        &analyzer,
        StreamConfig {
            plane: QueryPlaneConfig {
                workers: 4,
                shards: 8,
                directory_shards: n_shards,
                cache_capacity: 4096,
                retention: None,
            },
            result_cache_capacity: 1024,
        },
    );
    let subs = watch_subscriptions(&tb, victim, da);
    let mut sub_ids = Vec::new();
    for q in &subs {
        sub_ids.push(sp.subscribe(*q));
    }

    let cluster = WireCluster::launch(&analyzer, n_shards, WireConfig::default()).unwrap();
    let mut client = Some(cluster.client().unwrap());
    for q in &subs {
        let (sub, available) = client.as_mut().unwrap().subscribe(*q, 0).unwrap();
        assert_eq!(available, 0, "fresh topic must have an empty backlog");
        assert!(sub_ids.contains(&sub));
    }

    let mut collected = Collected::default();
    for w in 1..=8u64 {
        tb.sim.run_until(SimTime::from_ms(10 + w * 5));

        if inject_failures && w == 3 {
            // Kill the client connection mid-stream: the front-end reaps
            // the watchers; the client reconnects and resubscribes with
            // its per-topic cursor — the front-end replays exactly the
            // unseen suffix, so the re-derived log has zero duplicates
            // and zero drops (Collected asserts seq continuity).
            drop(client.take());
            let mut resumed = cluster.client().unwrap();
            for (q, &sub_id) in subs.iter().zip(&sub_ids) {
                let cursor = collected.resume_point(sub_id);
                let (sub, available) = resumed.subscribe(*q, cursor).unwrap();
                assert_eq!(sub, sub_id, "topic id changed across resubscribe");
                assert!(available >= cursor);
            }
            client = Some(resumed);
        }
        if inject_failures && w == 5 {
            // Sever every front-end → shard connection mid-stream: the
            // next window's reads must transparently reconnect.
            cluster.front().kill_shard_connections();
        }

        // In-process window.
        let report = sp.run_window(&analyzer);
        // Wire window: refresh the shard states out-of-band, then close.
        cluster.refresh(&analyzer);
        let summary = cluster.close_window();
        assert_eq!(summary.window, w - 1);
        assert_eq!(
            summary.horizon, report.horizon,
            "wire horizon diverged at window {w}"
        );

        // Drain this window's pushes.
        let (incidents, win) = client.as_mut().unwrap().drain_window().unwrap();
        assert_eq!(win.window, w - 1);
        for (seq, incident) in incidents {
            collected.take(seq, incident);
        }
    }

    if inject_failures {
        assert!(
            cluster.front().shard_reconnects() >= n_shards as u64,
            "severed shard connections must have re-established"
        );
    }

    // The client-side re-derived log equals the in-process incident log,
    // per subscription, bit for bit.
    for &sub in &sub_ids {
        let in_process: Vec<&Incident> = sp.incidents().iter().filter(|i| i.sub == sub).collect();
        let over_wire: Vec<&Incident> = collected
            .by_sub
            .get(&sub)
            .map(|v| v.iter().collect())
            .unwrap_or_default();
        assert_eq!(
            over_wire.len(),
            in_process.len(),
            "sub {sub}: incident count diverged (wire {} vs local {})",
            over_wire.len(),
            in_process.len()
        );
        for (w, l) in over_wire.iter().zip(&in_process) {
            assert_eq!(*w, *l, "sub {sub}: incident diverged");
        }
    }
    // The watch must actually have fired (the fixture's point): a
    // pending baseline plus a verdict transition.
    let watch_sub = sub_ids[3];
    assert!(
        sp.incidents().iter().filter(|i| i.sub == watch_sub).count() >= 2,
        "contention watch never transitioned — fixture regressed"
    );
    cluster.shutdown();
}

#[test]
fn wire_incident_stream_bit_identical_at_1_2_4_8_shards() {
    for n_shards in [1usize, 2, 4, 8] {
        run_stream_parity(n_shards, false);
    }
}

#[test]
fn killed_connections_mid_stream_rederive_the_incident_log_exactly() {
    run_stream_parity(2, true);
}

/// The replicated deployment under the same parity bar, with the failure
/// escalated from a killed *connection* to a killed *primary*: every
/// shard runs primary + standby consuming the same replication log, the
/// client loses its connection and resumes by cursor, and then every
/// primary is killed mid-stream — the query waves fail over to the
/// standbys and the incident stream must still equal the in-process
/// stream plane's bit for bit, with zero duplicated and zero dropped
/// transitions.
#[test]
fn incident_stream_bit_identical_across_primary_kill() {
    let (mut tb, victim, da) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(10));
    let analyzer = tb.analyzer();
    let n_shards = 2usize;

    let mut sp = StreamPlane::new(
        &analyzer,
        StreamConfig {
            plane: QueryPlaneConfig {
                workers: 4,
                shards: 8,
                directory_shards: n_shards,
                cache_capacity: 4096,
                retention: None,
            },
            result_cache_capacity: 1024,
        },
    );
    let subs = watch_subscriptions(&tb, victim, da);
    let mut sub_ids = Vec::new();
    for q in &subs {
        sub_ids.push(sp.subscribe(*q));
    }

    let cluster = ReplicaCluster::launch(&analyzer, n_shards, 2, WireConfig::default()).unwrap();
    let mut client = Some(cluster.client().unwrap());
    for q in &subs {
        let (sub, available) = client.as_mut().unwrap().subscribe(*q, 0).unwrap();
        assert_eq!(available, 0, "fresh topic must have an empty backlog");
        assert!(sub_ids.contains(&sub));
    }

    let mut collected = Collected::default();
    for w in 1..=8u64 {
        tb.sim.run_until(SimTime::from_ms(10 + w * 5));

        if w == 3 {
            // Client dies mid-stream and resumes by cursor, exactly as
            // in the single-replica drill...
            drop(client.take());
            let mut resumed = cluster.client().unwrap();
            for (q, &sub_id) in subs.iter().zip(&sub_ids) {
                let cursor = collected.resume_point(sub_id);
                let (sub, available) = resumed.subscribe(*q, cursor).unwrap();
                assert_eq!(sub, sub_id, "topic id changed across resubscribe");
                assert!(available >= cursor);
            }
            client = Some(resumed);
        }
        if w == 5 {
            // ...and then every primary is killed outright: the next
            // window's query waves must rotate to the standbys.
            for shard in 0..n_shards {
                assert!(cluster.kill_primary(shard), "primary already dead");
            }
        }

        let report = sp.run_window(&analyzer);
        cluster.refresh(&analyzer);
        let summary = cluster.close_window();
        assert_eq!(summary.window, w - 1);
        assert_eq!(
            summary.horizon, report.horizon,
            "wire horizon diverged at window {w}"
        );

        let (incidents, win) = client.as_mut().unwrap().drain_window().unwrap();
        assert_eq!(win.window, w - 1);
        for (seq, incident) in incidents {
            collected.take(seq, incident);
        }

        // Replication invariant, checked every window: every surviving
        // replica sits exactly at the owner's log head, and its served
        // slice equals the owner's authoritative slice bit for bit.
        let heads = cluster.heads();
        let applied = cluster.applied_seqs();
        for s in 0..n_shards {
            let owner = cluster.owner_slice(s);
            for (r, a) in applied[s].iter().enumerate() {
                let Some(a) = a else { continue };
                assert_eq!(*a, heads[s], "shard {s} replica {r} lagging at window {w}");
                let state = cluster.replica_state(s, r).expect("live replica");
                assert!(
                    state.view == owner,
                    "shard {s} replica {r} diverged at window {w}"
                );
            }
        }
    }

    // The failover actually happened and was observed: every shard's
    // active replica moved off the primary, and the failover histogram
    // recorded the wall clock it took.
    assert!(
        cluster.front().shard_failovers() >= n_shards as u64,
        "fewer failovers than killed primaries"
    );
    assert!(
        cluster.front().active_replicas().iter().all(|&r| r == 1),
        "some shard still points at the dead primary"
    );
    let front_snap = cluster.front_metrics().snapshot();
    assert!(
        front_snap
            .hists
            .get("wire.failover_ns")
            .is_some_and(|h| h.count >= 1),
        "failover histogram empty"
    );

    for &sub in &sub_ids {
        let in_process: Vec<&Incident> = sp.incidents().iter().filter(|i| i.sub == sub).collect();
        let over_wire: Vec<&Incident> = collected
            .by_sub
            .get(&sub)
            .map(|v| v.iter().collect())
            .unwrap_or_default();
        assert_eq!(
            over_wire.len(),
            in_process.len(),
            "sub {sub}: incident count diverged across primary kill"
        );
        for (wi, l) in over_wire.iter().zip(&in_process) {
            assert_eq!(*wi, *l, "sub {sub}: incident diverged across primary kill");
        }
    }
    let watch_sub = sub_ids[3];
    assert!(
        sp.incidents().iter().filter(|i| i.sub == watch_sub).count() >= 2,
        "contention watch never transitioned — fixture regressed"
    );
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// (d) Typed boundaries
// ----------------------------------------------------------------------

#[test]
fn degenerate_plane_configs_are_rejected_with_typed_errors() {
    let cases = [
        (
            QueryPlaneConfig {
                workers: 0,
                ..QueryPlaneConfig::default()
            },
            ConfigError::ZeroWorkers,
        ),
        (
            QueryPlaneConfig {
                shards: 0,
                ..QueryPlaneConfig::default()
            },
            ConfigError::ZeroHostShards,
        ),
        (
            QueryPlaneConfig {
                directory_shards: 0,
                ..QueryPlaneConfig::default()
            },
            ConfigError::ZeroDirectoryShards,
        ),
        (
            QueryPlaneConfig {
                cache_capacity: 0,
                ..QueryPlaneConfig::default()
            },
            ConfigError::ZeroCacheCapacity,
        ),
    ];
    for (cfg, want) in cases {
        assert_eq!(cfg.validate(), Err(want));
    }
    assert!(QueryPlaneConfig::default().validate().is_ok());

    // Through the construction boundary: a typed Err, not a deep panic.
    let topo = Topology::chain(3, 2, GBPS);
    let tb = Testbed::new(topo, TestbedConfig::default_ms());
    let analyzer = tb.analyzer();
    assert_eq!(
        QueryPlane::try_from_analyzer(
            &analyzer,
            QueryPlaneConfig {
                workers: 0,
                ..QueryPlaneConfig::default()
            }
        )
        .err(),
        Some(ConfigError::ZeroWorkers)
    );
    assert_eq!(
        StreamPlane::try_new(
            &analyzer,
            StreamConfig {
                plane: QueryPlaneConfig {
                    cache_capacity: 0,
                    ..QueryPlaneConfig::default()
                },
                result_cache_capacity: 16,
            }
        )
        .err(),
        Some(ConfigError::ZeroCacheCapacity)
    );
    // The wire layer validates through the same path.
    assert!(WireCluster::launch(&analyzer, 0, WireConfig::default()).is_err());
}

#[test]
fn accept_pool_exhaustion_is_a_typed_refusal() {
    let topo = Topology::chain(3, 2, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, f) = (tb.node("A"), tb.node("F"));
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: f,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(2),
        rate_bps: 100_000_000,
        payload_bytes: 1458,
    });
    tb.sim.run_until(SimTime::from_ms(5));
    let analyzer = tb.analyzer();

    let cluster = WireCluster::launch(
        &analyzer,
        1,
        WireConfig {
            max_conns: 1,
            ..WireConfig::default()
        },
    )
    .unwrap();
    // First client fills the front-end's pool...
    let _held = cluster.client().unwrap();
    // ...the second is refused with a typed error frame, not a hang.
    match cluster.client() {
        Err(WireError::Remote(msg)) => assert!(msg.contains("accept pool")),
        // The refused stream may also surface as an io error if the
        // server closed before the greeting was read — but never a hang
        // or a panic. Prefer the typed path, accept the racy close.
        Err(WireError::Io { .. }) => {}
        Ok(_) => panic!("accept pool bound not enforced"),
        Err(e) => panic!("unexpected refusal shape: {e}"),
    }
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// Streamed events are well-formed (window digests carry the log sizes)
// ----------------------------------------------------------------------

#[test]
fn window_digests_report_subscriptions_and_pending_counts() {
    let (mut tb, victim, da) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(10));
    let analyzer = tb.analyzer();
    let cluster = WireCluster::launch(&analyzer, 2, WireConfig::default()).unwrap();
    let mut client = cluster.client().unwrap();
    client
        .subscribe(
            StandingQuery::ContentionWatch {
                victim,
                victim_dst: da,
                trigger_window: tb.cfg.trigger.window,
            },
            0,
        )
        .unwrap();
    let summary = cluster.close_window();
    assert_eq!(summary.evaluated, 1);
    assert_eq!(summary.pending, 1, "no trigger at 10ms: watch must pend");
    assert_eq!(summary.incidents, 1, "first sight logs a baseline");
    match client.next_event().unwrap() {
        WireEvent::Incident { seq, incident } => {
            assert_eq!(seq, 0);
            assert_eq!(incident.summary, streamplane::PENDING_SUMMARY);
        }
        other => panic!("expected the baseline incident, got {other:?}"),
    }
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// (e) Stats scrape parity: wire-round-tripped registry snapshots ARE the
// server-side registries
// ----------------------------------------------------------------------

#[test]
fn scraped_stats_equal_server_registries_and_merge_to_totals() {
    let (mut tb, victim, _) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(40));
    let analyzer = tb.analyzer();
    let reqs = storm_queries(&tb, victim);
    let n_shards = 4usize;
    let cluster = WireCluster::launch(&analyzer, n_shards, WireConfig::default()).unwrap();
    let mut client = cluster.client().unwrap();
    for req in &reqs {
        client.query(req).unwrap();
    }

    // Every query's reply arrived, so every shard finished recording its
    // RPC metrics before we scrape; nothing else is driving the cluster.
    let scraped = client.scrape_stats().unwrap();
    assert_eq!(scraped.len(), n_shards + 1, "front + one entry per shard");
    assert_eq!(scraped[0].0, "front");

    // Per-shard parity: the snapshot that crossed the wire is *equal* to
    // the server-side registry's, field for field — the scrape neither
    // lossy-encodes nor perturbs what it measures.
    for i in 0..n_shards {
        let (label, snap) = &scraped[i + 1];
        assert_eq!(label, &format!("shard{i}"));
        let server_side = cluster.server_metrics(i).snapshot();
        assert_eq!(
            snap, &server_side,
            "shard {i}: scraped snapshot diverged from the server registry"
        );
        assert!(
            snap.counter("wire.frames_served") > 0,
            "shard {i} served the storm yet scraped zero frames"
        );
    }
    // The front records per-class exec latency under the same names the
    // in-process plane uses, plus per-shard RTT.
    let front = &scraped[0].1;
    assert!(front.hist("queryplane.exec_ns.top_k").is_some());
    for i in 0..n_shards {
        assert!(front.hist(&format!("wire.rtt_ns.shard{i}")).is_some());
    }

    // Merged across shards, counters and histogram counts equal the sum
    // of the per-shard server-side totals.
    let mut merged = obsplane::RegistrySnapshot::default();
    for (_, snap) in scraped.iter().skip(1) {
        merged.merge(snap);
    }
    let served_sum: u64 = (0..n_shards)
        .map(|i| {
            cluster
                .server_metrics(i)
                .snapshot()
                .counter("wire.frames_served")
        })
        .sum();
    assert_eq!(merged.counter("wire.frames_served"), served_sum);
    let serve_count_sum: u64 = (0..n_shards)
        .map(|i| {
            cluster
                .server_metrics(i)
                .snapshot()
                .hist("wire.serve_ns")
                .map(|h| h.count)
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(
        merged
            .hist("wire.serve_ns")
            .expect("merged serve hist")
            .count,
        serve_count_sum
    );
    assert_eq!(merged.counter("wire.frames_served"), serve_count_sum);

    // Scraping is side-effect-free end to end: a quiesced cluster scrapes
    // identically any number of times, from any client.
    let again = client.scrape_stats().unwrap();
    assert_eq!(scraped, again, "scrape perturbed the metrics it pulled");
    let mut other = cluster.client().unwrap();
    let third = other.scrape_stats().unwrap();
    assert_eq!(scraped, third, "scrape result depends on the connection");
    cluster.shutdown();
}

// ----------------------------------------------------------------------
// (f) The wire fast path: batch envelopes, multiplexing, buffer reuse
// ----------------------------------------------------------------------

/// Differential codec pin: every legacy frame type, wrapped in the fast
/// path's `Tagged`/`Batch`/`BatchRep` envelopes, decodes back to exactly
/// the value the legacy codec produces for the same frame. The compact
/// payload forms (delta-packed ids, run-length bitsets, var-int lists)
/// may lay the bytes out differently — the *decoded value* may not
/// differ by a bit.
#[test]
fn envelope_framing_decodes_every_frame_type_to_its_legacy_value() {
    let mut rng = rng_for("wireplane envelope differential");
    for round in 0..10 {
        let frames = gen_frames(&mut rng);
        // The legacy codec's view of each frame, via the un-enveloped
        // path (pinned as the identity by the roundtrip test above).
        let legacy: Vec<Frame> = frames
            .iter()
            .map(|f| {
                let bytes = f.to_frame_bytes().unwrap();
                let (tag, payload) = read_frame(&mut &bytes[..], MAX_FRAME).unwrap();
                Frame::decode(tag, &payload).unwrap()
            })
            .collect();

        // Tagged: each frame alone under a req-id envelope.
        for (i, f) in frames.iter().enumerate() {
            let req_id = i as u32 * 7 + 1;
            let tagged = Frame::Tagged {
                req_id,
                ctx: None,
                inner: Box::new(f.clone()),
            };
            let bytes = tagged.to_frame_bytes().unwrap();
            let (tag, payload) = read_frame(&mut &bytes[..], MAX_FRAME).unwrap();
            match Frame::decode(tag, &payload).unwrap() {
                Frame::Tagged {
                    req_id: got,
                    ctx,
                    inner,
                } => {
                    assert_eq!(got, req_id);
                    assert_eq!(ctx, None);
                    assert_eq!(
                        format!("{inner:?}"),
                        format!("{:?}", legacy[i]),
                        "round {round}: tagged {f:?} diverged from the legacy codec"
                    );
                }
                other => panic!("tagged envelope decoded to {other:?}"),
            }
        }

        // Batch: the whole sample set in one frame.
        let entries: Vec<(u32, Option<TraceContext>, Frame)> = frames
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, f)| (i as u32, None, f))
            .collect();
        let batch = Frame::Batch(entries);
        let bytes = batch.to_frame_bytes().unwrap();
        let (tag, payload) = read_frame(&mut &bytes[..], MAX_FRAME).unwrap();
        match Frame::decode(tag, &payload).unwrap() {
            Frame::Batch(got) => {
                assert_eq!(got.len(), frames.len());
                for ((id, ctx, inner), (i, want)) in got.iter().zip(legacy.iter().enumerate()) {
                    assert_eq!(*id, i as u32);
                    assert_eq!(*ctx, None);
                    assert_eq!(
                        format!("{inner:?}"),
                        format!("{want:?}"),
                        "round {round}: batch entry {i} diverged from the legacy codec"
                    );
                }
            }
            other => panic!("batch envelope decoded to {other:?}"),
        }

        // BatchRep: same, on the reply side.
        let entries: Vec<(u32, Frame)> = frames
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, f)| (i as u32, f))
            .collect();
        let rep = Frame::BatchRep(entries);
        let bytes = rep.to_frame_bytes().unwrap();
        let (tag, payload) = read_frame(&mut &bytes[..], MAX_FRAME).unwrap();
        match Frame::decode(tag, &payload).unwrap() {
            Frame::BatchRep(got) => {
                assert_eq!(got.len(), frames.len());
                for ((id, inner), (i, want)) in got.iter().zip(legacy.iter().enumerate()) {
                    assert_eq!(*id, i as u32);
                    assert_eq!(
                        format!("{inner:?}"),
                        format!("{want:?}"),
                        "round {round}: batch reply entry {i} diverged from the legacy codec"
                    );
                }
            }
            other => panic!("batch reply envelope decoded to {other:?}"),
        }
    }
}

/// The fuzz bar extended to the envelope frames: strict prefixes are
/// typed errors, single-byte flips never panic, hostile length fields
/// are refused before any allocation they would justify, and envelopes
/// do not nest (so decode recursion is bounded at one level).
#[test]
fn envelope_frames_reject_truncation_corruption_and_hostile_counts() {
    let mut rng = rng_for("wireplane envelope fuzz");
    let frames = gen_frames(&mut rng);
    // Mixed trace contexts per entry: the fuzz sweep covers the marker
    // byte and the 17-byte ctx body as well as the bare layout.
    let entries: Vec<(u32, Option<TraceContext>, Frame)> = frames
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, f)| (i as u32, gen_trace_ctx(&mut rng), f))
        .collect();
    let rep_entries: Vec<(u32, Frame)> = frames
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, f)| (i as u32, f))
        .collect();
    let samples = vec![
        Frame::Tagged {
            req_id: 42,
            ctx: gen_trace_ctx(&mut rng).or_else(|| gen_trace_ctx(&mut rng)),
            inner: Box::new(frames[0].clone()),
        },
        Frame::Batch(entries),
        Frame::BatchRep(rep_entries),
    ];
    for frame in &samples {
        let bytes = frame.to_frame_bytes().unwrap();
        let (tag, payload) = read_frame(&mut &bytes[..], MAX_FRAME).unwrap();
        let cuts: Vec<usize> = if payload.len() <= 96 {
            (0..payload.len()).collect()
        } else {
            (0..96).map(|i| i * payload.len() / 96).collect()
        };
        for cut in cuts {
            assert!(
                Frame::decode(tag, &payload[..cut]).is_err(),
                "truncated envelope {tag:#04x} at {cut}/{} decoded successfully",
                payload.len()
            );
        }
        for i in 0..payload.len().min(256) {
            let mut corrupt = payload.clone();
            corrupt[i] ^= 0xA5;
            let _ = Frame::decode(tag, &corrupt); // must return, not panic
        }
    }

    // Hand-crafted hostile headers. LEB128, as the codec writes it.
    fn leb(mut v: u64, out: &mut Vec<u8>) {
        loop {
            let b = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                out.push(b);
                break;
            }
            out.push(b | 0x80);
        }
    }
    // A Batch count promising more entries than the payload could hold
    // is refused up front — before allocating a single entry.
    for tag in [0x51u8, 0x52] {
        let mut hostile = Vec::new();
        leb(u64::MAX / 2, &mut hostile);
        assert!(
            matches!(
                Frame::decode(tag, &hostile),
                Err(WireError::Truncated { .. })
            ),
            "hostile batch count not refused"
        );
    }
    // A delta-packed id list (Tagged StoreLenWaveReq) with a count far
    // beyond its bytes: refused before allocation.
    let mut hostile_ids = vec![0, 0, 0, 7, 0x18];
    leb(1 << 40, &mut hostile_ids);
    assert!(
        Frame::decode(0x50, &hostile_ids).is_err(),
        "hostile id count not refused"
    );
    // A run-length bitset (Tagged UnionSliceRep) claiming a capacity no
    // legal frame could carry: typed Oversize, not a giant allocation.
    let mut hostile_bits = vec![0, 0, 0, 9, 0x20, 1];
    leb(u64::MAX / 4, &mut hostile_bits);
    assert!(
        matches!(
            Frame::decode(0x50, &hostile_bits),
            Err(WireError::Oversize(_))
        ),
        "hostile bitset capacity not refused"
    );
    // Memory amplification: entries *individually* under the cap must
    // not multiply through a Batch. Each ~15-byte entry below claims a
    // 300M-bit empty bitset (37.5 MB of backing words); the per-frame
    // cumulative budget (one maximal legacy frame's worth of words)
    // admits the first and refuses the second — a hostile batch can
    // never decode into more bitset memory than one legacy frame could
    // carry, no matter how many entries it packs.
    let nbits: u64 = 300_000_000;
    let mut entry = vec![1u8]; // Some marker
    leb(nbits, &mut entry); // capacity
    leb(nbits, &mut entry); // one all-zero run
    let mut hostile_batch = Vec::new();
    leb(2, &mut hostile_batch); // entry count
    for id in 0u32..2 {
        hostile_batch.extend_from_slice(&id.to_le_bytes());
        hostile_batch.push(0x20);
        leb(entry.len() as u64, &mut hostile_batch);
        hostile_batch.extend_from_slice(&entry);
    }
    for tag in [0x51u8, 0x52] {
        assert!(
            matches!(
                Frame::decode(tag, &hostile_batch),
                Err(WireError::Oversize(_))
            ),
            "cumulative bitset budget not enforced across batch entries"
        );
    }
    // The same two entries at an honest size (1M bits each) share the
    // budget comfortably and decode.
    let nbits: u64 = 1 << 20;
    let mut entry = vec![1u8];
    leb(nbits, &mut entry);
    leb(nbits, &mut entry);
    let mut honest_batch = Vec::new();
    leb(2, &mut honest_batch);
    for id in 0u32..2 {
        honest_batch.extend_from_slice(&id.to_le_bytes());
        honest_batch.push(0x20);
        leb(entry.len() as u64, &mut honest_batch);
        honest_batch.extend_from_slice(&entry);
    }
    match Frame::decode(0x51, &honest_batch) {
        Ok(Frame::Batch(entries)) => {
            assert_eq!(entries.len(), 2);
            for (_, _, f) in &entries {
                match f {
                    Frame::UnionSliceRep(Some(b)) => {
                        assert_eq!(b.capacity() as u64, nbits);
                        assert!(b.is_empty());
                    }
                    other => panic!("unexpected entry {other:?}"),
                }
            }
        }
        other => panic!("honest batch refused: {other:?}"),
    }
    // A delta-packed id list whose running sum overflows i64 (first id
    // 1, then delta i64::MAX) is a typed error in every build profile —
    // never a debug-only arithmetic panic.
    let mut overflow_ids = vec![0, 0, 0, 8, 0x15];
    leb(2, &mut overflow_ids); // id count
    leb(2, &mut overflow_ids); // zigzag(+1)
    leb(u64::MAX - 1, &mut overflow_ids); // zigzag(i64::MAX)
    assert!(
        matches!(
            Frame::decode(0x50, &overflow_ids),
            Err(WireError::Oversize(_))
        ),
        "overflowing id delta not refused"
    );
    // Envelopes must not nest: a Tagged wrapping tag 0x50 is a BadTag.
    let nested = vec![0, 0, 0, 1, 0x50, 0, 0, 0, 2, 0x3F];
    assert!(
        matches!(Frame::decode(0x50, &nested), Err(WireError::BadTag(0x50))),
        "nested envelope not refused"
    );
    // Arbitrary garbage under the envelope tags: typed errors or clean
    // decodes, never a panic.
    for _ in 0..200 {
        let n = rng.below(64) as usize;
        let garbage: Vec<u8> = (0..n).map(|_| rng.below(256) as u8).collect();
        for tag in [0x50u8, 0x51, 0x52] {
            let _ = Frame::decode(tag, &garbage);
        }
    }
}

/// Buffer-reuse soundness: the fast path encodes every envelope into a
/// per-connection scratch buffer ([`Frame::encode_into`]). Reusing one
/// buffer across waves — long frames followed by short ones — must be
/// byte-identical to a fresh allocation every time (no stale-suffix
/// leakage).
#[test]
fn reused_encode_scratch_is_byte_identical_to_fresh_encoding_across_waves() {
    let mut rng = rng_for("wireplane scratch reuse");
    let mut scratch = Vec::new();
    for wave in 0..3u32 {
        let frames = gen_frames(&mut rng);
        for frame in &frames {
            let tagged = Frame::Tagged {
                req_id: wave,
                ctx: None,
                inner: Box::new(frame.clone()),
            };
            tagged.encode_into(&mut scratch).unwrap();
            assert_eq!(
                scratch,
                tagged.to_frame_bytes().unwrap(),
                "wave {wave}: reused scratch diverged from fresh encoding"
            );
        }
        let batch = Frame::Batch(
            frames
                .into_iter()
                .enumerate()
                .map(|(i, f)| (i as u32, None, f))
                .collect(),
        );
        batch.encode_into(&mut scratch).unwrap();
        assert_eq!(
            scratch,
            batch.to_frame_bytes().unwrap(),
            "wave {wave}: reused batch scratch diverged from fresh encoding"
        );
    }
}

/// The envelope-frame economics the fast path exists for: a batched wave
/// writes a number of envelope frames bounded by its coalesced RPCs
/// (host-count independent), while the naive per-host regime pays one
/// envelope per host read. Also pins that the wave instruments itself
/// (`wire.frames_per_wave`, `wire.bytes_per_query`).
#[test]
fn batched_wave_frames_do_not_scale_with_host_count() {
    let (mut tb, victim, _) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(40));
    let analyzer = tb.analyzer();
    let reqs = storm_queries(&tb, victim);
    let n_shards = 2usize;

    let batched = WireCluster::launch(&analyzer, n_shards, WireConfig::default()).unwrap();
    let f0 = batched.front().wire_frames_sent();
    let results = batched.front().execute_wave(&reqs);
    assert_eq!(results.len(), reqs.len());
    let batched_frames = batched.front().wire_frames_sent() - f0;
    let batched_rpcs = batched.front().counters().rpcs;

    let naive =
        WireCluster::launch_with(&analyzer, n_shards, WireConfig::default(), false).unwrap();
    let n0 = naive.front().wire_frames_sent();
    for req in &reqs {
        naive.front().execute(req);
    }
    let naive_frames = naive.front().wire_frames_sent() - n0;

    assert!(
        batched_frames <= batched_rpcs,
        "a batched wave wrote {batched_frames} envelopes for {batched_rpcs} coalesced RPCs"
    );
    // Strictly fewer envelopes than the per-host regime: the gap is
    // exactly the per-host fan-outs collapsed into wave frames (every
    // envelope carries at least one RPC, so batched frames never exceed
    // the coalesced RPC count, which is below the naive frame count).
    assert!(
        naive_frames < 2 * batched_rpcs && naive_frames > batched_frames,
        "per-host regime wrote {naive_frames} envelope frames vs {batched_frames} batched — \
         frames are scaling with host count again"
    );

    // The scaling pin itself, at the wire: a fan-out covering EVERY host
    // in the fabric is one envelope frame (only its bytes grow), while
    // per-host reads pay one envelope each.
    let all_hosts: Vec<NodeId> = tb.hosts.keys().copied().collect();
    assert!(all_hosts.len() >= 16, "fat-tree(4) fixture has 16 hosts");
    let (mux, _, _) = MuxConn::connect(batched.shard_addrs()[0], MAX_FRAME).unwrap();
    let switch = tb.node("edge0_0");
    let range = EpochRange { lo: 10, hi: 20 };
    let f0 = mux.frames_sent();
    let b0 = mux.bytes_sent();
    mux.call(&Frame::FilterWaveReq {
        switch,
        range,
        hosts: all_hosts.clone(),
    })
    .unwrap();
    assert_eq!(
        mux.frames_sent() - f0,
        1,
        "a whole-fabric fan-out must travel as one envelope frame"
    );
    let wave_bytes = mux.bytes_sent() - b0;
    for &h in &all_hosts {
        mux.call(&Frame::StoreLenReq { host: h }).unwrap();
    }
    assert_eq!(
        mux.frames_sent() - f0,
        1 + all_hosts.len() as u64,
        "per-host reads pay one envelope each — the regime the wave frame replaces"
    );
    assert!(wave_bytes > 0, "the fan-out frame carried no bytes");

    let snap = batched.front_metrics().snapshot();
    let fpw = snap
        .hist("wire.frames_per_wave")
        .expect("frames-per-wave histogram");
    assert_eq!(fpw.count, 1, "one wave, one frames-per-wave sample");
    assert!(
        snap.hist("wire.bytes_per_query")
            .is_some_and(|h| h.count == 1),
        "bytes-per-query histogram missing its wave sample"
    );
    batched.shutdown();
    naive.shutdown();
}

/// Interleaving: N concurrent tagged requests on ONE connection, with
/// server-side delays rigged so the first-issued request finishes last.
/// Every reply must pair with its own request (no cross-talk), and the
/// fast requests must complete while the slow one is still in flight —
/// out-of-order completion over a single multiplexed socket.
#[test]
fn mux_tagged_requests_complete_out_of_order_without_cross_talk() {
    let (mut tb, _victim, _) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(20));
    let analyzer = tb.analyzer();
    let cluster = WireCluster::launch(&analyzer, 1, WireConfig::default()).unwrap();
    let (mux, shard, _) = MuxConn::connect(cluster.shard_addrs()[0], MAX_FRAME).unwrap();
    assert_eq!(shard, 0);

    let host_ids: Vec<NodeId> = [
        "h0_0_0", "h0_0_1", "h1_0_0", "h1_0_1", "h2_0_0", "h2_0_1", "h3_0_0", "h3_0_1",
    ]
    .iter()
    .map(|n| tb.node(n))
    .collect();

    // Ground truth, serially, before any delay rigging.
    let expected_lens: Vec<String> = host_ids
        .iter()
        .map(|&h| format!("{:?}", mux.call(&Frame::StoreLenReq { host: h }).unwrap()))
        .collect();
    let expected_horizon = format!("{:?}", mux.call(&Frame::HorizonReq).unwrap());

    // Rig the server: horizon reads crawl, store-length reads fly.
    let delay: ServeDelay = Arc::new(|req: &Frame| match req {
        Frame::HorizonReq => Duration::from_millis(300),
        _ => Duration::ZERO,
    });
    cluster.server(0).set_serve_delay(Some(delay));

    let t0 = Instant::now();
    let barrier = std::sync::Barrier::new(host_ids.len() + 1);
    let (slow, fast) = std::thread::scope(|s| {
        let slow = s.spawn(|| {
            barrier.wait();
            let r = mux.call(&Frame::HorizonReq).unwrap();
            (format!("{r:?}"), t0.elapsed())
        });
        let handles: Vec<_> = host_ids
            .iter()
            .map(|&h| {
                let barrier = &barrier;
                let mux = &mux;
                s.spawn(move || {
                    barrier.wait();
                    // Let the slow request hit the socket first.
                    std::thread::sleep(Duration::from_millis(30));
                    let r = mux.call(&Frame::StoreLenReq { host: h }).unwrap();
                    (format!("{r:?}"), t0.elapsed())
                })
            })
            .collect();
        (
            slow.join().unwrap(),
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>(),
        )
    });
    cluster.server(0).set_serve_delay(None);

    // No cross-talk: every reply is exactly the serial answer for ITS
    // request, even though completions raced.
    assert_eq!(slow.0, expected_horizon, "slow reply crossed wires");
    for (i, (got, _)) in fast.iter().enumerate() {
        assert_eq!(
            *got, expected_lens[i],
            "fast reply {i} crossed wires with another request"
        );
    }
    // Out-of-order completion: every fast request (issued after the slow
    // one) finished while the slow one was still being served.
    let slowest_fast = fast.iter().map(|(_, t)| *t).max().unwrap();
    assert!(
        slowest_fast < slow.1,
        "fast requests ({slowest_fast:?}) did not overtake the slow one ({slow:?}) — \
         the connection is serializing"
    );
    cluster.shutdown();
}

/// Wave parity with the serial path at 1/2/4/8 shards: the pipelined,
/// batch-framed `execute_wave` returns responses bit-identical to the
/// in-process sharded analyzer, in submission order.
#[test]
fn mux_wave_parity_with_serial_at_1_2_4_8_shards() {
    let (mut tb, victim, _) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(40));
    let analyzer = tb.analyzer();
    let reqs = storm_queries(&tb, victim);
    assert!(reqs.len() > 11, "fixture must include the diagnoses");
    for n_shards in [1usize, 2, 4, 8] {
        let sharded = ShardedAnalyzer::new(&analyzer, n_shards);
        let cluster = WireCluster::launch(&analyzer, n_shards, WireConfig::default()).unwrap();
        let wave = cluster.front().execute_wave(&reqs);
        assert_eq!(wave.len(), reqs.len());
        for (i, ((resp, _, _), req)) in wave.iter().zip(&reqs).enumerate() {
            let local = sharded.execute(req);
            assert_eq!(
                format!("{resp:?}"),
                format!("{local:?}"),
                "query {i} diverged on the batched wave at {n_shards} shards"
            );
        }
        cluster.shutdown();
    }
}

/// A connection kill landing in the middle of a wave: the in-flight
/// exchanges fail over to a fresh connection and the wave still returns
/// bit-identical verdicts; the incident stream on the same deployment
/// stays seq-continuous (zero duplicated, zero dropped pushes).
#[test]
fn mux_mid_wave_connection_kill_fails_over_without_losing_incidents() {
    let (mut tb, victim, da) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(40));
    let analyzer = tb.analyzer();
    let reqs = storm_queries(&tb, victim);
    let n_shards = 2usize;
    let sharded = ShardedAnalyzer::new(&analyzer, n_shards);
    let cluster = WireCluster::launch(&analyzer, n_shards, WireConfig::default()).unwrap();

    // A watcher whose stream the kill also threatens.
    let mut client = cluster.client().unwrap();
    client
        .subscribe(
            StandingQuery::ContentionWatch {
                victim,
                victim_dst: da,
                trigger_window: tb.cfg.trigger.window,
            },
            0,
        )
        .unwrap();

    // Stretch every serve slightly so the kill lands inside the wave.
    for s in 0..n_shards {
        let delay: ServeDelay = Arc::new(|_: &Frame| Duration::from_millis(2));
        cluster.server(s).set_serve_delay(Some(delay));
    }
    let wave = std::thread::scope(|scope| {
        let killer = scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(20));
            cluster.front().kill_shard_connections();
        });
        let wave = cluster.front().execute_wave(&reqs);
        killer.join().unwrap();
        wave
    });
    for s in 0..n_shards {
        cluster.server(s).set_serve_delay(None);
    }

    for (i, ((resp, _, _), req)) in wave.iter().zip(&reqs).enumerate() {
        let local = sharded.execute(req);
        assert_eq!(
            format!("{resp:?}"),
            format!("{local:?}"),
            "query {i} diverged across the mid-wave kill"
        );
    }

    // The stream survives on the same deployment: seq continuity on the
    // drained window (Collected trips on any duplicate or drop).
    let summary = cluster.close_window();
    let (incidents, win) = client.drain_window().unwrap();
    assert_eq!(win.window, summary.window);
    assert_eq!(incidents.len() as u64, summary.incidents);
    let mut collected = Collected::default();
    for (seq, incident) in incidents {
        collected.take(seq, incident);
    }
    assert!(
        cluster.front().shard_reconnects() >= 1,
        "the kill never forced a reconnect — it missed"
    );
    cluster.shutdown();
}

/// Replication, scrapes and reads share one multiplexed link — and the
/// sequenced-log contract survives it: a `DeltaAppend` whose seq skips
/// ahead is refused with a typed `SeqGap` (served in-band, in arrival
/// order), the log does not move, and the connection keeps serving.
#[test]
fn mux_replication_scrapes_and_reads_share_the_link_with_seqgap_enforced() {
    let (mut tb, _victim, _) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(20));
    let analyzer = tb.analyzer();
    let cluster = WireCluster::launch(&analyzer, 1, WireConfig::default()).unwrap();
    let (mux, shard, _) = MuxConn::connect(cluster.shard_addrs()[0], MAX_FRAME).unwrap();
    assert_eq!(shard, 0);

    let horizon = match mux.call(&Frame::HorizonReq).unwrap() {
        Frame::HorizonRep(h) => h,
        other => panic!("expected a horizon reply, got {other:?}"),
    };
    assert!(
        matches!(
            mux.call(&Frame::StatsScrapeReq).unwrap(),
            Frame::StatsScrapeRep(_)
        ),
        "scrape refused on the multiplexed link"
    );

    let applied = cluster.server(0).applied_seq();
    let mut rng = rng_for("wireplane mux seqgap");
    let record = gen_delta_record(&mut rng);
    match mux
        .call(&Frame::DeltaAppend {
            shard: 0,
            seq: applied + 7,
            record,
            ctx: None,
        })
        .unwrap()
    {
        Frame::Error(WireError::SeqGap { expected, got }) => {
            assert_eq!(expected, applied + 1);
            assert_eq!(got, applied + 7);
        }
        other => panic!("expected a SeqGap refusal, got {other:?}"),
    }
    assert_eq!(
        cluster.server(0).applied_seq(),
        applied,
        "a refused append must not move the replication log"
    );
    // The refusal was an answer, not a poisoning: the link keeps serving.
    match mux.call(&Frame::HorizonReq).unwrap() {
        Frame::HorizonRep(h) => assert_eq!(h, horizon),
        other => panic!("link died after the SeqGap refusal: {other:?}"),
    }
    assert!(!mux.is_dead());
    cluster.shutdown();
}

/// Transport errors keep their peer address all the way through the
/// retry/failover rotation: both the client connect path and a shard
/// error surfaced after rotating across dead replicas render the peer
/// that failed.
#[test]
fn transport_errors_name_the_peer_through_retry_rotation() {
    // A dead address: bind, learn the port, drop the listener.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let Err(err) = WireClient::connect(dead, MAX_FRAME) else {
        panic!("connect to a dead address succeeded");
    };
    let msg = format!("{err}");
    assert!(
        msg.contains(&format!("transport error talking to {dead}")),
        "client connect error lost its peer: {msg}"
    );

    // A replica set whose every member goes dark: the rotation exhausts
    // its budget and the surfaced error still names a peer.
    let topo = Topology::chain(3, 2, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, f) = (tb.node("A"), tb.node("F"));
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: f,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(2),
        rate_bps: 100_000_000,
        payload_bytes: 1458,
    });
    tb.sim.run_until(SimTime::from_ms(5));
    let analyzer = tb.analyzer();
    let cluster = WireCluster::launch(&analyzer, 1, WireConfig::default()).unwrap();
    let live = cluster.shard_addrs()[0];
    let rs = RemoteShard::connect_replicated(
        0,
        vec![live, dead],
        MAX_FRAME,
        RetryPolicy::immediate(1),
        None,
        None,
    )
    .unwrap();
    assert!(rs.scrape().is_ok(), "live replica must answer");
    cluster.shutdown();
    let err = rs.scrape().unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("transport error talking to 127.0.0.1:"),
        "rotated shard error lost its peer: {msg}"
    );
}

// ----------------------------------------------------------------------
// (e) Causal tracing: envelope contexts, cross-process reassembly,
//     verdict invariance under every sampling rate, slow-query exemplars
// ----------------------------------------------------------------------

/// Trace contexts embedded in envelopes round-trip exactly; a context
/// cut anywhere inside its 17-byte body is a typed error; a hostile
/// flags byte is refused; and — the interop pin — a `DeltaAppend` whose
/// payload ends exactly at the record boundary (what a pre-context
/// writer emits) decodes as the same frame with `ctx: None`.
#[test]
fn trace_context_envelopes_roundtrip_truncate_and_interop() {
    let mut rng = rng_for("wireplane trace ctx roundtrip");
    let frames = gen_frames(&mut rng);
    let ctx = TraceContext {
        trace_id: 0x0123_4567_89AB_CDEF,
        span_id: 0xFEDC_BA98_7654_3210,
        sampled: true,
    };

    // Round-trip with the context present, all three envelope kinds.
    let record = gen_delta_record(&mut rng);
    let samples = vec![
        Frame::Tagged {
            req_id: 7,
            ctx: Some(ctx),
            inner: Box::new(frames[0].clone()),
        },
        Frame::Batch(
            frames
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, f)| {
                    (
                        i as u32,
                        Some(TraceContext {
                            span_id: i as u64,
                            ..ctx
                        }),
                        f,
                    )
                })
                .collect(),
        ),
        Frame::DeltaAppend {
            shard: 3,
            seq: 99,
            record: record.clone(),
            ctx: Some(ctx),
        },
    ];
    for frame in &samples {
        let bytes = frame.to_frame_bytes().unwrap();
        let (tag, payload) = read_frame(&mut &bytes[..], MAX_FRAME).unwrap();
        let back = Frame::decode(tag, &payload).unwrap();
        assert_eq!(
            format!("{back:?}"),
            format!("{frame:?}"),
            "ctx-bearing envelope did not round-trip"
        );
    }

    // Truncation inside the context body (marker onward) is an error for
    // Tagged: the marker promises 17 bytes plus an inner frame.
    let tagged = &samples[0];
    let bytes = tagged.to_frame_bytes().unwrap();
    let (tag, payload) = read_frame(&mut &bytes[..], MAX_FRAME).unwrap();
    for cut in 4..4 + 18 {
        assert!(
            Frame::decode(tag, &payload[..cut]).is_err(),
            "Tagged cut mid-context at {cut} decoded successfully"
        );
    }

    // A flags byte with any bit beyond bit0 set is a BadTag carrying the
    // hostile byte — reserved bits stay reserved.
    for flags in [0x02u8, 0x80, 0xFF] {
        let mut corrupt = payload.clone();
        // Layout: req_id(4) | 0xFF | trace(8) | span(8) | flags.
        assert_eq!(corrupt[4], 0xFF, "marker not where the layout says");
        corrupt[4 + 17] = flags;
        assert!(
            matches!(Frame::decode(tag, &corrupt), Err(WireError::BadTag(f)) if f == flags),
            "hostile flags byte {flags:#04x} not refused as BadTag"
        );
    }

    // Interop pin: cutting the traced DeltaAppend exactly at the record
    // boundary yields a pre-context writer's byte image, and it decodes
    // as the same append with no context — new readers accept old
    // frames; anything shorter is truncation, anything longer that is
    // not a context is TrailingBytes.
    let traced = &samples[2];
    let bytes = traced.to_frame_bytes().unwrap();
    let (tag, payload) = read_frame(&mut &bytes[..], MAX_FRAME).unwrap();
    let legacy_len = payload.len() - 18; // marker + 17-byte body
    match Frame::decode(tag, &payload[..legacy_len]).unwrap() {
        Frame::DeltaAppend {
            shard,
            seq,
            record: got,
            ctx,
        } => {
            assert_eq!((shard, seq), (3, 99));
            assert_eq!(format!("{got:?}"), format!("{record:?}"));
            assert_eq!(ctx, None, "legacy byte image grew a context");
        }
        other => panic!("legacy DeltaAppend image decoded to {other:?}"),
    }
    for cut in legacy_len + 1..payload.len() {
        assert!(
            Frame::decode(tag, &payload[..cut]).is_err(),
            "DeltaAppend cut mid-context at {cut} decoded successfully"
        );
    }
}

/// The byte-layout differential pin for the context extension: a
/// context-free envelope encodes byte-for-byte what the pre-context
/// codec wrote (hand-assembled here from the documented layout), and a
/// context-bearing envelope is exactly that image with the 17-byte
/// `0xFF | trace | span | flags` block spliced at the documented
/// offset. Old and new endpoints interoperate because untraced frames
/// are indistinguishable on the wire.
#[test]
fn context_free_envelope_bytes_match_pre_context_layout() {
    fn leb(mut v: u64, out: &mut Vec<u8>) {
        loop {
            let b = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                out.push(b);
                break;
            }
            out.push(b | 0x80);
        }
    }
    fn payload_of(frame: &Frame) -> Vec<u8> {
        let bytes = frame.to_frame_bytes().unwrap();
        let (_, payload) = read_frame(&mut &bytes[..], MAX_FRAME).unwrap();
        payload
    }

    // Tagged{req_id, HorizonReq}: `req_id u32 LE | inner tag`.
    let bare = payload_of(&Frame::Tagged {
        req_id: 0xA1B2_C3D4,
        ctx: None,
        inner: Box::new(Frame::HorizonReq),
    });
    let mut want = 0xA1B2_C3D4u32.to_le_bytes().to_vec();
    want.push(0x19); // HorizonReq
    assert_eq!(bare, want, "context-free Tagged layout drifted");

    // The traced flavour is the same image with the context spliced
    // after req_id.
    let traced = payload_of(&Frame::Tagged {
        req_id: 0xA1B2_C3D4,
        ctx: Some(TraceContext {
            trace_id: 0x1111_2222_3333_4444,
            span_id: 0x5555_6666_7777_8888,
            sampled: true,
        }),
        inner: Box::new(Frame::HorizonReq),
    });
    let mut spliced = bare[..4].to_vec();
    spliced.push(0xFF);
    spliced.extend_from_slice(&0x1111_2222_3333_4444u64.to_le_bytes());
    spliced.extend_from_slice(&0x5555_6666_7777_8888u64.to_le_bytes());
    spliced.push(1);
    spliced.extend_from_slice(&bare[4..]);
    assert_eq!(traced, spliced, "context splice offset drifted");

    // Batch of two empty-payload requests: `count | id u32 LE | tag |
    // len | payload` per entry.
    let got = payload_of(&Frame::Batch(vec![
        (1, None, Frame::HorizonReq),
        (2, None, Frame::StatsScrapeReq),
    ]));
    let mut want = Vec::new();
    leb(2, &mut want);
    for (id, tag) in [(1u32, 0x19u8), (2, 0x1A)] {
        want.extend_from_slice(&id.to_le_bytes());
        want.push(tag);
        leb(0, &mut want);
    }
    assert_eq!(got, want, "context-free Batch layout drifted");

    // DeltaAppend: `shard u16 LE | seq u64 LE | record`, nothing after.
    let mut rng = rng_for("wireplane layout pin record");
    let record = gen_delta_record(&mut rng);
    let got = payload_of(&Frame::DeltaAppend {
        shard: 5,
        seq: 77,
        record: record.clone(),
        ctx: None,
    });
    let mut want = 5u16.to_le_bytes().to_vec();
    want.extend_from_slice(&77u64.to_le_bytes());
    let mut e = telemetry::frame::Enc::new();
    record.wire_enc(&mut e);
    want.extend_from_slice(&e.into_bytes());
    assert_eq!(got, want, "context-free DeltaAppend layout drifted");
}

/// The tentpole's end-to-end claim: one client query against a 4-shard
/// cluster yields, via `scrape_traces`, a causally linked span tree
/// that covers the front-end (query/enqueue/exec), the mux (wire) and
/// the shard servers (serve), with per-stage durations that partition
/// the root exactly and never exceed the latency the client measured
/// from outside. Scraping is also pinned side-effect-free: a second
/// scrape sees no spans born of the first.
#[test]
fn one_query_reassembles_into_a_cross_process_stage_tree() {
    let (mut tb, victim, _) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(40));
    let analyzer = tb.analyzer();
    let reqs = storm_queries(&tb, victim);
    let cluster = WireCluster::launch(&analyzer, 4, WireConfig::default()).unwrap();
    let mut client = cluster.client().unwrap();

    let t0 = Instant::now();
    client.query(&reqs[0]).unwrap();
    let e2e = t0.elapsed().as_nanos() as u64;

    let scrape = client.scrape_traces().unwrap();
    assert_eq!(scrape.len(), 5, "front + 4 shards must answer the scrape");
    assert_eq!(scrape[0].0, "front");
    let trees = wireplane::assemble(&scrape);
    let query_trees: Vec<_> = trees
        .iter()
        .filter(|t| t.root().is_some_and(|r| r.stage == "query"))
        .collect();
    assert_eq!(
        query_trees.len(),
        1,
        "exactly one query ran, so exactly one query-rooted trace"
    );
    let tree = query_trees[0];
    assert!(
        tree.causally_linked(),
        "spans from different processes did not link into one tree"
    );
    // The tree crosses processes: the front plus at least one shard.
    let procs = tree.processes();
    assert!(procs.contains("front"), "no front-side spans: {procs:?}");
    assert!(
        procs.iter().any(|p| p.starts_with("shard")),
        "no shard-side spans: {procs:?}"
    );
    // Every stage of the path is present.
    for stage in ["query", "enqueue", "exec", "wire", "serve"] {
        assert!(
            tree.stage_ns(stage) > 0 || stage == "enqueue",
            "stage {stage} missing from the reassembled tree"
        );
    }
    // enqueue + exec partition the root exactly (same three clock
    // reads), and nothing in the tree outlives what the client saw.
    assert_eq!(
        tree.stage_ns("enqueue") + tree.stage_ns("exec"),
        tree.e2e_ns(),
        "front-side stages must partition the root span"
    );
    assert!(
        tree.e2e_ns() <= e2e,
        "the traced e2e ({}) exceeds the client-measured e2e ({e2e})",
        tree.e2e_ns()
    );
    // serve happens inside wire's window, per RPC.
    assert!(
        tree.stage_ns("serve") <= tree.stage_ns("wire"),
        "serve time exceeds the wire time that contains it"
    );

    // Scrape identity: scraping traces makes no traces anywhere.
    let again = client.scrape_traces().unwrap();
    assert_eq!(
        format!("{scrape:?}"),
        format!("{again:?}"),
        "a trace scrape left spans behind"
    );
    cluster.shutdown();
}

/// Trace-context propagation is inert: the same storm of queries and
/// the same standing-query stream produce bit-identical verdicts and
/// incidents whether tracing is off (rate 0), sampling everything
/// (rate 1) or sampling almost nothing (rate 1024).
#[test]
fn sampling_rate_never_changes_verdicts_or_incidents() {
    let (mut tb, victim, da) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(40));
    let analyzer = tb.analyzer();
    let reqs = storm_queries(&tb, victim);
    let mut baseline: Option<(Vec<String>, Vec<String>)> = None;
    for rate in [0u32, 1, 1024] {
        let cluster = WireCluster::launch(
            &analyzer,
            2,
            WireConfig {
                trace_sample_rate: rate,
                ..WireConfig::default()
            },
        )
        .unwrap();
        let mut client = cluster.client().unwrap();
        let verdicts: Vec<String> = reqs
            .iter()
            .map(|r| format!("{:?}", client.query(r).unwrap()))
            .collect();
        let (_, available) = client
            .subscribe(
                StandingQuery::ContentionWatch {
                    victim,
                    victim_dst: da,
                    trigger_window: tb.cfg.trigger.window,
                },
                0,
            )
            .unwrap();
        let incidents: Vec<String> = (0..available)
            .map(|_| format!("{:?}", client.next_incident().unwrap()))
            .collect();
        match &baseline {
            None => baseline = Some((verdicts, incidents)),
            Some((v0, i0)) => {
                assert_eq!(&verdicts, v0, "verdicts changed at sample rate {rate}");
                assert_eq!(&incidents, i0, "incidents changed at sample rate {rate}");
            }
        }
        cluster.shutdown();
    }
}

/// The flight recorder catches a rigged slow query: after warming the
/// shard's rolling latency threshold with cheap queries, one query
/// whose serve is stretched by an injected [`ServeDelay`] must surface
/// as an exemplar trace whose serve-stage span covers the injected
/// delay — even though nothing about the query itself was unusual.
#[test]
fn rigged_serve_delay_pins_a_slow_query_exemplar() {
    let (mut tb, _, _) = watch_testbed();
    tb.sim.run_until(SimTime::from_ms(40));
    let analyzer = tb.analyzer();
    let cluster = WireCluster::launch(&analyzer, 1, WireConfig::default()).unwrap();
    let mut client = cluster.client().unwrap();
    let cheap = QueryRequest::TopK {
        switch: tb.node("edge0_0"),
        k: 4,
        range: EpochRange { lo: 10, hi: 20 },
    };

    // Warm the shard tracer past its exemplar warmup so the rolling
    // threshold is live and far below the delay we are about to inject.
    let delay = Duration::from_millis(25);
    let shard_tracer_ready = || {
        let t = cluster.server(0).metrics().tracer();
        t.slow_threshold_ns() < delay.as_nanos() as u64 / 2
    };
    for _ in 0..200 {
        client.query(&cheap).unwrap();
        if shard_tracer_ready() {
            break;
        }
    }
    assert!(
        shard_tracer_ready(),
        "cheap queries never warmed the shard's slow threshold"
    );

    let rig: ServeDelay = Arc::new(move |req: &Frame| match req {
        Frame::TopKWaveReq { .. } => Duration::from_millis(25),
        _ => Duration::ZERO,
    });
    cluster.server(0).set_serve_delay(Some(rig));
    client.query(&cheap).unwrap();
    cluster.server(0).set_serve_delay(None);

    let scrape = client.scrape_traces().unwrap();
    let trees = wireplane::assemble(&scrape);
    let slow: Vec<_> = trees
        .iter()
        .filter(|t| t.has_exemplar() && t.stage_ns("serve") >= delay.as_nanos() as u64)
        .collect();
    assert!(
        !slow.is_empty(),
        "the rigged slow query was not pinned as an exemplar"
    );
    // The exemplar's serve span itself covers the injected delay — the
    // breakdown points at the right stage, not just the right trace.
    let serve_dur = slow
        .iter()
        .flat_map(|t| t.spans.iter())
        .filter(|(_, s)| s.stage == "serve")
        .map(|(_, s)| s.dur_ns)
        .max()
        .unwrap();
    assert!(
        serve_dur >= delay.as_nanos() as u64,
        "serve-stage span ({serve_dur}ns) does not cover the injected 25ms delay"
    );
    cluster.shutdown();
}
