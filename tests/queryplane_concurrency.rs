//! The query plane's contract: (a) verdicts are bit-identical to the
//! sequential analyzer's no matter how many workers execute the batch;
//! (b) pointer-cache hit accounting is deterministic and matches a
//! hand-computed schedule.

use netsim::prelude::*;
use queryplane::{QueryPlane, QueryPlaneConfig};
use switchpointer::query::QueryRequest;
use switchpointer::testbed::{Testbed, TestbedConfig};
use telemetry::EpochRange;

/// The fat-tree contention fixture: a low-priority TCP victim sharing its
/// edge uplink with a high-priority UDP burst, plus steady cross-pod UDP
/// background so pointers light up across layers.
fn fat_tree_testbed() -> (Testbed, FlowId) {
    let topo = Topology::fat_tree(4, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, b) = (tb.node("h0_0_0"), tb.node("h0_0_1"));
    let (da, db) = (tb.node("h2_0_0"), tb.node("h2_0_1"));
    let victim = tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
        a,
        da,
        Priority::LOW,
        SimTime::from_ms(40),
    ));
    tb.sim.add_udp_flow(UdpFlowSpec::burst(
        b,
        db,
        Priority::HIGH,
        SimTime::from_ms(15),
        SimTime::from_ms(2),
        GBPS,
    ));
    // Background pair in another pod.
    let (c, dc) = (tb.node("h1_0_0"), tb.node("h3_1_1"));
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: c,
        dst: dc,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(30),
        rate_bps: 100_000_000,
        payload_bytes: 1458,
    });
    tb.sim.run_until(SimTime::from_ms(40));
    (tb, victim)
}

/// A mixed query set over the fixture. Trigger-driven applications are
/// included only when the victim actually triggered (ECMP decides whether
/// the two pod-0 flows share an egress beyond the edge switch — the run is
/// deterministic, so either way the comparison below is too).
fn query_set(tb: &Testbed, victim: FlowId) -> Vec<QueryRequest> {
    let mut reqs = Vec::new();
    let window = EpochRange { lo: 10, hi: 20 };
    for name in ["edge0_0", "agg0_0", "agg0_1", "core0_0", "edge2_0"] {
        reqs.push(QueryRequest::TopK {
            switch: tb.node(name),
            k: 10,
            range: window,
        });
        reqs.push(QueryRequest::LoadImbalance {
            switch: tb.node(name),
            range: window,
        });
    }
    // Repeat the first TopK so the cache has something to hit.
    reqs.push(QueryRequest::TopK {
        switch: tb.node("edge0_0"),
        k: 10,
        range: window,
    });
    reqs.push(QueryRequest::SilentDrop {
        flow: victim,
        src: tb.node("h0_0_0"),
        dst: tb.node("h2_0_0"),
        range: window,
    });

    // Trigger-driven queries, if the victim starved.
    let da = tb.node("h2_0_0");
    let triggered = tb.hosts[&da].borrow().first_trigger_for(victim).is_some();
    if triggered {
        let w = tb.cfg.trigger.window;
        reqs.push(QueryRequest::Contention {
            victim,
            victim_dst: da,
            trigger_window: w,
        });
        reqs.push(QueryRequest::RedLights {
            victim,
            victim_dst: da,
            trigger_window: w,
        });
        reqs.push(QueryRequest::Cascade {
            victim,
            victim_dst: da,
            trigger_window: w,
            max_depth: 3,
        });
    }
    reqs
}

#[test]
fn verdicts_identical_across_worker_counts() {
    let (tb, victim) = fat_tree_testbed();
    let analyzer = tb.analyzer();
    let reqs = query_set(&tb, victim);
    assert!(reqs.len() >= 12, "fixture produced too few queries");

    // The sequential ground truth straight off the live analyzer.
    let baseline: Vec<String> = reqs
        .iter()
        .map(|r| format!("{:?}", analyzer.execute(r)))
        .collect();

    let mut per_worker_costs = Vec::new();
    for workers in [1usize, 2, 8] {
        let mut plane = QueryPlane::from_analyzer(
            &analyzer,
            QueryPlaneConfig {
                workers,
                shards: 8,
                directory_shards: 1,
                cache_capacity: 4096,
                retention: None,
            },
        );
        let outcomes = plane.execute_batch(&reqs);
        assert_eq!(outcomes.len(), reqs.len());
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(
                format!("{:?}", o.response),
                baseline[i],
                "query {i} diverged from the sequential analyzer at {workers} workers"
            );
        }
        // Cost accounting must be deterministic too, not just verdicts.
        per_worker_costs.push(
            outcomes
                .iter()
                .map(|o| format!("{:?}", o.cost))
                .collect::<Vec<_>>(),
        );
        // The repeated TopK hit every pointer key of its round.
        assert!(plane.stats().pointer_hits >= 1);
    }
    assert_eq!(per_worker_costs[0], per_worker_costs[1]);
    assert_eq!(per_worker_costs[0], per_worker_costs[2]);
}

#[test]
fn sharding_choice_does_not_change_answers() {
    let (tb, victim) = fat_tree_testbed();
    let analyzer = tb.analyzer();
    let reqs = query_set(&tb, victim);
    let mut renders = Vec::new();
    for shards in [1usize, 3, 16] {
        let mut plane = QueryPlane::from_analyzer(
            &analyzer,
            QueryPlaneConfig {
                workers: 4,
                shards,
                directory_shards: 1,
                cache_capacity: 4096,
                retention: None,
            },
        );
        renders.push(
            plane
                .execute_batch(&reqs)
                .iter()
                .map(|o| format!("{:?}", o.response))
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(renders[0], renders[1]);
    assert_eq!(renders[0], renders[2]);
}

#[test]
fn pointer_cache_accounting_matches_hand_computed_schedule() {
    // A tiny deployment: the queries' pointer rounds are all single-key
    // (TopK pulls exactly one (switch, window) union), so the cache
    // schedule can be verified by hand.
    let topo = Topology::chain(3, 2, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, f) = (tb.node("A"), tb.node("F"));
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: f,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(2),
        rate_bps: 100_000_000,
        payload_bytes: 1458,
    });
    tb.sim.run_until(SimTime::from_ms(5));
    let analyzer = tb.analyzer();
    let (s1, s2) = (tb.node("S1"), tb.node("S2"));
    let (r1, r2) = (EpochRange { lo: 0, hi: 2 }, EpochRange { lo: 0, hi: 3 });
    let topk = |switch, range| QueryRequest::TopK {
        switch,
        k: 5,
        range,
    };

    // Submission order:        key        roomy cache     capacity-1 cache
    //   q0: (s1, r1)                      miss            miss
    //   q1: (s1, r1)                      HIT             HIT
    //   q2: (s2, r1)                      miss            miss (evicts s1r1)
    //   q3: (s1, r2)                      miss            miss (evicts s2r1)
    //   q4: (s1, r1)                      HIT             miss (was evicted)
    let reqs = vec![
        topk(s1, r1),
        topk(s1, r1),
        topk(s2, r1),
        topk(s1, r2),
        topk(s1, r1),
    ];

    let mut roomy = QueryPlane::from_analyzer(
        &analyzer,
        QueryPlaneConfig {
            workers: 2,
            shards: 4,
            directory_shards: 1,
            cache_capacity: 64,
            retention: None,
        },
    );
    let outcomes = roomy.execute_batch(&reqs);
    let hit_pattern: Vec<(u32, u32)> = outcomes
        .iter()
        .map(|o| (o.cost.pointer_hits, o.cost.pointer_misses))
        .collect();
    assert_eq!(
        hit_pattern,
        vec![(0, 1), (1, 0), (0, 1), (0, 1), (1, 0)],
        "roomy cache schedule"
    );
    assert_eq!(roomy.stats().pointer_hits, 2);
    assert_eq!(roomy.stats().pointer_misses, 3);
    assert_eq!(roomy.stats().rounds_skipped, 2);

    // Cache-served rounds skip the ≈7.5 ms retrieval: the two hit queries
    // must be billed far less than their sequential baseline.
    for (i, o) in outcomes.iter().enumerate() {
        if hit_pattern[i].0 > 0 {
            assert!(
                o.cost.batched + analyzer.cost().pointer_retrieval(1)
                    < o.cost.sequential + analyzer.cost().pointer_cache_hit,
                "query {i} should have skipped its retrieval round"
            );
        }
    }

    let mut tiny = QueryPlane::from_analyzer(
        &analyzer,
        QueryPlaneConfig {
            workers: 2,
            shards: 4,
            directory_shards: 1,
            cache_capacity: 1,
            retention: None,
        },
    );
    let outcomes = tiny.execute_batch(&reqs);
    let hit_pattern: Vec<(u32, u32)> = outcomes
        .iter()
        .map(|o| (o.cost.pointer_hits, o.cost.pointer_misses))
        .collect();
    assert_eq!(
        hit_pattern,
        vec![(0, 1), (1, 0), (0, 1), (0, 1), (0, 1)],
        "capacity-1 LRU schedule"
    );
    assert_eq!(tiny.stats().pointer_hits, 1);
    assert_eq!(tiny.stats().pointer_misses, 4);
}

#[test]
fn batching_and_caching_beat_sequential_accounting() {
    let (tb, _victim) = fat_tree_testbed();
    let analyzer = tb.analyzer();
    // A hot incident window: many tenants ask overlapping questions.
    let mut reqs = Vec::new();
    let window = EpochRange { lo: 10, hi: 20 };
    for round in 0..8 {
        for name in ["edge0_0", "agg0_0", "edge2_0"] {
            reqs.push(QueryRequest::TopK {
                switch: tb.node(name),
                k: 10,
                range: window,
            });
            if round % 2 == 0 {
                reqs.push(QueryRequest::LoadImbalance {
                    switch: tb.node(name),
                    range: window,
                });
            }
        }
    }
    let mut plane = QueryPlane::from_analyzer(&analyzer, QueryPlaneConfig::default());
    let outcomes = plane.execute_batch(&reqs);
    let stats = plane.stats();
    assert_eq!(stats.queries, reqs.len() as u64);
    assert!(
        stats.cache_hit_rate() > 0.5,
        "repeat-heavy workload must hit"
    );
    assert!(
        stats.rpcs_saved() > 0,
        "overlapping fan-outs must coalesce ({} requests, {} rpcs)",
        stats.host_requests,
        stats.host_rpcs_issued
    );
    assert!(
        stats.modelled_speedup() >= 2.0,
        "batched+cached should be ≥2× cheaper, got {:.2}× (seq {}, batched {})",
        stats.modelled_speedup(),
        stats.sequential_total,
        stats.batched_total
    );
    // Batch-level invariant: the coalesced accounting never exceeds the
    // sequential baseline.
    assert!(stats.batched_total <= stats.sequential_total);
    assert_eq!(outcomes.len(), reqs.len());
}
