//! Transport-level invariants under adversarial conditions: TCP must
//! deliver bounded streams exactly once, in order, regardless of queue
//! sizes, contention and drops — the sequence-space conservation property
//! of DESIGN.md §7.

use netsim::prelude::*;
use netsim::queue::QueueConfig;
use proptest::prelude::*;

/// Runs a bounded transfer against a hostile little buffer plus background
/// UDP noise; returns (delivered, drops_seen, finished).
fn hostile_transfer(bytes: u64, buffer: u64, noise_flows: usize, seed: u64) -> (u64, usize, bool) {
    let topo = Topology::dumbbell(noise_flows + 1, noise_flows + 1, GBPS);
    let mut sim = netsim::engine::Simulator::new(
        topo,
        netsim::engine::SimConfig {
            seed,
            switch_queue: QueueConfig::Fifo {
                capacity_bytes: buffer,
            },
            ..Default::default()
        },
    );
    let a = sim.topo().node_by_name("L0").unwrap();
    let b = sim.topo().node_by_name("R0").unwrap();
    let f = sim.add_tcp_flow(TcpFlowSpec::transfer(
        a,
        b,
        Priority::LOW,
        SimTime::ZERO,
        bytes,
    ));
    for u in 0..noise_flows {
        let src = sim.topo().node_by_name(&format!("L{}", u + 1)).unwrap();
        let dst = sim.topo().node_by_name(&format!("R{}", u + 1)).unwrap();
        sim.add_udp_flow(UdpFlowSpec {
            src,
            dst,
            priority: Priority::LOW,
            start: SimTime::from_ms(1 + u as u64),
            duration: SimTime::from_ms(2),
            rate_bps: GBPS,
            payload_bytes: 1458,
        });
    }
    // Generous horizon: RTO backoff can stretch recovery.
    sim.run_until(SimTime::from_secs(20));
    let conn = sim.tcp(f);
    (conn.delivered, sim.traces.drops_for(f), conn.is_complete())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exactly-once delivery whatever the buffer and noise.
    #[test]
    fn bounded_stream_delivers_exactly_once(
        bytes in 50_000u64..600_000,
        buffer in 30_000u64..300_000,
        noise in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let (delivered, _drops, finished) = hostile_transfer(bytes, buffer, noise, seed);
        prop_assert!(finished, "transfer of {bytes} never completed");
        prop_assert_eq!(delivered, bytes, "delivered != requested");
    }
}

#[test]
fn recovery_actually_exercised() {
    // Sanity: the hostile fixture does cause drops and retransmissions
    // (otherwise the property above proves nothing).
    let (delivered, drops, finished) = hostile_transfer(400_000, 40_000, 3, 7);
    assert!(finished);
    assert_eq!(delivered, 400_000);
    assert!(drops > 0, "fixture caused no drops — weaken buffers");
}

#[test]
fn two_competing_tcp_flows_both_complete() {
    let topo = Topology::dumbbell(2, 2, GBPS);
    let mut sim = netsim::engine::Simulator::new(
        topo,
        netsim::engine::SimConfig {
            switch_queue: QueueConfig::Fifo {
                capacity_bytes: 60_000,
            },
            ..Default::default()
        },
    );
    let topo = sim.topo();
    let (a, b) = (
        topo.node_by_name("L0").unwrap(),
        topo.node_by_name("R0").unwrap(),
    );
    let (c, d) = (
        topo.node_by_name("L1").unwrap(),
        topo.node_by_name("R1").unwrap(),
    );
    let f1 = sim.add_tcp_flow(TcpFlowSpec::transfer(
        a,
        b,
        Priority::LOW,
        SimTime::ZERO,
        1_000_000,
    ));
    let f2 = sim.add_tcp_flow(TcpFlowSpec::transfer(
        c,
        d,
        Priority::LOW,
        SimTime::ZERO,
        1_000_000,
    ));
    sim.run_until(SimTime::from_secs(5));
    assert_eq!(sim.tcp(f1).delivered, 1_000_000);
    assert_eq!(sim.tcp(f2).delivered, 1_000_000);
}
