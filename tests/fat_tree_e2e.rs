//! End-to-end SwitchPointer on a k=4 fat-tree — the paper's canonical
//! CherryPick topology ("reconstructs a 5-hop end-to-end path by selecting
//! only one aggregate-core link") — plus offline diagnosis from archived
//! top-level pointers.

use netsim::prelude::*;
use netsim::topology::FatTreeLayer;
use switchpointer::testbed::{Testbed, TestbedConfig};
use telemetry::EpochRange;

#[test]
fn inter_pod_flow_reconstructs_five_hop_path() {
    let topo = Topology::fat_tree(4, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (src, dst) = (tb.node("h0_0_0"), tb.node("h2_1_1"));
    let flow = tb.sim.add_udp_flow(UdpFlowSpec {
        src,
        dst,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(2),
        rate_bps: 300_000_000,
        payload_bytes: 1458,
    });
    tb.sim.run_until(SimTime::from_ms(6));

    let host = tb.hosts[&dst].borrow();
    assert_eq!(host.decode_failures, 0);
    let rec = host.store.record(flow).expect("record");
    assert_eq!(rec.path.len(), 5, "edge-agg-core-agg-edge");

    let layers: Vec<FatTreeLayer> = rec
        .path
        .iter()
        .map(|&s| tb.sim.topo().fat_tree_layer(s).unwrap())
        .collect();
    assert_eq!(
        layers,
        vec![
            FatTreeLayer::Edge,
            FatTreeLayer::Aggregation,
            FatTreeLayer::Core,
            FatTreeLayer::Aggregation,
            FatTreeLayer::Edge
        ]
    );

    // The reconstructed path matches the switches whose pointers actually
    // witnessed the flow.
    for &sw in &rec.path {
        assert!(
            tb.switches[&sw].borrow().pointers.contains(dst.addr(), 0),
            "claimed switch {sw} never saw the flow"
        );
    }
    // Exactly one aggregation switch in the source pod tagged.
    let taggers: Vec<NodeId> = tb
        .switches
        .iter()
        .filter(|(_, h)| h.borrow().tagged > 0)
        .map(|(&s, _)| s)
        .collect();
    assert_eq!(taggers.len(), 1, "exactly one tagging switch: {taggers:?}");
    assert_eq!(
        tb.sim.topo().fat_tree_layer(taggers[0]),
        Some(FatTreeLayer::Aggregation)
    );
}

#[test]
fn fat_tree_contention_diagnosis_works() {
    // Two flows share an edge uplink; the low-priority one triggers and
    // the analyzer finds the high-priority culprit in the fat-tree.
    let topo = Topology::fat_tree(4, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    // Both flows from hosts on edge0_0, to distinct hosts in pod 2.
    let (a, b) = (tb.node("h0_0_0"), tb.node("h0_0_1"));
    let (da, db) = (tb.node("h2_0_0"), tb.node("h2_0_1"));
    let victim = tb.sim.add_tcp_flow(TcpFlowSpec::running_until(
        a,
        da,
        Priority::LOW,
        SimTime::from_ms(40),
    ));
    tb.sim.add_udp_flow(UdpFlowSpec::burst(
        b,
        db,
        Priority::HIGH,
        SimTime::from_ms(15),
        SimTime::from_ms(2),
        GBPS,
    ));
    tb.sim.run_until(SimTime::from_ms(40));

    // ECMP may or may not give the two flows the same spine path; they
    // *always* share the host->edge0_0 uplink... actually they share only
    // the edge switch. Contention happens wherever both route out the same
    // egress. The victim triggers only if starved, which requires a shared
    // egress; check trigger first.
    let trig = tb.hosts[&da].borrow().first_trigger_for(victim).copied();
    if let Some(_t) = trig {
        let d = tb
            .analyzer()
            .diagnose_contention(victim, da, tb.cfg.trigger.window);
        assert_eq!(
            d.verdict,
            switchpointer::analyzer::Verdict::PriorityContention
        );
        assert!(d.culprits.iter().any(|c| c.dst == db));
    } else {
        // The two flows took disjoint paths beyond the edge; then the
        // victim must have run at full rate.
        let bytes = tb.sim.traces.rx_bytes(victim);
        assert!(bytes > 3_000_000, "no trigger and no throughput? {bytes}");
    }
}

#[test]
fn offline_diagnosis_from_archived_pointers() {
    // Run long enough that level-1 slots for the event epochs have been
    // recycled; the analyzer must still find the hosts via the flushed
    // top-level pointers (the paper's offline-diagnosis path, §4.1.1).
    let topo = Topology::chain(2, 2, GBPS);
    let mut cfg = TestbedConfig::default_ms();
    // Small hierarchy so recycling happens within the run: alpha=4, k=2
    // => level 1 retains 4 epochs; top spans 4 epochs, flushed every 4 ms.
    cfg.pointer_alpha = 4;
    cfg.pointer_k = 2;
    let mut tb = Testbed::new(topo, cfg);
    let (a, c) = (tb.node("A"), tb.node("C"));
    let flow = tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: c,
        priority: Priority::LOW,
        start: SimTime::from_ms(2),
        duration: SimTime::from_ms(2),
        rate_bps: 300_000_000,
        payload_bytes: 1458,
    });
    // Background traffic keeps epochs rotating long after the flow ended.
    let (b, d) = (tb.node("B"), tb.node("D"));
    tb.sim.add_udp_flow(UdpFlowSpec {
        src: b,
        dst: d,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        duration: SimTime::from_ms(60),
        rate_bps: 50_000_000,
        payload_bytes: 1458,
    });
    tb.sim.run_until(SimTime::from_ms(60));

    let s1 = tb.node("S1");
    let comp = tb.switches[&s1].borrow();
    // Level-1 view of epoch 2 is long gone...
    assert_eq!(comp.pointers.contains_within(c.addr(), 2, 1), None);
    // ...but flushed archives still answer.
    assert!(!comp.pointers.archive().is_empty());
    assert!(comp.pointers.contains(c.addr(), 2));
    drop(comp);

    // And the analyzer still names host C for the event window.
    let hosts = tb.analyzer().hosts_for(s1, EpochRange { lo: 2, hi: 3 });
    assert!(
        hosts.contains(&c),
        "offline lookup lost the host: {hosts:?}"
    );
    let _ = flow;
}
