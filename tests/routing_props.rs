//! Property tests of routing and queue disciplines over randomized
//! topologies and packet sequences.

use netsim::packet::{FlowId, NodeId, Packet, Priority, Protocol};
use netsim::queue::{DrrQueue, Enqueue, FifoQueue, Queue, StrictPriorityQueue};
use netsim::routing::RouteTable;
use netsim::time::SimTime;
use netsim::topology::{Topology, GBPS};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Routing: random Clos fabrics are loop-free and fully connected.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn leaf_spine_routing_delivers_all_pairs(
        leaves in 2usize..5,
        spines in 1usize..4,
        hosts in 1usize..4,
        flow in any::<u64>(),
    ) {
        let t = Topology::leaf_spine(leaves, spines, hosts, GBPS);
        let rt = RouteTable::build(&t);
        for &src in t.hosts() {
            for &dst in t.hosts() {
                if src == dst {
                    continue;
                }
                let mut cur = src;
                let mut hops = 0;
                while cur != dst {
                    let port = rt.egress(cur, dst, FlowId(flow));
                    prop_assert!(port.is_some(), "black hole {cur}->{dst}");
                    let (_, peer) = t.ports(cur)[port.unwrap() as usize];
                    cur = peer;
                    hops += 1;
                    prop_assert!(hops <= 6, "loop {src}->{dst}");
                }
            }
        }
    }

    #[test]
    fn fat_tree_routing_delivers_all_pairs(flow in any::<u64>()) {
        let t = Topology::fat_tree(4, GBPS);
        let rt = RouteTable::build(&t);
        for &src in t.hosts() {
            for &dst in t.hosts() {
                if src == dst {
                    continue;
                }
                let mut cur = src;
                let mut hops = 0;
                while cur != dst {
                    let port = rt.egress(cur, dst, FlowId(flow)).expect("route");
                    let (_, peer) = t.ports(cur)[port as usize];
                    cur = peer;
                    hops += 1;
                    prop_assert!(hops <= 6, "fat-tree path too long {src}->{dst}");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Queues: model-based — any discipline conserves packets and bytes.
// ---------------------------------------------------------------------

fn mk_pkt(id: u64, prio: u8, payload: u32) -> Packet {
    Packet {
        id,
        flow: FlowId(id % 7),
        src: NodeId(0),
        dst: NodeId(1),
        protocol: Protocol::Udp,
        priority: Priority(prio),
        payload,
        tcp: None,
        tags: Vec::new(),
        sent_at: SimTime::ZERO,
    }
}

/// Applies a random enqueue/dequeue script and checks conservation.
fn check_conservation(q: &mut dyn Queue, script: &[(bool, u8, u32)]) {
    let mut in_q_bytes: i64 = 0;
    let mut in_q_pkts: i64 = 0;
    for (i, &(enq, prio, payload)) in script.iter().enumerate() {
        if enq {
            let p = mk_pkt(i as u64, prio % 3, 1 + payload % 1_500);
            let bytes = p.frame_bytes() as i64;
            if q.enqueue(p) == Enqueue::Queued {
                in_q_bytes += bytes;
                in_q_pkts += 1;
            }
        } else if let Some(p) = q.dequeue() {
            in_q_bytes -= p.frame_bytes() as i64;
            in_q_pkts -= 1;
        }
        assert!(in_q_bytes >= 0 && in_q_pkts >= 0);
        assert_eq!(q.depth_bytes() as i64, in_q_bytes, "byte accounting at {i}");
        assert_eq!(q.len() as i64, in_q_pkts, "packet accounting at {i}");
    }
    // Drain completely.
    while let Some(p) = q.dequeue() {
        in_q_bytes -= p.frame_bytes() as i64;
        in_q_pkts -= 1;
    }
    assert_eq!(in_q_bytes, 0);
    assert_eq!(in_q_pkts, 0);
    assert_eq!(q.depth_bytes(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_disciplines_conserve_bytes(
        script in prop::collection::vec((any::<bool>(), any::<u8>(), any::<u32>()), 1..300),
        cap in 5_000u64..200_000,
    ) {
        check_conservation(&mut FifoQueue::new(cap), &script);
        check_conservation(&mut StrictPriorityQueue::new(cap, 3), &script);
        check_conservation(&mut DrrQueue::new(cap, 3, 1_600), &script);
    }

    #[test]
    fn strict_priority_never_inverts(
        prios in prop::collection::vec(0u8..3, 2..100),
    ) {
        let mut q = StrictPriorityQueue::new(10_000_000, 3);
        for (i, &p) in prios.iter().enumerate() {
            q.enqueue(mk_pkt(i as u64, p, 100));
        }
        let mut last = u8::MAX;
        while let Some(p) = q.dequeue() {
            prop_assert!(
                p.priority.0 <= last,
                "priority rose from {last} to {} mid-drain without enqueues",
                p.priority.0
            );
            last = p.priority.0;
        }
    }
}
