//! DCTCP extension tests: with ECN marking at the bottleneck and the
//! DCTCP window law at the sender, a long flow keeps the queue around the
//! marking threshold K instead of filling the buffer — the headline
//! property of the DCTCP paper (the SwitchPointer paper's reference [9],
//! whence its queueing-delay bounds come).

use netsim::prelude::*;
use netsim::queue::QueueConfig;

const BUFFER: u64 = 1_000_000;
const K: u64 = 65_000; // ~45 MTUs

/// 10 GbE host links feeding a 1 GbE core: the queue (and the marking)
/// forms at the switch, as in the DCTCP paper's incast/backlog setups.
fn oversubscribed_dumbbell() -> Topology {
    use netsim::topology::{TopoKind, DEFAULT_DELAY};
    let mut t = Topology::new(TopoKind::Dumbbell);
    let sl = t.add_switch("SL");
    let sr = t.add_switch("SR");
    for i in 0..2 {
        let h = t.add_host(format!("L{i}"));
        t.add_link(h, sl, TEN_GBPS, DEFAULT_DELAY);
    }
    for i in 0..2 {
        let h = t.add_host(format!("R{i}"));
        t.add_link(h, sr, TEN_GBPS, DEFAULT_DELAY);
    }
    t.add_link(sl, sr, GBPS, DEFAULT_DELAY);
    t
}

fn run_long_flow(dctcp: bool) -> (netsim::engine::Simulator, FlowId, u16) {
    let topo = oversubscribed_dumbbell();
    let switch_queue = if dctcp {
        QueueConfig::FifoEcn {
            capacity_bytes: BUFFER,
            mark_threshold_bytes: K,
        }
    } else {
        QueueConfig::Fifo {
            capacity_bytes: BUFFER,
        }
    };
    let mut sim = netsim::engine::Simulator::new(
        topo,
        netsim::engine::SimConfig {
            switch_queue,
            ..Default::default()
        },
    );
    let a = sim.topo().node_by_name("L0").unwrap();
    let b = sim.topo().node_by_name("R0").unwrap();
    let cfg = TcpConfig {
        dctcp,
        // Big rwnd so the queue, not the receive window, is the limiter.
        rwnd: 4_000_000,
        ..TcpConfig::default()
    };
    let f = sim.add_tcp_flow(netsim::engine::TcpFlowSpec {
        src: a,
        dst: b,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        bytes: None,
        stop: Some(SimTime::from_ms(60)),
        config: cfg,
    });
    sim.run_until(SimTime::from_ms(70));
    // Bottleneck egress port on SL: the core port (index 2: after 2 hosts).
    (sim, f, 2)
}

#[test]
fn dctcp_keeps_queue_near_threshold() {
    let sl_port = |sim: &netsim::engine::Simulator, port| {
        let sl = sim.topo().node_by_name("SL").unwrap();
        sim.port_queue_stats(sl, port)
    };

    let (reno_sim, reno_flow, port) = run_long_flow(false);
    let (dctcp_sim, dctcp_flow, _) = run_long_flow(true);

    let reno_stats = sl_port(&reno_sim, port);
    let dctcp_stats = sl_port(&dctcp_sim, port);

    // Reno (rwnd 4 MB > buffer) fills the buffer until loss.
    assert!(
        reno_stats.max_depth_bytes > BUFFER / 2,
        "reno queue never built up: {}",
        reno_stats.max_depth_bytes
    );
    // DCTCP holds the standing queue near K — well below the buffer.
    assert!(
        dctcp_stats.max_depth_bytes < BUFFER / 3,
        "dctcp queue too deep: {}",
        dctcp_stats.max_depth_bytes
    );
    assert!(dctcp_stats.ecn_marked_pkts > 0, "marking never engaged");
    assert_eq!(dctcp_stats.dropped_pkts, 0, "dctcp should not overflow");

    // ...at comparable throughput (within ~20% of Reno's — our coarse
    // once-per-window reduction trades a little utilization for the 15x
    // smaller queue, like the real protocol's conservative parameterization).
    let reno_bytes = reno_sim.traces.rx_bytes(reno_flow) as f64;
    let dctcp_bytes = dctcp_sim.traces.rx_bytes(dctcp_flow) as f64;
    assert!(
        dctcp_bytes > reno_bytes * 0.8,
        "dctcp throughput collapsed: {dctcp_bytes} vs {reno_bytes}"
    );
}

#[test]
fn dctcp_alpha_tracks_marking() {
    let (sim, flow, _) = run_long_flow(true);
    let conn = sim.tcp(flow);
    assert!(
        conn.ecn_echoed_bytes > 0,
        "no ECN echoes reached the sender"
    );
    let alpha = conn.dctcp_alpha();
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range: {alpha}");
}

#[test]
fn ecn_disabled_by_default() {
    let (sim, flow, port) = run_long_flow(false);
    let sl = sim.topo().node_by_name("SL").unwrap();
    assert_eq!(sim.port_queue_stats(sl, port).ecn_marked_pkts, 0);
    assert_eq!(sim.tcp(flow).ecn_echoed_bytes, 0);
}

#[test]
fn telemetry_still_decodes_with_dctcp() {
    // ECN and SwitchPointer tagging coexist on the same packets.
    use switchpointer::testbed::{Testbed, TestbedConfig};
    let mut cfg = TestbedConfig::default_ms();
    cfg.sim.switch_queue = QueueConfig::FifoEcn {
        capacity_bytes: BUFFER,
        mark_threshold_bytes: K,
    };
    let mut tb = Testbed::new(oversubscribed_dumbbell(), cfg);
    let (a, b) = (tb.node("L0"), tb.node("R0"));
    let tcp_cfg = TcpConfig {
        dctcp: true,
        rwnd: 2_000_000,
        ..TcpConfig::default()
    };
    let flow = tb.sim.add_tcp_flow(netsim::engine::TcpFlowSpec {
        src: a,
        dst: b,
        priority: Priority::LOW,
        start: SimTime::ZERO,
        bytes: Some(2_000_000),
        stop: None,
        config: tcp_cfg,
    });
    tb.sim.run_until(SimTime::from_ms(60));
    assert!(tb.sim.tcp(flow).is_complete());
    let host = tb.hosts[&b].borrow();
    let rec = host.store.record(flow).expect("record");
    assert_eq!(rec.path.len(), 2);
    assert_eq!(host.decode_failures, 0);
}
