//! Correctness of the telemetry path under bounded clock asynchrony:
//! whatever offsets (≤ ε) the switches run at, the epoch ranges a host
//! decodes must cover the epochs at which each switch *actually* processed
//! the flow's packets — the ground truth being the switches' own pointer
//! structures.

use netsim::prelude::*;
use switchpointer::testbed::{Testbed, TestbedConfig};
use telemetry::EmbedMode;

/// Runs a flow across the 3-switch chain with the given per-switch clock
/// offsets and checks record-vs-pointer consistency at every hop.
fn check_chain_consistency(offsets_us: [i64; 3], mode: EmbedMode, seed: u64) {
    let topo = Topology::chain(3, 2, GBPS);
    let mut cfg = TestbedConfig::default_ms();
    cfg.mode = mode;
    cfg.sim.seed = seed;
    let mut tb = Testbed::new(topo, cfg);

    for (i, name) in ["S1", "S2", "S3"].iter().enumerate() {
        let s = tb.node(name);
        tb.sim.set_clock_offset(s, offsets_us[i] * 1_000);
    }

    let (a, f) = (tb.node("A"), tb.node("F"));
    let flow = tb.sim.add_udp_flow(UdpFlowSpec {
        src: a,
        dst: f,
        priority: Priority::LOW,
        start: SimTime::from_ms(3),
        duration: SimTime::from_ms(2),
        rate_bps: 400_000_000,
        payload_bytes: 1458,
    });
    tb.sim.run_until(SimTime::from_ms(10));

    let host = tb.hosts[&f].borrow();
    let rec = host
        .store
        .record(flow)
        .expect("flow record must exist (telemetry decoded)");
    assert_eq!(host.decode_failures, 0, "every packet must decode");
    assert_eq!(rec.path.len(), 3, "full path reconstructed");

    // Ground truth: for every switch, the epochs during which its pointer
    // saw destination F must all be inside the record's epoch set.
    for &sw in &rec.path {
        let comp = tb.switches[&sw].borrow();
        let recorded = &rec.epochs_at[&sw];
        // Scan a generous epoch window at exact (level-1) resolution.
        for epoch in 0..20u64 {
            if comp.pointers.contains_within(f.addr(), epoch, 1) == Some(true) {
                assert!(
                    recorded.contains(&epoch),
                    "switch {sw} truly forwarded in epoch {epoch} (offsets \
                     {offsets_us:?}, mode {mode:?}) but record only has {recorded:?}"
                );
            }
        }
        assert!(!recorded.is_empty());
    }
}

#[test]
fn commodity_mode_covers_truth_with_synchronized_clocks() {
    check_chain_consistency([0, 0, 0], EmbedMode::Commodity, 1);
}

#[test]
fn commodity_mode_covers_truth_with_skewed_clocks() {
    // ε = 1 ms in default_ms(); offsets up to ±500 us keep pairwise skew
    // within the bound.
    check_chain_consistency([500, -500, 250], EmbedMode::Commodity, 2);
    check_chain_consistency([-500, 500, -250], EmbedMode::Commodity, 3);
    check_chain_consistency([499, 0, -499], EmbedMode::Commodity, 4);
}

#[test]
fn int_mode_is_exact_regardless_of_skew() {
    check_chain_consistency([500, -500, 500], EmbedMode::Int, 5);
}

#[test]
fn leaf_spine_paths_reconstruct_through_the_actual_spine() {
    // ECMP: the record's path must name the spine the flow actually used
    // (verified against the spine's pointer).
    let topo = Topology::leaf_spine(3, 3, 3, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let mut flows = Vec::new();
    for i in 0..3 {
        let src = tb.node(&format!("h0_{i}"));
        let dst = tb.node(&format!("h2_{i}"));
        flows.push((
            tb.sim.add_udp_flow(UdpFlowSpec {
                src,
                dst,
                priority: Priority::LOW,
                start: SimTime::ZERO,
                duration: SimTime::from_ms(1),
                rate_bps: 200_000_000,
                payload_bytes: 1458,
            }),
            dst,
        ));
    }
    tb.sim.run_until(SimTime::from_ms(5));

    for (flow, dst) in flows {
        let host = tb.hosts[&dst].borrow();
        let rec = host.store.record(flow).expect("record");
        assert_eq!(rec.path.len(), 3);
        let spine = rec.path[1];
        let comp = tb.switches[&spine].borrow();
        assert!(
            comp.pointers.contains(dst.addr(), 0),
            "claimed spine {spine} never forwarded to {dst}"
        );
        // And no *other* spine forwarded this destination.
        for s in 0..3 {
            let other = tb.node(&format!("spine{s}"));
            if other != spine {
                let oc = tb.switches[&other].borrow();
                assert!(
                    !oc.pointers.contains(dst.addr(), 0),
                    "flow visible at two spines"
                );
            }
        }
    }
}

#[test]
fn acks_carry_telemetry_on_the_reverse_path() {
    // Pure ACKs traverse switches like any packet; the *sender's* host
    // component skips them by default but the switch pointers must still
    // record the sender as a destination (the paper stores pointers for
    // every forwarded packet).
    let topo = Topology::chain(2, 1, GBPS);
    let mut tb = Testbed::new(topo, TestbedConfig::default_ms());
    let (a, b) = (tb.node("A"), tb.node("B"));
    tb.sim.add_tcp_flow(TcpFlowSpec::transfer(
        a,
        b,
        Priority::LOW,
        SimTime::ZERO,
        200_000,
    ));
    tb.sim.run_until(SimTime::from_ms(20));

    let s1 = tb.node("S1");
    let comp = tb.switches[&s1].borrow();
    // Data direction: B recorded; ACK direction: A recorded.
    assert!(comp.pointers.contains(b.addr(), 0));
    assert!(comp.pointers.contains(a.addr(), 0));
}
