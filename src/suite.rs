//! Workspace umbrella crate: re-exports the public crates so the top-level
//! `examples/` and `tests/` can use a single dependency surface.

pub use baselines;
pub use mphf;
pub use netsim;
pub use obsplane;
pub use pathdump;
pub use queryplane;
pub use replicaplane;
pub use streamplane;
pub use switchpointer;
pub use telemetry;
pub use wireplane;
